//! Offline stub of `serde_json`. The stub `serde` crate has no data
//! model (its traits are empty markers), so real serialization is
//! impossible here: every function returns `Err`. Tests that round-trip
//! through serde_json (`tflux-core/tests/serde_roundtrip.rs`) cannot run
//! under the offline harness — skip them with
//! `scripts/offline-check.sh test -q -- --skip roundtrip`.

use std::fmt;

/// Stub error: always "offline stub cannot (de)serialize".
pub struct Error(&'static str);

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json offline stub: {}", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::error::Error for Error {}

/// Stub result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails: the stub serde traits carry no serialization logic.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error("cannot serialize"))
}

/// Always fails: the stub serde traits carry no serialization logic.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error("cannot serialize"))
}

/// Always fails: the stub serde traits carry no deserialization logic.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error("cannot deserialize"))
}
