//! Offline stub of `proptest` covering the subset this workspace uses:
//! `proptest!`/`prop_compose!`/`prop_oneof!`/`prop_assert*!`, `Strategy`
//! with `prop_map`/`prop_flat_map`/`prop_filter`, ranges, tuples, `Just`,
//! regex-string strategies (sampled as random ASCII, the pattern is
//! ignored), `prop::collection::vec`, `prop::option::of` and `any`.
//!
//! Sampling is a deterministic splitmix64 walk with **no shrinking** — a
//! failing case panics with the sampled inputs' debug output instead of a
//! minimized counterexample. Used only by `scripts/offline-check.sh`;
//! never by real builds.

pub mod strategy {
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Deterministic generator driving all sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty sampling range");
            self.next_u64() % n
        }
    }

    /// A value generator. The stub collapses proptest's value-tree model
    /// to direct sampling.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy {
                f: Rc::new(move |rng| inner.sample(rng)),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Type-erased strategy (sampling closure).
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        f: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.f)(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F> Map<S, F> {
        /// The `Fn(S::Value) -> O` bound here (not just on the Strategy
        /// impl) lets closure-argument types flow from the inner
        /// strategy at the construction site — `prop_compose!` relies
        /// on that inference.
        pub fn new<O>(inner: S, f: F) -> Self
        where
            F: Fn(S::Value) -> O,
        {
            Map { inner, f }
        }
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason);
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Integer/float types samplable from a half-open range.
    pub trait SampleUniform: Copy {
        fn sample_range(rng: &mut TestRng, lo: Self, hi_exclusive: Self) -> Self;
    }

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128;
                    (lo as i128 + (rng.below(u64::try_from(span.min(u64::MAX as u128)).unwrap()) as i128)) as $t
                }
            }
        )*};
    }

    impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl SampleUniform for f64 {
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_range(rng, self.start, self.end)
        }
    }

    impl Strategy for RangeInclusive<u32> {
        type Value = u32;
        fn sample(&self, rng: &mut TestRng) -> u32 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo) as u64 + 1) as u32
        }
    }

    impl Strategy for RangeInclusive<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Regex-string strategy: the pattern is ignored; samples short random
    /// printable ASCII strings (weakening, acceptable for offline checks).
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let len = rng.below(9) as usize;
            (0..len)
                .map(|_| char::from(b' ' + (rng.below(95) as u8)))
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0/0);
    impl_tuple_strategy!(S0/0, S1/1);
    impl_tuple_strategy!(S0/0, S1/1, S2/2);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8);
    impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7, S8/8, S9/9);
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Size bound for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is meaningful in the stub.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Reject a sampled case: the stub has no rejection bookkeeping, so an
/// assumed-false case simply counts as a pass.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                ::std::stringify!($a),
                ::std::stringify!($b),
                a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::strategy::TestRng::new(0x7f1e_57e5_u64 ^ (::std::line!() as u64));
            for case in 0..cfg.cases {
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    ::std::panic!("proptest case {case} failed: {e}");
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($earg:ident: $ety:ty),* $(,)?)($($parg:ident in $pstrat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($earg: $ety),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            let strat = ($($pstrat,)+);
            $crate::strategy::Map::new(strat, move |($($parg,)+)| $body)
        }
    };
}
