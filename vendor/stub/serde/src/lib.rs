//! Offline stub of `serde`: marker traits blanket-implemented for every
//! type, plus the same-named derive macros re-exported from the
//! `serde_derive` stub (which expand to nothing). No serialization is
//! actually performed anywhere in this workspace (there is no serde_json
//! dependency), so marker-level compatibility is all the code needs.
//! Used only by `scripts/offline-check.sh`; never by real builds.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    pub use super::Serialize;
}
