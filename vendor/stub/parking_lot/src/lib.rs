//! Offline stub of `parking_lot`, implemented on `std::sync` with poison
//! ignored (parking_lot mutexes do not poison). API-compatible with the
//! subset this workspace uses: `Mutex`, `MutexGuard`, `RwLock`, `Condvar`
//! with `wait`/`wait_for`. Used only by `scripts/offline-check.sh`; never
//! by real builds.

use std::fmt;
use std::sync;
use std::time::Duration;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

/// Move the guard out of `&mut`, run `f`, and put the result back. If `f`
/// panics the process aborts (the guard slot would be invalid), which is
/// acceptable for an offline typecheck stub.
fn replace_guard<'a, T: ?Sized>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let g = std::ptr::read(guard);
        let bomb = AbortOnDrop;
        let g = f(g);
        std::mem::forget(bomb);
        std::ptr::write(guard, g);
    }
}
