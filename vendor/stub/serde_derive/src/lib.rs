//! Offline stub of `serde_derive`: the derive macros expand to nothing.
//! The sibling `serde` stub's traits are blanket-implemented for every
//! type, so empty expansions still satisfy `Serialize`/`Deserialize`
//! bounds. Used only by `scripts/offline-check.sh`; never by real builds.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
