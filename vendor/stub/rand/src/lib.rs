//! Offline stub of `rand` covering the subset this workspace uses:
//! `SmallRng::seed_from_u64` and `Rng::{gen_range, gen, gen_bool}` over
//! half-open integer/float ranges. Deterministic splitmix64 core. Used
//! only by `scripts/offline-check.sh`; never by real builds.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a half-open range — the stub's stand-in for
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(lo < hi, "empty gen_range");
                let span = (hi - lo) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo + v) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample(rng, range.start as f64..range.end as f64) as f32
    }
}

pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self, 0.0..1.0) < p
    }

    fn gen<T: Generatable>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The stub's stand-in for `rand::distributions::Standard` sampling.
pub trait Generatable {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generatable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Generatable for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generatable for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Generatable for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng {
                state: state ^ 0x51_7c_c1_b7_27_22_0a_95,
            }
        }
    }

    pub type StdRng = SmallRng;
}
