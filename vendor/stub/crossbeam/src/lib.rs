//! Offline stub of `crossbeam`: the workspace declares the dependency but
//! currently uses none of its API, so the stub is empty. Used only by
//! `scripts/offline-check.sh`; never by real builds.
