//! Offline stub for the `loom` model checker.
//!
//! The workspace only depends on loom behind `--cfg loom` (the CI loom
//! job); this stub exists so plain offline builds can *resolve* the
//! target-cfg dependency without a registry. It is never compiled into a
//! `--cfg loom` build with meaningful semantics — the re-exports below
//! alias the std types so the crate type-checks if it is ever reached.

pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Run `f` once (the real loom explores every interleaving).
pub fn model<F: Fn() + Sync + Send + 'static>(f: F) {
    f();
}
