//! Offline stub of `bytes` implementing the subset this workspace uses:
//! `Bytes`/`BytesMut` backed by plain `Vec<u8>`, with big-endian `Buf`/
//! `BufMut` accessors. Used only by `scripts/offline-check.sh`; never by
//! real builds.

use std::ops::{Deref, RangeBounds};

/// Consuming big-endian reader.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
}

/// Appending big-endian writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_slice(&[val]);
        }
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.chunk()[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}
