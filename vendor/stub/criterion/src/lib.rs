//! Offline stub of `criterion`: same API shape for the subset this
//! workspace's benches use, but measurement is a fixed 3 iterations with
//! wall-clock prints — good enough to typecheck and smoke-run benches
//! offline, useless for statistics. Used only by
//! `scripts/offline-check.sh`; never by real builds.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// How a measurement is scaled when reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

pub struct Bencher {
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per = start.elapsed() / self.iters;
        println!("    {per:?}/iter (stub, {} iters)", self.iters);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    println!("bench {label}");
    let mut b = Bencher { iters: 3 };
    f(&mut b);
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoLabel, mut f: F) {
        run_one(&format!("{}/{}", self.name, id.into_label()), |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.name), |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Anything usable as a bench label (`&str` or `BenchmarkId`).
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _c: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoLabel, mut f: F) {
        run_one(&id.into_label(), |b| f(b));
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&id.name, |b| f(b, input));
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
