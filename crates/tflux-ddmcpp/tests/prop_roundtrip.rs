//! Property test: printing a module and reparsing it yields the same AST,
//! for arbitrary structurally-valid modules.

use proptest::prelude::*;
use tflux_ddmcpp::ast::{BlockDecl, DdmModule, ThreadDecl, ThreadShape, VarDecl};
use tflux_ddmcpp::directive::{DependsClause, ImportClause, MappingSpec};
use tflux_ddmcpp::print::print_module;

fn mapping() -> impl Strategy<Value = MappingSpec> {
    prop_oneof![
        Just(MappingSpec::All),
        Just(MappingSpec::OneToOne),
        (-4i32..5).prop_map(MappingSpec::Offset),
        (1u32..5).prop_map(MappingSpec::Group),
        (1u32..5).prop_map(MappingSpec::Expand),
    ]
}

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

fn shape() -> impl Strategy<Value = ThreadShape> {
    prop_oneof![
        Just(ThreadShape::Scalar),
        (0i64..16, 1i64..64, 1u32..8).prop_map(|(lo, len, unroll)| ThreadShape::Loop {
            lo,
            hi: lo + len,
            unroll,
        }),
    ]
}

prop_compose! {
    fn thread_decl(id: u32, peer_ids: Vec<u32>)(
        shape in shape(),
        kernel in prop::option::of(0u32..4),
        cost in prop_oneof![Just(0u64), 1u64..10_000],
        imports in prop::collection::vec((ident(), mapping()), 0..3),
        exports in prop::collection::vec(ident(), 0..3),
        dep_sel in prop::collection::vec((0usize..8, mapping()), 0..3),
        body in prop_oneof![Just(String::new()), Just("    do_work();\n".to_string())],
    ) -> ThreadDecl {
        let mut depends: Vec<DependsClause> = Vec::new();
        for (i, m) in dep_sel {
            if peer_ids.is_empty() { break; }
            let t = peer_ids[i % peer_ids.len()];
            if depends.iter().all(|d| d.thread != t) {
                depends.push(DependsClause { thread: t, mapping: m });
            }
        }
        let mut seen = Vec::new();
        let imports = imports
            .into_iter()
            .filter(|(v, _)| if seen.contains(v) { false } else { seen.push(v.clone()); true })
            .map(|(var, mapping)| ImportClause { var, mapping })
            .collect();
        ThreadDecl {
            id,
            shape,
            kernel,
            cost,
            imports,
            exports,
            depends,
            body,
            line: 0,
        }
    }
}

fn module() -> impl Strategy<Value = DdmModule> {
    let sizes = prop::collection::vec(1u32..4, 1..4); // threads per block
    (
        sizes,
        prop::option::of(1u32..9),
        prop::collection::vec((ident(), prop::option::of(1u64..256)), 0..3),
    )
        .prop_flat_map(|(block_sizes, kernels, vars)| {
            // dense unique thread ids; dependencies point to earlier
            // threads of the same block
            let mut next_id = 1u32;
            let mut decl_strats = Vec::new();
            for &count in &block_sizes {
                let mut block_threads = Vec::new();
                let mut earlier: Vec<u32> = Vec::new();
                for _ in 0..count {
                    let id = next_id;
                    next_id += 1;
                    block_threads.push(thread_decl(id, earlier.clone()));
                    earlier.push(id);
                }
                decl_strats.push(block_threads);
            }
            (Just(kernels), Just(vars), decl_strats)
        })
        .prop_map(|(kernels, vars, blocks)| DdmModule {
            kernels,
            vars: {
                let mut seen = Vec::new();
                vars.into_iter()
                    .filter(|(n, _)| {
                        if seen.contains(n) {
                            false
                        } else {
                            seen.push(n.clone());
                            true
                        }
                    })
                    .map(|(name, size)| VarDecl {
                        ty: "double".into(),
                        name,
                        size,
                    })
                    .collect()
            },
            defs: Vec::new(),
            blocks: blocks
                .into_iter()
                .enumerate()
                .map(|(i, threads)| BlockDecl {
                    id: i as u32 + 1,
                    threads,
                    line: 0,
                })
                .collect(),
            prelude: String::new(),
            epilogue: String::new(),
        })
}

/// Erase source-position fields, which printing legitimately changes.
fn normalize(mut m: DdmModule) -> DdmModule {
    for b in &mut m.blocks {
        b.line = 0;
        for t in &mut b.threads {
            t.line = 0;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(m in module()) {
        let printed = print_module(&m);
        let reparsed = tflux_ddmcpp::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(normalize(m), normalize(reparsed), "printed:\n{}", printed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC*") {
        let _ = tflux_ddmcpp::parse(&s); // may Err, must not panic
    }

    #[test]
    fn directive_parser_never_panics(s in "\\PC{0,60}") {
        let _ = tflux_ddmcpp::directive::parse_directive(&s, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every backend generates without panicking for arbitrary valid
    /// modules whose dependency mappings are arity-compatible (All only).
    #[test]
    fn codegen_never_panics_on_valid_modules(m in module()) {
        // force All mappings so lowering always validates
        let mut m = m;
        for b in &mut m.blocks {
            for t in &mut b.threads {
                for d in &mut t.depends {
                    d.mapping = MappingSpec::All;
                }
                for i in &mut t.imports {
                    i.mapping = MappingSpec::All;
                }
            }
        }
        for backend in [
            tflux_ddmcpp::Backend::Soft,
            tflux_ddmcpp::Backend::Sim,
            tflux_ddmcpp::Backend::Cell,
        ] {
            // import/export pairs can create implicit arcs that cycle with
            // the explicit depends; such modules must be *rejected*, not
            // panicked on — and accepted modules must generate real code
            match tflux_ddmcpp::codegen::generate(&m, backend) {
                Ok(out) => prop_assert!(out.contains("builder.build()")),
                Err(e) => prop_assert!(
                    matches!(e.kind, tflux_ddmcpp::error::ErrorKind::Lower(_)),
                    "unexpected error kind: {e}"
                ),
            }
        }
    }
}
