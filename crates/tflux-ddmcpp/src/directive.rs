//! The `#pragma ddm` directive grammar and its recursive-descent parser.
//!
//! ```text
//! directive   := startprogram [kernels(N)]
//!              | endprogram
//!              | block <id>
//!              | endblock
//!              | thread <id> attrs*
//!              | endthread
//!              | for thread <id> range(<expr>, <expr>) attrs*
//!              | endfor
//!              | var <type> <name> [size(<expr>)]
//!              | def <name> <int>
//!              | shutdown
//! attrs       := kernel <k> | arity(<expr>) | unroll(<expr>)
//!              | cost(<expr>) | import(var[:mapping], ...)
//!              | export(var, ...) | depends(<tid>[:mapping], ...)
//! mapping     := all | onetoone | offset(<int>) | group(<int>)
//!              | expand(<int>)
//! expr        := integer literal | defined constant name
//! ```
//!
//! The grammar is a faithful superset of the DDMCPP directives the TFlux
//! papers show (thread/block structure, loop threads, import/export,
//! dependencies), with `cost(..)` added so the sim/cell back-ends have a
//! work model, and `def` for compile-time constants.

use crate::error::{ErrorKind, PreprocessError};

/// Instance-mapping specification on an import/depends clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingSpec {
    /// All-to-all (broadcast/reduction/scalar).
    All,
    /// Context-to-context.
    OneToOne,
    /// Context + k.
    Offset(i32),
    /// `factor` producers per consumer (merge tree).
    Group(u32),
    /// `factor` consumers per producer (fork).
    Expand(u32),
}

/// An integer-valued expression: a literal or a `def`-defined constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Lit(i64),
    /// Named constant (resolved against `def` directives at parse time).
    Const(String),
}

/// One dependency clause: producer thread id + mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependsClause {
    /// Producer thread id.
    pub thread: u32,
    /// Instance mapping (defaults to [`MappingSpec::All`]).
    pub mapping: MappingSpec,
}

/// One import clause: variable name + mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportClause {
    /// Imported variable.
    pub var: String,
    /// Instance mapping for the producing thread's slots.
    pub mapping: MappingSpec,
}

/// Attributes of a `thread` / `for thread` directive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadAttrs {
    /// Pinned kernel, if any.
    pub kernel: Option<u32>,
    /// Loop range (for-threads only).
    pub range: Option<(Expr, Expr)>,
    /// Unroll factor.
    pub unroll: Option<Expr>,
    /// Explicit arity (scalar threads default to 1).
    pub arity: Option<Expr>,
    /// Cost model hint for the sim/cell back-ends (cycles per instance).
    pub cost: Option<Expr>,
    /// Imported shared variables.
    pub imports: Vec<ImportClause>,
    /// Exported shared variables.
    pub exports: Vec<String>,
    /// Declared dependencies.
    pub depends: Vec<DependsClause>,
}

/// A parsed directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// `startprogram [kernels(N)]`
    StartProgram {
        /// Requested kernel count, if specified.
        kernels: Option<Expr>,
    },
    /// `endprogram`
    EndProgram,
    /// `block <id>`
    Block(u32),
    /// `endblock`
    EndBlock,
    /// `thread <id> attrs*` (scalar thread)
    Thread {
        /// Thread id.
        id: u32,
        /// Attributes.
        attrs: ThreadAttrs,
    },
    /// `endthread`
    EndThread,
    /// `for thread <id> range(a,b) attrs*` (loop thread)
    ForThread {
        /// Thread id.
        id: u32,
        /// Attributes (range is mandatory).
        attrs: ThreadAttrs,
    },
    /// `endfor`
    EndFor,
    /// `var <type> <name> [size(N)]`
    Var {
        /// C/Rust type name (passed through).
        ty: String,
        /// Variable name.
        name: String,
        /// Element count (arrays) or None (scalars).
        size: Option<Expr>,
    },
    /// `def <name> <int>`
    Def {
        /// Constant name.
        name: String,
        /// Value.
        value: i64,
    },
    /// `shutdown`
    Shutdown,
}

/// Tokenizer for one directive line.
struct Toks<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Toks<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Toks { s, pos: 0, line }
    }

    fn err(&self, msg: impl Into<String>) -> PreprocessError {
        PreprocessError::at(self.line, ErrorKind::BadDirective(msg.into()))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.s[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.s[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), PreprocessError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}` at `{}`", &self.s[self.pos..])))
        }
    }

    fn word(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len() {
            let b = self.s.as_bytes()[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos > start {
            Some(&self.s[start..self.pos])
        } else {
            None
        }
    }

    fn int(&mut self) -> Result<i64, PreprocessError> {
        self.skip_ws();
        let start = self.pos;
        if self.s[self.pos..].starts_with('-') {
            self.pos += 1;
        }
        while self.pos < self.s.len() && self.s.as_bytes()[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.s[start..self.pos].parse().map_err(|_| {
            PreprocessError::at(
                self.line,
                ErrorKind::BadNumber(self.s[start..].chars().take(12).collect()),
            )
        })
    }

    fn u32(&mut self) -> Result<u32, PreprocessError> {
        let v = self.int()?;
        u32::try_from(v)
            .map_err(|_| PreprocessError::at(self.line, ErrorKind::BadNumber(v.to_string())))
    }

    fn expr(&mut self) -> Result<Expr, PreprocessError> {
        self.skip_ws();
        let c = self
            .peek()
            .ok_or_else(|| self.err("expected expression, found end of line"))?;
        if c.is_ascii_digit() || c == '-' {
            Ok(Expr::Lit(self.int()?))
        } else {
            let w = self
                .word()
                .ok_or_else(|| self.err("expected constant name"))?;
            Ok(Expr::Const(w.to_string()))
        }
    }

    fn done(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.s.len()
    }
}

/// Parse one directive line (text after `#pragma ddm`).
pub fn parse_directive(text: &str, line: usize) -> Result<Directive, PreprocessError> {
    let mut t = Toks::new(text, line);
    let head = t
        .word()
        .ok_or_else(|| t.err("empty directive"))?
        .to_string();
    let d = match head.as_str() {
        "startprogram" => {
            let mut kernels = None;
            let save = t.pos;
            match t.word() {
                Some("kernels") => {
                    t.expect('(')?;
                    kernels = Some(t.expr()?);
                    t.expect(')')?;
                }
                _ => t.pos = save,
            }
            Directive::StartProgram { kernels }
        }
        "endprogram" => Directive::EndProgram,
        "block" => Directive::Block(t.u32()?),
        "endblock" => Directive::EndBlock,
        "thread" => {
            let id = t.u32()?;
            let attrs = parse_attrs(&mut t)?;
            Directive::Thread { id, attrs }
        }
        "endthread" => Directive::EndThread,
        "for" => {
            match t.word() {
                Some("thread") => {}
                _ => return Err(t.err("expected `for thread <id>`")),
            }
            let id = t.u32()?;
            let attrs = parse_attrs(&mut t)?;
            if attrs.range.is_none() {
                return Err(t.err("`for thread` requires range(lo, hi)"));
            }
            Directive::ForThread { id, attrs }
        }
        "endfor" => Directive::EndFor,
        "var" => {
            let ty = t
                .word()
                .ok_or_else(|| t.err("expected type in `var`"))?
                .to_string();
            let name = t
                .word()
                .ok_or_else(|| t.err("expected name in `var`"))?
                .to_string();
            let mut size = None;
            let save = t.pos;
            match t.word() {
                Some("size") => {
                    t.expect('(')?;
                    size = Some(t.expr()?);
                    t.expect(')')?;
                }
                _ => t.pos = save,
            }
            Directive::Var { ty, name, size }
        }
        "def" => {
            let name = t
                .word()
                .ok_or_else(|| t.err("expected name in `def`"))?
                .to_string();
            let value = t.int()?;
            Directive::Def { name, value }
        }
        "shutdown" => Directive::Shutdown,
        other => return Err(t.err(format!("unknown directive `{other}`"))),
    };
    if !t.done() {
        return Err(t.err(format!(
            "trailing input after directive: `{}`",
            &t.s[t.pos..]
        )));
    }
    Ok(d)
}

fn parse_mapping(t: &mut Toks<'_>) -> Result<MappingSpec, PreprocessError> {
    let w = t
        .word()
        .ok_or_else(|| t.err("expected mapping name after `:`"))?
        .to_string();
    match w.as_str() {
        "all" => Ok(MappingSpec::All),
        "onetoone" => Ok(MappingSpec::OneToOne),
        "offset" => {
            t.expect('(')?;
            let k = t.int()? as i32;
            t.expect(')')?;
            Ok(MappingSpec::Offset(k))
        }
        "group" => {
            t.expect('(')?;
            let k = t.u32()?;
            t.expect(')')?;
            Ok(MappingSpec::Group(k))
        }
        "expand" => {
            t.expect('(')?;
            let k = t.u32()?;
            t.expect(')')?;
            Ok(MappingSpec::Expand(k))
        }
        other => Err(t.err(format!("unknown mapping `{other}`"))),
    }
}

fn parse_attrs(t: &mut Toks<'_>) -> Result<ThreadAttrs, PreprocessError> {
    let mut a = ThreadAttrs::default();
    loop {
        t.skip_ws();
        if t.done() {
            break;
        }
        let w = t
            .word()
            .ok_or_else(|| t.err("expected attribute name"))?
            .to_string();
        match w.as_str() {
            "kernel" => a.kernel = Some(t.u32()?),
            "range" => {
                t.expect('(')?;
                let lo = t.expr()?;
                t.expect(',')?;
                let hi = t.expr()?;
                t.expect(')')?;
                a.range = Some((lo, hi));
            }
            "unroll" => {
                t.expect('(')?;
                a.unroll = Some(t.expr()?);
                t.expect(')')?;
            }
            "arity" => {
                t.expect('(')?;
                a.arity = Some(t.expr()?);
                t.expect(')')?;
            }
            "cost" => {
                t.expect('(')?;
                a.cost = Some(t.expr()?);
                t.expect(')')?;
            }
            "import" => {
                t.expect('(')?;
                loop {
                    let var = t
                        .word()
                        .ok_or_else(|| t.err("expected variable in import(..)"))?
                        .to_string();
                    let mapping = if t.eat(':') {
                        parse_mapping(t)?
                    } else {
                        MappingSpec::All
                    };
                    a.imports.push(ImportClause { var, mapping });
                    if !t.eat(',') {
                        break;
                    }
                }
                t.expect(')')?;
            }
            "export" => {
                t.expect('(')?;
                loop {
                    let var = t
                        .word()
                        .ok_or_else(|| t.err("expected variable in export(..)"))?
                        .to_string();
                    a.exports.push(var);
                    if !t.eat(',') {
                        break;
                    }
                }
                t.expect(')')?;
            }
            "depends" => {
                t.expect('(')?;
                loop {
                    let thread = t.u32()?;
                    let mapping = if t.eat(':') {
                        parse_mapping(t)?
                    } else {
                        MappingSpec::All
                    };
                    a.depends.push(DependsClause { thread, mapping });
                    if !t.eat(',') {
                        break;
                    }
                }
                t.expect(')')?;
            }
            other => return Err(t.err(format!("unknown attribute `{other}`"))),
        }
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Directive {
        parse_directive(s, 1).unwrap()
    }

    #[test]
    fn start_and_end() {
        assert_eq!(p("startprogram"), Directive::StartProgram { kernels: None });
        assert_eq!(
            p("startprogram kernels(4)"),
            Directive::StartProgram {
                kernels: Some(Expr::Lit(4))
            }
        );
        assert_eq!(p("endprogram"), Directive::EndProgram);
    }

    #[test]
    fn block_and_thread() {
        assert_eq!(p("block 3"), Directive::Block(3));
        match p("thread 7 kernel 2 depends(1, 3:onetoone)") {
            Directive::Thread { id, attrs } => {
                assert_eq!(id, 7);
                assert_eq!(attrs.kernel, Some(2));
                assert_eq!(
                    attrs.depends,
                    vec![
                        DependsClause {
                            thread: 1,
                            mapping: MappingSpec::All
                        },
                        DependsClause {
                            thread: 3,
                            mapping: MappingSpec::OneToOne
                        },
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_thread_with_range_unroll() {
        match p("for thread 2 range(0, N) unroll(8) cost(1200)") {
            Directive::ForThread { id, attrs } => {
                assert_eq!(id, 2);
                assert_eq!(attrs.range, Some((Expr::Lit(0), Expr::Const("N".into()))));
                assert_eq!(attrs.unroll, Some(Expr::Lit(8)));
                assert_eq!(attrs.cost, Some(Expr::Lit(1200)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_thread_requires_range() {
        assert!(parse_directive("for thread 2 unroll(4)", 5).is_err());
    }

    #[test]
    fn import_export_mappings() {
        match p("thread 4 import(a:group(2), b) export(c, d)") {
            Directive::Thread { attrs, .. } => {
                assert_eq!(attrs.imports.len(), 2);
                assert_eq!(attrs.imports[0].mapping, MappingSpec::Group(2));
                assert_eq!(attrs.imports[1].mapping, MappingSpec::All);
                assert_eq!(attrs.exports, vec!["c".to_string(), "d".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn var_and_def() {
        assert_eq!(
            p("var double A size(1024)"),
            Directive::Var {
                ty: "double".into(),
                name: "A".into(),
                size: Some(Expr::Lit(1024))
            }
        );
        assert_eq!(
            p("def N 256"),
            Directive::Def {
                name: "N".into(),
                value: 256
            }
        );
    }

    #[test]
    fn negative_offset_mapping() {
        match p("thread 9 depends(8:offset(-1))") {
            Directive::Thread { attrs, .. } => {
                assert_eq!(attrs.depends[0].mapping, MappingSpec::Offset(-1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_with_context() {
        assert!(parse_directive("thread", 9).is_err());
        assert!(parse_directive("blah 3", 9).is_err());
        assert!(parse_directive("thread 1 bogus(3)", 9).is_err());
        assert!(parse_directive("thread 1 depends(1:weird)", 9).is_err());
        let e = parse_directive("thread 1 junk", 9).unwrap_err();
        assert_eq!(e.line, 9);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_directive("endprogram xx", 1).is_err());
    }

    #[test]
    fn shutdown_parses() {
        assert_eq!(p("shutdown"), Directive::Shutdown);
    }
}
