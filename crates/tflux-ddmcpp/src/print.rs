//! Pretty-print a [`DdmModule`] back to `#pragma ddm` source.
//!
//! `parse(print(parse(src)))` is the identity on the module AST — the
//! property test in `tests/prop_roundtrip.rs` holds the printer and parser
//! to that contract. Useful for normalizing hand-written sources and for
//! tooling that rewrites DDM programs.

use crate::ast::{DdmModule, ThreadDecl, ThreadShape};
use crate::directive::MappingSpec;
use std::fmt::Write as _;

fn mapping_suffix(m: MappingSpec) -> String {
    match m {
        MappingSpec::All => String::new(),
        MappingSpec::OneToOne => ":onetoone".into(),
        MappingSpec::Offset(k) => format!(":offset({k})"),
        MappingSpec::Group(f) => format!(":group({f})"),
        MappingSpec::Expand(f) => format!(":expand({f})"),
    }
}

fn thread_directive(t: &ThreadDecl) -> String {
    let mut s = String::new();
    match t.shape {
        ThreadShape::Scalar => {
            let _ = write!(s, "#pragma ddm thread {}", t.id);
        }
        ThreadShape::Loop { lo, hi, unroll } => {
            let _ = write!(s, "#pragma ddm for thread {} range({lo}, {hi})", t.id);
            if unroll != 1 {
                let _ = write!(s, " unroll({unroll})");
            }
        }
    }
    if let Some(k) = t.kernel {
        let _ = write!(s, " kernel {k}");
    }
    if t.cost != 0 {
        let _ = write!(s, " cost({})", t.cost);
    }
    if !t.imports.is_empty() {
        let items: Vec<String> = t
            .imports
            .iter()
            .map(|i| format!("{}{}", i.var, mapping_suffix(i.mapping)))
            .collect();
        let _ = write!(s, " import({})", items.join(", "));
    }
    if !t.exports.is_empty() {
        let _ = write!(s, " export({})", t.exports.join(", "));
    }
    if !t.depends.is_empty() {
        let items: Vec<String> = t
            .depends
            .iter()
            .map(|d| format!("{}{}", d.thread, mapping_suffix(d.mapping)))
            .collect();
        let _ = write!(s, " depends({})", items.join(", "));
    }
    s
}

/// Render the module as DDM-annotated source.
pub fn print_module(m: &DdmModule) -> String {
    let mut s = String::new();
    if !m.prelude.is_empty() {
        s.push_str(&m.prelude);
        if !m.prelude.ends_with('\n') {
            s.push('\n');
        }
    }
    for (name, value) in &m.defs {
        let _ = writeln!(s, "#pragma ddm def {name} {value}");
    }
    for v in &m.vars {
        match v.size {
            Some(n) => {
                let _ = writeln!(s, "#pragma ddm var {} {} size({n})", v.ty, v.name);
            }
            None => {
                let _ = writeln!(s, "#pragma ddm var {} {}", v.ty, v.name);
            }
        }
    }
    match m.kernels {
        Some(k) => {
            let _ = writeln!(s, "#pragma ddm startprogram kernels({k})");
        }
        None => {
            let _ = writeln!(s, "#pragma ddm startprogram");
        }
    }
    for block in &m.blocks {
        let _ = writeln!(s, "#pragma ddm block {}", block.id);
        for t in &block.threads {
            let _ = writeln!(s, "{}", thread_directive(t));
            if !t.body.is_empty() {
                s.push_str(&t.body);
                if !t.body.ends_with('\n') {
                    s.push('\n');
                }
            }
            let end = match t.shape {
                ThreadShape::Scalar => "endthread",
                ThreadShape::Loop { .. } => "endfor",
            };
            let _ = writeln!(s, "#pragma ddm {end}");
        }
        let _ = writeln!(s, "#pragma ddm endblock");
    }
    let _ = writeln!(s, "#pragma ddm endprogram");
    if !m.epilogue.is_empty() {
        s.push_str(&m.epilogue);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    const SRC: &str = r#"
// helper
#pragma ddm def N 32
#pragma ddm var double A size(N)
#pragma ddm startprogram kernels(3)
#pragma ddm block 1
#pragma ddm for thread 1 range(0, N) unroll(4) cost(900) export(A)
    body_line();
#pragma ddm endfor
#pragma ddm thread 2 kernel 1 import(A:group(2)) depends(1:onetoone)
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
// bye
"#;

    #[test]
    fn roundtrip_preserves_structure() {
        // Note: thread 2's import/depends mix is arity-invalid for
        // lowering, but parse/print must still round-trip the AST.
        let m1 = parse_module(SRC).unwrap();
        let printed = print_module(&m1);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(m1, m2, "printed:\n{printed}");
    }

    #[test]
    fn print_contains_all_clauses() {
        let m = parse_module(SRC).unwrap();
        let p = print_module(&m);
        assert!(p.contains("#pragma ddm def N 32"));
        assert!(p.contains("var double A size(32)")); // resolved at parse
        assert!(p.contains("range(0, 32) unroll(4)"));
        assert!(p.contains("cost(900)"));
        assert!(p.contains("import(A:group(2))"));
        assert!(p.contains("depends(1:onetoone)"));
        assert!(p.contains("kernel 1"));
        assert!(p.contains("body_line();"));
        assert!(p.contains("// helper"));
        assert!(p.contains("// bye"));
    }

    #[test]
    fn scalar_thread_prints_endthread() {
        let m = parse_module(
            "#pragma ddm startprogram\n#pragma ddm block 1\n#pragma ddm thread 5\n#pragma ddm endthread\n#pragma ddm endblock\n#pragma ddm endprogram\n",
        )
        .unwrap();
        let p = print_module(&m);
        assert!(p.contains("#pragma ddm thread 5\n#pragma ddm endthread"));
    }
}
