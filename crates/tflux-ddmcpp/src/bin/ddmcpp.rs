//! The DDMCPP command-line tool.
//!
//! ```text
//! ddmcpp --target soft|sim|cell [-o OUT.rs] INPUT.ddm
//! ddmcpp --dot INPUT.ddm            # print the synchronization graph
//! ddmcpp --check INPUT.ddm          # parse + validate only
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use tflux_ddmcpp::{codegen::Backend, lower, parse, preprocess};

fn usage() -> ExitCode {
    eprintln!(
        "usage: ddmcpp --target soft|sim|cell [-o OUT.rs] INPUT.ddm\n       ddmcpp --dot INPUT.ddm\n       ddmcpp --check INPUT.ddm"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target: Option<Backend> = None;
    let mut out: Option<String> = None;
    let mut input: Option<String> = None;
    let mut dot = false;
    let mut check = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--target" | "-t" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    return usage();
                };
                let Some(b) = Backend::from_name(name) else {
                    eprintln!("unknown target `{name}`");
                    return usage();
                };
                target = Some(b);
            }
            "-o" | "--output" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    return usage();
                };
                out = Some(path.clone());
            }
            "--dot" => dot = true,
            "--check" => check = true,
            "-h" | "--help" => return usage(),
            other if !other.starts_with('-') => input = Some(other.to_string()),
            _ => return usage(),
        }
        i += 1;
    }

    let Some(input) = input else {
        return usage();
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ddmcpp: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if check || dot {
        let module = match parse(&source) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("ddmcpp: {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let lowered = match lower::to_program(&module) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("ddmcpp: {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if dot {
            print!("{}", tflux_core::graph::to_dot(&lowered));
        } else {
            eprintln!(
                "ddmcpp: {input}: OK ({} blocks, {} threads, {} instances)",
                module.blocks.len(),
                module.thread_count(),
                lowered.total_instances()
            );
            for lint in tflux_core::graph::lints(&lowered) {
                eprintln!("ddmcpp: {input}: warning: {lint}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let Some(target) = target else {
        eprintln!("ddmcpp: missing --target");
        return usage();
    };
    match preprocess(&source, target) {
        Ok(code) => {
            match out {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, code) {
                        eprintln!("ddmcpp: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("ddmcpp: wrote {path}");
                }
                None => {
                    let mut stdout = std::io::stdout().lock();
                    let _ = stdout.write_all(code.as_bytes());
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ddmcpp: {input}: {e}");
            ExitCode::FAILURE
        }
    }
}
