//! # tflux-ddmcpp — the Data-Driven Multithreading preprocessor
//!
//! A from-scratch reimplementation of DDMCPP (Trancoso, Stavrou, Evripidou,
//! *DDMCPP: The Data-Driven Multithreading C Pre-Processor*, Interact-11
//! 2007), the tool §3.4 of the TFlux paper relies on: it "takes as input a
//! regular C code program along with DDM specific pragma directives and
//! outputs a program that includes all runtime support code and TFlux
//! interface calls".
//!
//! Like the original, the tool is split into a **front-end** — a
//! target-independent parser for the `#pragma ddm` directive grammar that
//! produces a [`ast::DdmModule`] — and per-target **back-ends** that
//! generate code for a concrete TFlux platform:
//!
//! * [`Backend::Soft`] emits a Rust program driving `tflux-runtime`
//!   (TFluxSoft);
//! * [`Backend::Sim`] emits a Rust harness for the `tflux-sim` hardware-TSU
//!   machine (TFluxHard), using the `cost(..)` thread attribute;
//! * [`Backend::Cell`] emits a Rust harness for `tflux-cell` (TFluxCell),
//!   deriving DMA import/export byte counts from the sizes of the
//!   `import(..)`/`export(..)` variables.
//!
//! One substitution relative to 2008: the original emitted C and leaned on
//! any commodity C compiler; this port emits Rust and leans on `rustc`. The
//! thread *bodies* are passed through verbatim (the front-end never parses
//! them, exactly like the original's front-end), so sources meant for the
//! soft back-end write their bodies in Rust.
//!
//! The directive grammar is documented in [`directive`], and
//! [`lower::to_program`] turns a parsed module straight into a validated
//! [`DdmProgram`](tflux_core::DdmProgram) without generating text — used by
//! tests and by anyone embedding the preprocessor.
//!
//! ```
//! let src = r#"
//! #pragma ddm startprogram kernels(2)
//! #pragma ddm block 1
//! #pragma ddm for thread 1 range(0, 8) unroll(2)
//!     // body code passes through verbatim
//! #pragma ddm endfor
//! #pragma ddm thread 2 depends(1)
//! #pragma ddm endthread
//! #pragma ddm endblock
//! #pragma ddm endprogram
//! "#;
//! let module = tflux_ddmcpp::parse(src).unwrap();
//! assert_eq!(module.blocks.len(), 1);
//! let program = tflux_ddmcpp::lower::to_program(&module).unwrap();
//! assert_eq!(program.blocks().len(), 1);
//! let rust = tflux_ddmcpp::preprocess(src, tflux_ddmcpp::Backend::Soft).unwrap();
//! assert!(rust.contains("ProgramBuilder"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod directive;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parse;
pub mod print;

pub use ast::DdmModule;
pub use codegen::Backend;
pub use error::PreprocessError;

/// Parse a DDM-annotated source into its module AST (front-end only).
pub fn parse(source: &str) -> Result<DdmModule, PreprocessError> {
    parse::parse_module(source)
}

/// Run the full preprocessor: parse + generate code for `backend`.
pub fn preprocess(source: &str, backend: Backend) -> Result<String, PreprocessError> {
    let module = parse::parse_module(source)?;
    codegen::generate(&module, backend)
}
