//! Assemble lexed pieces into a validated [`DdmModule`].

use crate::ast::{BlockDecl, DdmModule, ThreadDecl, ThreadShape, VarDecl};
use crate::directive::{parse_directive, Directive, Expr, ThreadAttrs};
use crate::error::{ErrorKind, PreprocessError};
use crate::lexer::{lex, Piece};
use std::collections::HashMap;

/// Parse a full source file into a module.
pub fn parse_module(source: &str) -> Result<DdmModule, PreprocessError> {
    let pieces = lex(source);
    let mut module = DdmModule::default();
    let mut defs: HashMap<String, i64> = HashMap::new();

    #[derive(PartialEq)]
    enum State {
        Before,
        InProgram,
        InBlock,
        InThread,
        After,
    }
    let mut state = State::Before;
    let mut cur_block: Option<BlockDecl> = None;
    let mut cur_thread: Option<ThreadDecl> = None;
    let mut seen_threads: HashMap<u32, usize> = HashMap::new();
    let mut seen_blocks: HashMap<u32, usize> = HashMap::new();

    let resolve =
        |e: &Expr, defs: &HashMap<String, i64>, line: usize| -> Result<i64, PreprocessError> {
            match e {
                Expr::Lit(v) => Ok(*v),
                Expr::Const(name) => defs.get(name).copied().ok_or_else(|| {
                    PreprocessError::at(line, ErrorKind::UnknownConstant(name.clone()))
                }),
            }
        };

    for piece in pieces {
        match piece {
            Piece::Code { text, .. } => match state {
                State::Before => module.prelude.push_str(&text),
                State::After => module.epilogue.push_str(&text),
                State::InThread => cur_thread
                    .as_mut()
                    .expect("thread open")
                    .body
                    .push_str(&text),
                // code between threads inside a program/block is dropped by
                // the original DDMCPP as well (only thread bodies execute);
                // we preserve it in the prelude to stay lossless.
                State::InProgram | State::InBlock => module.prelude.push_str(&text),
            },
            Piece::Pragma { line, text } => {
                let d = parse_directive(&text, line)?;
                match d {
                    Directive::Def { name, value } => {
                        defs.insert(name.clone(), value);
                        module.defs.push((name, value));
                    }
                    Directive::Var { ty, name, size } => {
                        let size = match size {
                            Some(e) => Some(resolve(&e, &defs, line)?.max(0) as u64),
                            None => None,
                        };
                        module.vars.push(VarDecl { ty, name, size });
                    }
                    Directive::StartProgram { kernels } => {
                        if state != State::Before {
                            return Err(PreprocessError::at(
                                line,
                                ErrorKind::Misplaced("startprogram".into()),
                            ));
                        }
                        if let Some(k) = kernels {
                            module.kernels = Some(resolve(&k, &defs, line)?.max(1) as u32);
                        }
                        state = State::InProgram;
                    }
                    Directive::EndProgram => {
                        if state != State::InProgram {
                            return Err(PreprocessError::at(
                                line,
                                ErrorKind::Misplaced("endprogram".into()),
                            ));
                        }
                        state = State::After;
                    }
                    Directive::Block(id) => {
                        if state != State::InProgram {
                            return Err(PreprocessError::at(
                                line,
                                ErrorKind::Misplaced(format!("block {id}")),
                            ));
                        }
                        if seen_blocks.insert(id, line).is_some() {
                            return Err(PreprocessError::at(line, ErrorKind::DuplicateBlock(id)));
                        }
                        cur_block = Some(BlockDecl {
                            id,
                            threads: Vec::new(),
                            line,
                        });
                        state = State::InBlock;
                    }
                    Directive::EndBlock => {
                        if state != State::InBlock {
                            return Err(PreprocessError::at(
                                line,
                                ErrorKind::Misplaced("endblock".into()),
                            ));
                        }
                        module.blocks.push(cur_block.take().expect("block open"));
                        state = State::InProgram;
                    }
                    Directive::Thread { id, attrs } | Directive::ForThread { id, attrs } => {
                        if state != State::InBlock {
                            return Err(PreprocessError::at(
                                line,
                                ErrorKind::Misplaced(format!("thread {id}")),
                            ));
                        }
                        if seen_threads.insert(id, line).is_some() {
                            return Err(PreprocessError::at(line, ErrorKind::DuplicateThread(id)));
                        }
                        let shape = build_shape(&attrs, &defs, line, &resolve)?;
                        let cost = match &attrs.cost {
                            Some(e) => resolve(e, &defs, line)?.max(0) as u64,
                            None => 0,
                        };
                        cur_thread = Some(ThreadDecl {
                            id,
                            shape,
                            kernel: attrs.kernel,
                            cost,
                            imports: attrs.imports,
                            exports: attrs.exports,
                            depends: attrs.depends,
                            body: String::new(),
                            line,
                        });
                        state = State::InThread;
                    }
                    Directive::EndThread | Directive::EndFor => {
                        if state != State::InThread {
                            return Err(PreprocessError::at(
                                line,
                                ErrorKind::Misplaced("endthread/endfor".into()),
                            ));
                        }
                        cur_block
                            .as_mut()
                            .expect("block open")
                            .threads
                            .push(cur_thread.take().expect("thread open"));
                        state = State::InBlock;
                    }
                    Directive::Shutdown => {
                        // informational in this port: kernels always shut
                        // down through the last block's outlet
                    }
                }
            }
        }
    }

    match state {
        State::Before => return Err(PreprocessError::at(0, ErrorKind::NoProgram)),
        State::After => {}
        _ => return Err(PreprocessError::at(0, ErrorKind::UnterminatedProgram)),
    }

    validate_dependencies(&module)?;
    Ok(module)
}

fn build_shape(
    attrs: &ThreadAttrs,
    defs: &HashMap<String, i64>,
    line: usize,
    resolve: &impl Fn(&Expr, &HashMap<String, i64>, usize) -> Result<i64, PreprocessError>,
) -> Result<ThreadShape, PreprocessError> {
    if let Some((lo, hi)) = &attrs.range {
        let lo = resolve(lo, defs, line)?;
        let hi = resolve(hi, defs, line)?;
        let unroll = match &attrs.unroll {
            Some(e) => resolve(e, defs, line)?.max(1) as u32,
            None => 1,
        };
        Ok(ThreadShape::Loop { lo, hi, unroll })
    } else if let Some(a) = &attrs.arity {
        let n = resolve(a, defs, line)?.max(1);
        Ok(ThreadShape::Loop {
            lo: 0,
            hi: n,
            unroll: 1,
        })
    } else {
        Ok(ThreadShape::Scalar)
    }
}

fn validate_dependencies(module: &DdmModule) -> Result<(), PreprocessError> {
    for block in &module.blocks {
        let ids: Vec<u32> = block.threads.iter().map(|t| t.id).collect();
        for t in &block.threads {
            for d in &t.depends {
                if !ids.contains(&d.thread) {
                    return Err(PreprocessError::at(
                        t.line,
                        ErrorKind::UnknownDependency {
                            thread: t.id,
                            depends_on: d.thread,
                        },
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ThreadShape;

    const GOOD: &str = r#"
// preamble comment
#pragma ddm def N 64
#pragma ddm var double A size(N)
#pragma ddm startprogram kernels(4)
#pragma ddm block 1
#pragma ddm for thread 1 range(0, N) unroll(4) export(A) cost(500)
    A[i] = i;
#pragma ddm endfor
#pragma ddm thread 2 import(A) depends(1)
    check(A);
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
// epilogue
"#;

    #[test]
    fn parses_complete_module() {
        let m = parse_module(GOOD).unwrap();
        assert_eq!(m.kernels, Some(4));
        assert_eq!(m.defs, vec![("N".to_string(), 64)]);
        assert_eq!(m.vars.len(), 1);
        assert_eq!(m.vars[0].size, Some(64));
        assert_eq!(m.blocks.len(), 1);
        let b = &m.blocks[0];
        assert_eq!(b.threads.len(), 2);
        assert_eq!(
            b.threads[0].shape,
            ThreadShape::Loop {
                lo: 0,
                hi: 64,
                unroll: 4
            }
        );
        assert_eq!(b.threads[0].shape.arity(), 16);
        assert!(b.threads[0].body.contains("A[i] = i;"));
        assert_eq!(b.threads[1].depends[0].thread, 1);
        assert!(m.prelude.contains("preamble"));
        assert!(m.epilogue.contains("epilogue"));
        assert_eq!(b.threads[0].cost, 500);
    }

    #[test]
    fn duplicate_thread_rejected() {
        let src = "#pragma ddm startprogram\n#pragma ddm block 1\n\
                   #pragma ddm thread 1\n#pragma ddm endthread\n\
                   #pragma ddm thread 1\n#pragma ddm endthread\n\
                   #pragma ddm endblock\n#pragma ddm endprogram\n";
        let e = parse_module(src).unwrap_err();
        assert_eq!(e.kind, ErrorKind::DuplicateThread(1));
        assert_eq!(e.line, 5);
    }

    #[test]
    fn duplicate_block_rejected() {
        let src = "#pragma ddm startprogram\n#pragma ddm block 1\n#pragma ddm endblock\n\
                   #pragma ddm block 1\n#pragma ddm endblock\n#pragma ddm endprogram\n";
        assert_eq!(
            parse_module(src).unwrap_err().kind,
            ErrorKind::DuplicateBlock(1)
        );
    }

    #[test]
    fn unknown_dependency_rejected() {
        let src = "#pragma ddm startprogram\n#pragma ddm block 1\n\
                   #pragma ddm thread 1 depends(9)\n#pragma ddm endthread\n\
                   #pragma ddm endblock\n#pragma ddm endprogram\n";
        assert!(matches!(
            parse_module(src).unwrap_err().kind,
            ErrorKind::UnknownDependency {
                thread: 1,
                depends_on: 9
            }
        ));
    }

    #[test]
    fn cross_block_dependency_rejected() {
        let src = "#pragma ddm startprogram\n\
                   #pragma ddm block 1\n#pragma ddm thread 1\n#pragma ddm endthread\n#pragma ddm endblock\n\
                   #pragma ddm block 2\n#pragma ddm thread 2 depends(1)\n#pragma ddm endthread\n#pragma ddm endblock\n\
                   #pragma ddm endprogram\n";
        assert!(matches!(
            parse_module(src).unwrap_err().kind,
            ErrorKind::UnknownDependency { .. }
        ));
    }

    #[test]
    fn missing_startprogram() {
        assert_eq!(
            parse_module("int main() {}\n").unwrap_err().kind,
            ErrorKind::NoProgram
        );
    }

    #[test]
    fn unterminated_program() {
        let src = "#pragma ddm startprogram\n#pragma ddm block 1\n";
        assert_eq!(
            parse_module(src).unwrap_err().kind,
            ErrorKind::UnterminatedProgram
        );
    }

    #[test]
    fn misplaced_thread_outside_block() {
        let src = "#pragma ddm startprogram\n#pragma ddm thread 1\n";
        assert!(matches!(
            parse_module(src).unwrap_err().kind,
            ErrorKind::Misplaced(_)
        ));
    }

    #[test]
    fn unknown_constant_in_range() {
        let src = "#pragma ddm startprogram\n#pragma ddm block 1\n\
                   #pragma ddm for thread 1 range(0, MISSING)\n#pragma ddm endfor\n\
                   #pragma ddm endblock\n#pragma ddm endprogram\n";
        assert!(matches!(
            parse_module(src).unwrap_err().kind,
            ErrorKind::UnknownConstant(_)
        ));
    }

    #[test]
    fn arity_attribute_makes_loop_thread() {
        let src = "#pragma ddm startprogram\n#pragma ddm block 1\n\
                   #pragma ddm thread 1 arity(12)\n#pragma ddm endthread\n\
                   #pragma ddm endblock\n#pragma ddm endprogram\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.blocks[0].threads[0].shape.arity(), 12);
    }

    #[test]
    fn multiple_blocks_ordered() {
        let src = "#pragma ddm startprogram\n\
                   #pragma ddm block 2\n#pragma ddm thread 1\n#pragma ddm endthread\n#pragma ddm endblock\n\
                   #pragma ddm block 1\n#pragma ddm thread 2\n#pragma ddm endthread\n#pragma ddm endblock\n\
                   #pragma ddm endprogram\n";
        let m = parse_module(src).unwrap();
        // declaration order wins; ids are labels
        assert_eq!(m.blocks[0].id, 2);
        assert_eq!(m.blocks[1].id, 1);
    }
}
