//! Lower a parsed [`DdmModule`] directly into a validated core-model
//! [`DdmProgram`] — the semantic heart shared by every back-end.
//!
//! Dependencies come from two places, mirroring DDMCPP semantics:
//! explicit `depends(..)` clauses, and *implicit* producer/consumer arcs
//! derived from `import`/`export` variable pairs within a block (a thread
//! importing a variable another thread of the same block exports depends on
//! that thread).

use crate::ast::{DdmModule, ThreadDecl};
use crate::error::{ErrorKind, PreprocessError};
use std::collections::HashMap;
use tflux_core::ids::KernelId;
use tflux_core::prelude::*;

/// The result of lowering: the program plus the user-id → ThreadId map.
#[derive(Debug)]
pub struct Lowered {
    /// The validated program.
    pub program: DdmProgram,
    /// Mapping from the source's thread ids to core thread ids.
    pub thread_ids: HashMap<u32, ThreadId>,
}

/// Lower a module into a core program.
pub fn lower(module: &DdmModule) -> Result<Lowered, PreprocessError> {
    let mut b = ProgramBuilder::new();
    let mut thread_ids: HashMap<u32, ThreadId> = HashMap::new();

    for block in &module.blocks {
        let blk = b.block();
        for t in &block.threads {
            let mut spec = ThreadSpec::new(format!("t{}", t.id), t.shape.arity());
            if let Some(k) = t.kernel {
                spec = spec.with_affinity(Affinity::Fixed(KernelId(k)));
            }
            thread_ids.insert(t.id, b.thread(blk, spec));
        }
        // explicit + implicit arcs, deduplicated
        let mut arcs_done: Vec<(u32, u32)> = Vec::new();
        for t in &block.threads {
            for d in &t.depends {
                if arcs_done.contains(&(d.thread, t.id)) {
                    continue;
                }
                arcs_done.push((d.thread, t.id));
                b.arc(
                    thread_ids[&d.thread],
                    thread_ids[&t.id],
                    DdmModule::core_mapping(d.mapping),
                )
                .map_err(|e| PreprocessError::at(t.line, ErrorKind::Lower(e.to_string())))?;
            }
            for imp in &t.imports {
                if let Some(producer) = exporter_of(block.threads.as_slice(), &imp.var, t.id) {
                    if arcs_done.contains(&(producer.id, t.id)) {
                        continue;
                    }
                    arcs_done.push((producer.id, t.id));
                    b.arc(
                        thread_ids[&producer.id],
                        thread_ids[&t.id],
                        DdmModule::core_mapping(imp.mapping),
                    )
                    .map_err(|e| PreprocessError::at(t.line, ErrorKind::Lower(e.to_string())))?;
                }
            }
        }
    }

    let program = b
        .build()
        .map_err(|e| PreprocessError::at(0, ErrorKind::Lower(e.to_string())))?;
    Ok(Lowered {
        program,
        thread_ids,
    })
}

/// Convenience wrapper returning only the program.
pub fn to_program(module: &DdmModule) -> Result<DdmProgram, PreprocessError> {
    lower(module).map(|l| l.program)
}

/// Lower and automatically split blocks for a TSU of the given capacity
/// (see [`tflux_core::split::split_for_capacity`]). The returned thread-id
/// map composes the module's user ids with the split's renumbering.
pub fn to_program_with_capacity(
    module: &DdmModule,
    capacity: usize,
) -> Result<Lowered, PreprocessError> {
    let l = lower(module)?;
    let (program, renumber) = tflux_core::split::split_for_capacity(&l.program, capacity)
        .map_err(|e| PreprocessError::at(0, ErrorKind::Lower(e.to_string())))?;
    let thread_ids = l
        .thread_ids
        .into_iter()
        .map(|(user, old)| (user, renumber[&old]))
        .collect();
    Ok(Lowered {
        program,
        thread_ids,
    })
}

fn exporter_of<'a>(threads: &'a [ThreadDecl], var: &str, consumer: u32) -> Option<&'a ThreadDecl> {
    threads
        .iter()
        .find(|t| t.id != consumer && t.exports.iter().any(|e| e == var))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    #[test]
    fn lowers_structure_and_arcs() {
        let src = r#"
#pragma ddm def N 32
#pragma ddm startprogram kernels(2)
#pragma ddm block 1
#pragma ddm for thread 1 range(0, N) unroll(2) export(A)
#pragma ddm endfor
#pragma ddm thread 2 import(A)
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
"#;
        let m = parse_module(src).unwrap();
        let l = lower(&m).unwrap();
        let p = &l.program;
        assert_eq!(p.blocks().len(), 1);
        let t1 = l.thread_ids[&1];
        let t2 = l.thread_ids[&2];
        assert_eq!(p.thread(t1).arity, 16);
        assert_eq!(p.thread(t2).arity, 1);
        // implicit import arc: thread 2 waits for all 16 producers
        assert_eq!(p.initial_rc(tflux_core::Instance::scalar(t2)), 16);
    }

    #[test]
    fn explicit_and_implicit_arcs_deduplicate() {
        let src = r#"
#pragma ddm startprogram
#pragma ddm block 1
#pragma ddm thread 1 export(x)
#pragma ddm endthread
#pragma ddm thread 2 import(x) depends(1)
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
"#;
        let m = parse_module(src).unwrap();
        let l = lower(&m).unwrap();
        let t2 = l.thread_ids[&2];
        assert_eq!(l.program.initial_rc(tflux_core::Instance::scalar(t2)), 1);
    }

    #[test]
    fn dependency_cycle_reported_as_lower_error() {
        let src = r#"
#pragma ddm startprogram
#pragma ddm block 1
#pragma ddm thread 1 depends(2)
#pragma ddm endthread
#pragma ddm thread 2 depends(1)
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
"#;
        let m = parse_module(src).unwrap();
        assert!(matches!(lower(&m).unwrap_err().kind, ErrorKind::Lower(_)));
    }

    #[test]
    fn incompatible_mapping_reported() {
        let src = r#"
#pragma ddm startprogram
#pragma ddm block 1
#pragma ddm for thread 1 range(0, 8)
#pragma ddm endfor
#pragma ddm for thread 2 range(0, 9) depends(1:onetoone)
#pragma ddm endfor
#pragma ddm endblock
#pragma ddm endprogram
"#;
        let m = parse_module(src).unwrap();
        assert!(lower(&m).is_err());
    }

    #[test]
    fn capacity_lowering_splits_blocks() {
        let src = r#"
#pragma ddm startprogram
#pragma ddm block 1
#pragma ddm for thread 1 range(0, 8)
#pragma ddm endfor
#pragma ddm for thread 2 range(0, 8) depends(1)
#pragma ddm endfor
#pragma ddm endblock
#pragma ddm endprogram
"#;
        let m = parse_module(src).unwrap();
        let l = to_program_with_capacity(&m, 10).unwrap();
        assert!(l.program.blocks().len() >= 2);
        assert!(l.program.max_block_instances() <= 10);
        // user ids still resolve
        assert!(l.thread_ids.contains_key(&1) && l.thread_ids.contains_key(&2));
    }

    #[test]
    fn lowered_program_executes() {
        let src = r#"
#pragma ddm startprogram
#pragma ddm block 1
#pragma ddm for thread 1 range(0, 16)
#pragma ddm endfor
#pragma ddm thread 2 depends(1)
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm block 2
#pragma ddm thread 3
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
"#;
        let m = parse_module(src).unwrap();
        let p = to_program(&m).unwrap();
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let order = tflux_core::tsu::drain_sequential(&mut tsu);
        assert_eq!(order.len(), p.total_instances());
    }
}
