//! The front-end AST: a parsed DDM module, target-independent.

use crate::directive::{DependsClause, ImportClause, MappingSpec};

/// Whether a thread is a scalar or a loop thread, and its resolved shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadShape {
    /// A single-instance thread.
    Scalar,
    /// A loop thread over `lo..hi`, unrolled by `unroll`.
    Loop {
        /// First iteration (inclusive).
        lo: i64,
        /// Last iteration (exclusive).
        hi: i64,
        /// Unroll factor (≥ 1).
        unroll: u32,
    },
}

impl ThreadShape {
    /// The DThread arity this shape produces.
    pub fn arity(&self) -> u32 {
        match *self {
            ThreadShape::Scalar => 1,
            ThreadShape::Loop { lo, hi, unroll } => {
                let n = (hi - lo).max(0) as u64;
                n.div_ceil(unroll.max(1) as u64).max(1) as u32
            }
        }
    }
}

/// A declared DThread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDecl {
    /// User-assigned id (unique within the program).
    pub id: u32,
    /// Shape (scalar or resolved loop).
    pub shape: ThreadShape,
    /// Pinned kernel, if requested.
    pub kernel: Option<u32>,
    /// Per-instance cost hint for the sim/cell back-ends.
    pub cost: u64,
    /// Imported shared variables.
    pub imports: Vec<ImportClause>,
    /// Exported shared variables.
    pub exports: Vec<String>,
    /// Dependencies on other threads of the same block.
    pub depends: Vec<DependsClause>,
    /// The verbatim body code.
    pub body: String,
    /// Source line of the declaring directive.
    pub line: usize,
}

/// A declared DDM block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDecl {
    /// User-assigned id.
    pub id: u32,
    /// Threads in declaration order.
    pub threads: Vec<ThreadDecl>,
    /// Source line.
    pub line: usize,
}

/// A shared-variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Type name, passed through to the back-end.
    pub ty: String,
    /// Variable name.
    pub name: String,
    /// Element count for arrays (None = scalar).
    pub size: Option<u64>,
}

impl VarDecl {
    /// Approximate byte size of the variable (used by the cell back-end for
    /// DMA cost derivation). Unknown types count as 8 bytes per element.
    pub fn byte_size(&self) -> u64 {
        let elem: u64 = match self.ty.as_str() {
            "char" | "i8" | "u8" | "bool" => 1,
            "short" | "i16" | "u16" => 2,
            "int" | "float" | "i32" | "u32" | "f32" => 4,
            _ => 8,
        };
        elem * self.size.unwrap_or(1)
    }
}

/// A fully parsed DDM module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DdmModule {
    /// Requested kernel count (`kernels(N)` on `startprogram`).
    pub kernels: Option<u32>,
    /// Shared-variable declarations.
    pub vars: Vec<VarDecl>,
    /// Compile-time constants (`def`).
    pub defs: Vec<(String, i64)>,
    /// Blocks in program order.
    pub blocks: Vec<BlockDecl>,
    /// Code before `startprogram` (includes, helpers) — passed through.
    pub prelude: String,
    /// Code after `endprogram` — passed through.
    pub epilogue: String,
}

impl DdmModule {
    /// Find a thread declaration by user id.
    pub fn thread(&self, id: u32) -> Option<&ThreadDecl> {
        self.blocks
            .iter()
            .flat_map(|b| b.threads.iter())
            .find(|t| t.id == id)
    }

    /// Find a variable declaration.
    pub fn var(&self, name: &str) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Total declared threads.
    pub fn thread_count(&self) -> usize {
        self.blocks.iter().map(|b| b.threads.len()).sum()
    }

    /// Translate a [`MappingSpec`] into the core model's mapping.
    pub fn core_mapping(spec: MappingSpec) -> tflux_core::ArcMapping {
        match spec {
            MappingSpec::All => tflux_core::ArcMapping::All,
            MappingSpec::OneToOne => tflux_core::ArcMapping::OneToOne,
            MappingSpec::Offset(k) => tflux_core::ArcMapping::Offset(k),
            MappingSpec::Group(f) => tflux_core::ArcMapping::Group { factor: f },
            MappingSpec::Expand(f) => tflux_core::ArcMapping::Expand { factor: f },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_arity_with_unroll() {
        let s = ThreadShape::Loop {
            lo: 0,
            hi: 100,
            unroll: 8,
        };
        assert_eq!(s.arity(), 13);
        assert_eq!(ThreadShape::Scalar.arity(), 1);
        let empty = ThreadShape::Loop {
            lo: 5,
            hi: 5,
            unroll: 1,
        };
        assert_eq!(empty.arity(), 1);
    }

    #[test]
    fn var_byte_sizes() {
        let v = VarDecl {
            ty: "double".into(),
            name: "A".into(),
            size: Some(64),
        };
        assert_eq!(v.byte_size(), 512);
        let s = VarDecl {
            ty: "int".into(),
            name: "n".into(),
            size: None,
        };
        assert_eq!(s.byte_size(), 4);
    }

    #[test]
    fn mapping_translation() {
        assert_eq!(
            DdmModule::core_mapping(MappingSpec::Group(2)),
            tflux_core::ArcMapping::Group { factor: 2 }
        );
        assert_eq!(
            DdmModule::core_mapping(MappingSpec::Offset(-3)),
            tflux_core::ArcMapping::Offset(-3)
        );
    }
}
