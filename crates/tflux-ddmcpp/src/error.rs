//! Preprocessor errors, with source line numbers.

use std::fmt;

/// An error produced while preprocessing a DDM source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreprocessError {
    /// 1-based source line the error was detected at (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// The kinds of preprocessing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// A `#pragma ddm` line that does not parse.
    BadDirective(String),
    /// A directive that is illegal where it appears (nesting violations).
    Misplaced(String),
    /// A thread id declared twice.
    DuplicateThread(u32),
    /// A block id declared twice.
    DuplicateBlock(u32),
    /// `depends(..)` names a thread that is not declared in the same block.
    UnknownDependency {
        /// The thread with the bad dependency.
        thread: u32,
        /// The missing producer.
        depends_on: u32,
    },
    /// A `def` constant referenced but never defined.
    UnknownConstant(String),
    /// The module has no `startprogram`.
    NoProgram,
    /// `endprogram` missing.
    UnterminatedProgram,
    /// The module failed core-model validation when lowered.
    Lower(String),
    /// A numeric field failed to parse.
    BadNumber(String),
}

impl fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            ErrorKind::BadDirective(s) => write!(f, "cannot parse directive: {s}"),
            ErrorKind::Misplaced(s) => write!(f, "directive not allowed here: {s}"),
            ErrorKind::DuplicateThread(t) => write!(f, "thread {t} declared twice"),
            ErrorKind::DuplicateBlock(b) => write!(f, "block {b} declared twice"),
            ErrorKind::UnknownDependency { thread, depends_on } => write!(
                f,
                "thread {thread} depends on thread {depends_on}, which is not declared \
                 in the same block"
            ),
            ErrorKind::UnknownConstant(c) => write!(f, "constant `{c}` is not defined"),
            ErrorKind::NoProgram => write!(f, "no `#pragma ddm startprogram` found"),
            ErrorKind::UnterminatedProgram => {
                write!(f, "missing `#pragma ddm endprogram`")
            }
            ErrorKind::Lower(s) => write!(f, "invalid DDM program: {s}"),
            ErrorKind::BadNumber(s) => write!(f, "bad number: {s}"),
        }
    }
}

impl std::error::Error for PreprocessError {}

impl PreprocessError {
    /// Construct an error at a line.
    pub fn at(line: usize, kind: ErrorKind) -> Self {
        PreprocessError { line, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = PreprocessError::at(42, ErrorKind::DuplicateThread(3));
        assert_eq!(e.to_string(), "line 42: thread 3 declared twice");
    }

    #[test]
    fn file_level_errors_have_no_line_prefix() {
        let e = PreprocessError::at(0, ErrorKind::NoProgram);
        assert!(!e.to_string().starts_with("line"));
    }
}
