//! Source-level lexing: split a C-like source file into DDM pragma lines
//! and pass-through code segments.
//!
//! The lexer is comment- and string-aware so that a `#pragma ddm` inside a
//! block comment or a string literal is *not* treated as a directive —
//! exactly the behaviour a C preprocessor front-end must have.

/// One element of the source file, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piece {
    /// A `#pragma ddm …` line: the directive text after `ddm`, trimmed.
    Pragma {
        /// 1-based source line.
        line: usize,
        /// Directive text (e.g. `thread 3 kernel 1`).
        text: String,
    },
    /// Verbatim code (may span many lines, newlines preserved).
    Code {
        /// 1-based line the segment starts at.
        line: usize,
        /// The raw text.
        text: String,
    },
}

/// Split `source` into pragma directives and code segments.
pub fn lex(source: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut code = String::new();
    let mut code_start = 1usize;
    let mut in_block_comment = false;

    for (i, raw_line) in source.lines().enumerate() {
        let lineno = i + 1;
        let is_pragma = !in_block_comment && is_ddm_pragma(raw_line);
        if is_pragma {
            if !code.trim().is_empty() {
                pieces.push(Piece::Code {
                    line: code_start,
                    text: std::mem::take(&mut code),
                });
            } else {
                code.clear();
            }
            code_start = lineno + 1;
            let after = raw_line.trim_start();
            let after = after.strip_prefix("#pragma").unwrap().trim_start();
            let after = after.strip_prefix("ddm").unwrap().trim();
            pieces.push(Piece::Pragma {
                line: lineno,
                text: after.to_string(),
            });
        } else {
            if code.is_empty() {
                code_start = lineno;
            }
            code.push_str(raw_line);
            code.push('\n');
            in_block_comment = track_block_comment(raw_line, in_block_comment);
        }
    }
    if !code.trim().is_empty() {
        pieces.push(Piece::Code {
            line: code_start,
            text: code,
        });
    }
    pieces
}

/// Whether a line is a `#pragma ddm` directive (outside comments/strings).
fn is_ddm_pragma(line: &str) -> bool {
    let t = line.trim_start();
    if let Some(rest) = t.strip_prefix("#pragma") {
        let rest = rest.trim_start();
        rest == "ddm" || rest.starts_with("ddm ") || rest.starts_with("ddm\t")
    } else {
        false
    }
}

/// Track whether we are inside a `/* … */` comment after this line,
/// respecting line comments and string literals.
fn track_block_comment(line: &str, mut inside: bool) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_str: Option<u8> = None;
    while i < bytes.len() {
        if inside {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                inside = false;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        match in_str {
            Some(q) => {
                if bytes[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == q {
                    in_str = None;
                }
                i += 1;
            }
            None => match bytes[i] {
                b'"' | b'\'' => {
                    in_str = Some(bytes[i]);
                    i += 1;
                }
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => return inside,
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                    inside = true;
                    i += 2;
                }
                _ => i += 1,
            },
        }
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_pragmas_and_code() {
        let src = "int x;\n#pragma ddm startprogram\ny += 1;\n#pragma ddm endprogram\n";
        let p = lex(src);
        assert_eq!(p.len(), 4);
        assert_eq!(
            p[1],
            Piece::Pragma {
                line: 2,
                text: "startprogram".into()
            }
        );
        match &p[2] {
            Piece::Code { line, text } => {
                assert_eq!(*line, 3);
                assert_eq!(text, "y += 1;\n");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pragma_inside_block_comment_ignored() {
        let src = "/*\n#pragma ddm thread 1\n*/\ncode();\n";
        let p = lex(src);
        assert!(p.iter().all(|x| matches!(x, Piece::Code { .. })));
    }

    #[test]
    fn pragma_after_closed_comment_detected() {
        let src = "/* c */\n#pragma ddm block 1\n";
        let p = lex(src);
        assert!(matches!(&p[1], Piece::Pragma { text, .. } if text == "block 1"));
    }

    #[test]
    fn line_comment_does_not_open_block() {
        let src = "// /*\n#pragma ddm block 1\n";
        let p = lex(src);
        assert!(p.iter().any(|x| matches!(x, Piece::Pragma { .. })));
    }

    #[test]
    fn string_containing_comment_opener_is_ignored() {
        let src = "char *s = \"/*\";\n#pragma ddm block 1\n";
        let p = lex(src);
        assert!(p.iter().any(|x| matches!(x, Piece::Pragma { .. })));
    }

    #[test]
    fn non_ddm_pragma_is_code() {
        let src = "#pragma once\n#pragma ddmx foo\n";
        let p = lex(src);
        assert!(p.iter().all(|x| matches!(x, Piece::Code { .. })));
    }

    #[test]
    fn indented_pragma_detected() {
        let src = "    #pragma ddm endthread\n";
        let p = lex(src);
        assert!(matches!(&p[0], Piece::Pragma { text, .. } if text == "endthread"));
    }

    #[test]
    fn blank_code_segments_are_dropped() {
        let src = "#pragma ddm startprogram\n\n\n#pragma ddm endprogram\n";
        let p = lex(src);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn escaped_quote_in_string() {
        let src = "char *s = \"a\\\"/*\";\n#pragma ddm block 2\n";
        let p = lex(src);
        assert!(p.iter().any(|x| matches!(x, Piece::Pragma { .. })));
    }
}
