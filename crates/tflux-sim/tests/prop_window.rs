//! Property tests of the conservative-window invariant that licenses the
//! parallel sharded engine: within one merge round no lane can influence
//! another, because every cross-lane push lands at least `tsu.access +
//! tsu.op` cycles after the event that caused it. The engine debug-asserts
//! that bound on every cross-lane push (`RoundIo::push`), so in these
//! debug-build runs each case fuzzes the invariant directly; the tests
//! then check its observable consequence — reports that are field-for-field
//! identical across engines, host-thread counts, and round lengths — for
//! arbitrary `TsuCosts`, programs, and machine shapes.

use proptest::prelude::*;
use tflux_core::prelude::*;
use tflux_sim::config::TsuCosts;
use tflux_sim::work::{FnWork, InstanceWork};
use tflux_sim::{DesEngine, Machine, MachineConfig};

#[derive(Debug, Clone)]
struct Draw {
    layers: Vec<u32>,
    cores: u32,
    xeon: bool,
    base_cost: u64,
    tsu: TsuCosts,
    epochs: u64,
}

fn draw() -> impl Strategy<Value = Draw> {
    (
        prop::collection::vec(1u32..8, 1..4),
        2u32..9,
        any::<bool>(),
        10u64..3_000,
        // TsuCosts spanning hardware-like (~cycles) to software-like
        // (~hundreds of cycles) regimes, so the window `access + op`
        // ranges from 2 to ~1000 cycles
        (1u64..300, 1u64..700, 0u64..200, 0u64..50),
        1u64..4,
    )
        .prop_map(
            |(layers, cores, xeon, base_cost, (access, op, ko, steal), epochs)| Draw {
                layers,
                cores,
                xeon,
                base_cost,
                tsu: TsuCosts {
                    access,
                    op,
                    kernel_overhead: ko,
                    steal,
                },
                epochs,
            },
        )
}

fn build(layers: &[u32]) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let mut prev: Option<ThreadId> = None;
    for (li, &arity) in layers.iter().enumerate() {
        let t = b.thread(blk, ThreadSpec::new(format!("l{li}"), arity));
        if let Some(p) = prev {
            b.arc(p, t, ArcMapping::All).unwrap();
        }
        prev = Some(t);
    }
    b.build().unwrap()
}

fn config(d: &Draw) -> MachineConfig {
    let cfg = if d.xeon {
        MachineConfig::xeon_x3650(d.cores)
    } else {
        MachineConfig::bagle(d.cores)
    };
    cfg.with_tsu(d.tsu)
}

fn run(d: &Draw, cfg: MachineConfig, engine: DesEngine, host_threads: u32) -> String {
    let p = build(&d.layers);
    let base = d.base_cost;
    let src = FnWork(move |i: Instance, out: &mut InstanceWork| {
        out.compute = base + i.context.0 as u64 * 13;
        // shared traffic so the memsys directory actually carries
        // cross-domain invalidations between rounds
        out.accesses.push(tflux_sim::work::MemAccess::read(
            0x2000_0000 + (i.context.0 as u64 % 8) * 64,
        ));
        if i.context.0.is_multiple_of(4) {
            out.accesses
                .push(tflux_sim::work::MemAccess::write(0x2000_0000));
        }
    });
    let r = Machine::new(cfg)
        .with_engine(engine)
        .with_host_threads(host_threads)
        .with_epochs(d.epochs)
        .run(&p, &src)
        .expect("sim run");
    format!("{r:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary `TsuCosts` the window bound holds on every cross-lane
    /// push (enforced by the engine's debug assertion while these cases
    /// run) and the engines agree field-for-field — including the parallel
    /// sharded engine on 2 and 4 host threads.
    #[test]
    fn window_invariant_holds_for_random_tsu_costs(d in draw()) {
        let cfg = config(&d);
        let oracle = run(&d, cfg, DesEngine::Global, 1);
        prop_assert_eq!(&run(&d, cfg, DesEngine::Sharded, 1), &oracle);
        prop_assert_eq!(&run(&d, cfg, DesEngine::Sharded, 2), &oracle);
        prop_assert_eq!(&run(&d, cfg, DesEngine::Sharded, 4), &oracle);
    }

    /// The merge round length is a *model* parameter (it quantizes when
    /// cross-domain coherence traffic becomes visible), never an engine
    /// knob: at any fixed round length — shorter than the window, equal to
    /// it, or absurdly long — every engine and host-thread count must
    /// replay the exact same event history.
    #[test]
    fn engines_agree_at_any_round_length(d in draw(), ri in 0usize..4) {
        let r = [1u64, 17, 256, 4096][ri];
        let cfg = config(&d).with_merge_round(r);
        let oracle = run(&d, cfg, DesEngine::Global, 1);
        prop_assert_eq!(&run(&d, cfg, DesEngine::Sharded, 1), &oracle);
        prop_assert_eq!(&run(&d, cfg, DesEngine::Sharded, 4), &oracle);
    }
}
