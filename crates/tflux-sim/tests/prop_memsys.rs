//! Property tests of the cache/coherence model: for arbitrary interleaved
//! access streams the model must preserve its structural invariants —
//! counters add up, latencies are bounded, dirty data has a unique owner
//! (observable as: a reader after a foreign write never gets a stale L1
//! hit), and the model is deterministic.

use proptest::prelude::*;
use tflux_sim::config::MachineConfig;
use tflux_sim::memsys::{AccessClass, MemorySystem};

#[derive(Debug, Clone, Copy)]
struct Op {
    core: u32,
    line: u64,
    write: bool,
}

fn ops(cores: u32) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0..cores, 0u64..32, any::<bool>()).prop_map(|(core, line, write)| Op {
            core,
            line: line * 64, // distinct cache lines in a small working set
            write,
        }),
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn counters_add_up_and_latencies_are_bounded(stream in ops(4)) {
        let cfg = MachineConfig::bagle(4);
        let mut m = MemorySystem::new(cfg);
        let worst = cfg.l1.read_lat
            + cfg.l1.write_lat
            + cfg.l2.read_lat
            + cfg.mem_lat
            + cfg.c2c_lat
            + 10_000; // generous bus-queue allowance
        let mut t = 0u64;
        for op in &stream {
            let (lat, _) = m.access(op.core, t, op.line, op.write);
            prop_assert!(lat <= worst, "latency {lat} out of bounds");
            t += lat;
        }
        prop_assert_eq!(m.stats().accesses(), stream.len() as u64);
    }

    #[test]
    fn no_stale_read_after_foreign_write(stream in ops(4)) {
        // Replay the stream with every access in its own round; after any
        // write by core W, the very next read of that line by a different
        // core must NOT be an L1 hit (its copy was invalidated at the
        // commit). Cross-domain effects are only promised at round
        // boundaries, so the serial replay commits between accesses.
        let mut m = MemorySystem::new(MachineConfig::bagle(4));
        let mut last_writer: std::collections::HashMap<u64, u32> = Default::default();
        let mut t = 0u64;
        for op in &stream {
            let (lat, class) = m.access(op.core, t, op.line, op.write);
            m.commit_round();
            t += lat;
            if op.write {
                last_writer.insert(op.line, op.core);
            } else if let Some(&w) = last_writer.get(&op.line) {
                if w != op.core {
                    // the line was dirtied elsewhere since this core last
                    // touched it; serving it from local L1 would be stale
                    prop_assert_ne!(
                        class,
                        AccessClass::L1Hit,
                        "core {} read stale line {:#x} (writer {})",
                        op.core,
                        op.line,
                        w
                    );
                }
                // this read makes the value shared/clean again for us
                if !op.write {
                    // subsequent same-core reads may hit; only track dirty
                    if w != op.core {
                        last_writer.remove(&op.line);
                    }
                }
            }
        }
    }

    #[test]
    fn model_is_deterministic(stream in ops(3)) {
        let run = || {
            let mut m = MemorySystem::new(MachineConfig::bagle(3));
            let mut t = 0u64;
            let mut lats = Vec::new();
            for op in &stream {
                let (lat, _) = m.access(op.core, t, op.line, op.write);
                lats.push(lat);
                t += lat;
            }
            (lats, m.stats().accesses(), m.stats().bus_busy)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn repeated_private_access_converges_to_l1_hits(core in 0u32..4, line in 0u64..64) {
        let mut m = MemorySystem::new(MachineConfig::bagle(4));
        let addr = line * 64;
        let mut t = 0;
        for i in 0..10 {
            let (lat, class) = m.access(core, t, addr, false);
            t += lat + 100;
            if i > 0 {
                prop_assert_eq!(class, AccessClass::L1Hit);
            }
        }
    }

    #[test]
    fn remote_node_cold_miss_never_beats_local(page in 0u64..256, write in any::<bool>()) {
        // For any page on the 4-node T3-4, a cold miss from a core on the
        // page's home node is a lower bound on the same cold miss from any
        // core on a foreign node: remote memory can be slower, never
        // faster.
        let cfg = MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4");
        let addr = page * 4096;
        let home = cfg.home_node(addr);
        let cold = |core: u32| {
            let mut m = MemorySystem::new(cfg);
            m.access(core, 0, addr, write).0
        };
        let local = cold(home * cfg.topology.cores_per_node);
        for node in 0..cfg.nodes() {
            if node == home {
                continue;
            }
            let remote = cold(node * cfg.topology.cores_per_node);
            prop_assert!(
                remote >= local,
                "remote-node miss ({remote}) beat the local one ({local}) for page {page:#x}"
            );
        }
    }

    #[test]
    fn channel_wait_is_monotone_in_concurrency(n in 1usize..24) {
        // Flood one node's memory channel with `n` simultaneous cold
        // misses to distinct pages it homes: the cycles spent queued on
        // the saturated channel must never *decrease* when one more
        // concurrent transfer joins.
        let cfg = MachineConfig::sparc_t3_4(64).expect("64 kernels fit the T3-4");
        let flood = |n: usize| {
            let mut m = MemorySystem::new(cfg);
            for i in 0..n {
                // page i*nodes homes on node 0; one requesting core per
                // access so every miss is cold and concurrent at t = 0
                let addr = (i as u64 * cfg.nodes() as u64) * 4096;
                m.access((i % 64) as u32, 0, addr, false);
            }
            m.stats().channel_wait
        };
        prop_assert!(
            flood(n + 1) >= flood(n),
            "channel wait dropped when concurrency rose from {n} to {}",
            n + 1
        );
    }
}
