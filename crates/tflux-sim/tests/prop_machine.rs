//! Property tests of the full machine: random programs with random work
//! models always complete every instance, produce physically consistent
//! traces, and respect the work/span lower bound.

use proptest::prelude::*;
use tflux_core::prelude::*;
use tflux_sim::work::{FnWork, InstanceWork};
use tflux_sim::{Machine, MachineConfig};

#[derive(Debug, Clone)]
struct Desc {
    layers: Vec<u32>,
    blocks: u32,
    cores: u32,
    base_cost: u64,
}

fn desc() -> impl Strategy<Value = Desc> {
    (
        prop::collection::vec(1u32..10, 1..4),
        1u32..3,
        1u32..9,
        10u64..5_000,
    )
        .prop_map(|(layers, blocks, cores, base_cost)| Desc {
            layers,
            blocks,
            cores,
            base_cost,
        })
}

fn build(d: &Desc) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    for _ in 0..d.blocks {
        let blk = b.block();
        let mut prev: Option<ThreadId> = None;
        for (li, &arity) in d.layers.iter().enumerate() {
            let t = b.thread(blk, ThreadSpec::new(format!("l{li}"), arity));
            if let Some(p) = prev {
                b.arc(p, t, ArcMapping::All).unwrap();
            }
            prev = Some(t);
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn machine_completes_arbitrary_programs(d in desc()) {
        let p = build(&d);
        let base = d.base_cost;
        let src = FnWork(move |i: Instance, out: &mut InstanceWork| {
            out.compute = base + i.context.0 as u64 * 7;
            // touch a private line now and then
            if i.context.0.is_multiple_of(3) {
                out.accesses.push(tflux_sim::work::MemAccess::read(
                    0x1000_0000 + i.context.0 as u64 * 64,
                ));
            }
        });
        let m = Machine::new(MachineConfig::bagle(d.cores));
        let (report, trace) = m.run_traced(&p, &src).expect("sim run");
        prop_assert_eq!(report.instances, p.total_instances());
        prop_assert_eq!(report.tsu.completions as usize, p.total_instances());
        prop_assert!(trace.find_overlap().is_none());
        prop_assert!(report.cycles >= trace.end_cycle());

        // wall time can never beat the critical path (work/span bound with
        // the same weights the source charges, ignoring memory time)
        let ws = tflux_core::graph::work_span(&p, |t, c| {
            if p.thread(t).kind == tflux_core::ThreadKind::App {
                (base + c.0 as u64 * 7) as f64
            } else {
                0.0
            }
        });
        prop_assert!(
            (report.cycles as f64) >= ws.span,
            "cycles {} < span {}",
            report.cycles,
            ws.span
        );
        // nor beat perfect parallelism over the cores
        prop_assert!((report.cycles as f64) * (d.cores as f64) >= ws.work);
    }

    #[test]
    fn more_cores_never_slow_down_compute_bound_programs(
        arity in 4u32..40,
        cost in 1_000u64..50_000,
    ) {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::new("w", arity));
        let p = b.build().unwrap();
        let src = FnWork(move |_: Instance, out: &mut InstanceWork| {
            out.compute = cost;
        });
        let c2 = Machine::new(MachineConfig::bagle(2)).run(&p, &src).unwrap().cycles;
        let c8 = Machine::new(MachineConfig::bagle(8)).run(&p, &src).unwrap().cycles;
        prop_assert!(c8 <= c2, "8 cores ({c8}) slower than 2 ({c2})");
    }
}
