//! # tflux-sim — the TFluxHard substrate
//!
//! A deterministic, cycle-approximate, discrete-event simulator of a
//! shared-memory chip multiprocessor with a memory-mapped **hardware TSU
//! Group**, standing in for the paper's Simics/DML full-system setup
//! (§4.1/§6.1.1). It also provides a **software-TSU cost mode** so the
//! TFluxSoft speedup curves of Fig. 6 can be regenerated on a machine with
//! any number of host cores.
//!
//! What is modeled:
//!
//! * per-core L1 data caches and per-group unified L2 caches
//!   (set-associative, LRU), with the paper's Bagle and Xeon geometries as
//!   presets ([`config::MachineConfig::bagle`],
//!   [`config::MachineConfig::xeon_x3650`]);
//! * a MESI-style invalidation protocol over a shared, arbitrated system
//!   network — L2-to-L2 transfers, read-for-ownership upgrades, and L1
//!   invalidations are all charged bus time, so coherency misses and bus
//!   saturation limit scaling exactly where the paper says they do (MMULT);
//! * the **TSU Group** behind a Memory-Mapped Interface: every kernel↔TSU
//!   command costs an MMI access (paper: L1 latency + 4 cycles) plus a
//!   configurable TSU processing time (the §4.1 knob whose 1→128-cycle
//!   sweep changes performance by <1%);
//! * the kernel loop of Fig. 2 on every core: fetch → execute → complete,
//!   with cores parked (not polling) while the TSU has nothing ready.
//!
//! Workloads plug in as [`work::WorkSource`]s: for every DThread instance
//! they yield compute cycles plus a cache-line-granular memory access
//! stream. The simulator executes the *same* [`DdmProgram`]s as the real
//! runtime — scheduling decisions come from the same
//! [`CoreTsu`](tflux_core::CoreTsu) composition of Graph Memory,
//! Synchronization Memory, and Queue Units.
//!
//! [`DdmProgram`]: tflux_core::DdmProgram

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod error;
pub mod event;
pub mod machine;
pub mod memsys;
pub mod mmi;
pub mod report;
pub mod trace;
pub mod tsu_dev;
pub mod work;

pub use config::{CacheConfig, ConfigError, MachineConfig, Topology, TsuCosts};
pub use error::SimError;
pub use event::{EventQueue, ShardedEventQueue};
pub use machine::{DesEngine, Machine};
pub use report::SimReport;
pub use trace::ExecTrace;
pub use work::{InstanceWork, MemAccess, WorkSource};
