//! The simulated memory hierarchy: per-core L1s, per-group L2s, a MESI-style
//! invalidation protocol, and an arbitrated system network (bus).
//!
//! The model tracks cache-line *presence* and coherence state, charging
//! latencies per access — the same level of detail as the Simics `gcache`
//! setup of §6.1.1, which the paper notes "allow Simics to simulate and take
//! into account the overhead of the MESI protocol". Dirty lines have a
//! unique owner core; writes invalidate all foreign copies over the bus;
//! L2-to-L2 (cache-to-cache) supplies model coherency misses, which is what
//! keeps MMULT below ideal speedup in Fig. 5.
//!
//! # Partitioned state and rounds
//!
//! State is split by **domain** (one L2 group — on the NUMA presets a
//! group maps onto a node slice) so the parallel DES engine can advance
//! domains on separate host threads. A domain owns its cores' L1s and its
//! L2 outright. Everything cross-domain — the directory, the system bus,
//! and the per-node memory channels — lives in [`SharedMem`] as a
//! *snapshot*: within a round a domain reads the snapshot and accumulates
//! its own effects in a private [`RoundCtx`] overlay (a materialized
//! directory view plus an ordered edit log, per-window bus/channel booking
//! deltas, foreign-cache invalidation records, and a stats delta). At the
//! round boundary [`MemorySystem::commit_round`] merges every overlay into
//! the snapshot **in domain-index order**, which makes the merged state —
//! and therefore the entire simulation — independent of host-thread
//! scheduling. Directory merges replay semantic edits (set/clear sharer
//! bits, ownership claims) rather than overwriting whole entries, so
//! concurrent sharer additions from different domains both survive; bus
//! merges sum per-window booked cycles, which is commutative.
//!
//! The serial engines run the *same* snapshot/overlay/commit cycle, so all
//! engines observe identical coherence timing by construction.

use crate::cache::Cache;
use crate::config::MachineConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classification of one memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Served by the core's own L1.
    L1Hit,
    /// Served by the core's group L2.
    L2Hit,
    /// Write that only needed an ownership upgrade (data already local).
    Upgrade,
    /// Served by another group's L2 over the bus — a coherency miss.
    RemoteHit,
    /// Served by main memory.
    MemMiss,
}

/// Aggregate counters of the memory system.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (after L1 miss).
    pub l2_hits: u64,
    /// Ownership upgrades (write to a locally-shared line).
    pub upgrades: u64,
    /// Cache-to-cache transfers (coherency misses).
    pub remote_hits: u64,
    /// Main-memory fetches.
    pub mem_misses: u64,
    /// L1/L2 copies invalidated by remote writes.
    pub invalidations: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
    /// Cycles any access spent waiting for the bus.
    pub bus_wait: u64,
    /// Cycles the bus was occupied.
    pub bus_busy: u64,
    /// Transfers (memory fetches or cache-to-cache) that crossed a NUMA
    /// node boundary and paid the topology's remote penalty.
    #[serde(default)]
    pub remote_node: u64,
    /// Cycles accesses queued on saturated per-node memory channels
    /// (beyond the raw transfer occupancy).
    #[serde(default)]
    pub channel_wait: u64,
}

impl MemStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.upgrades + self.remote_hits + self.mem_misses
    }

    /// Fraction of accesses that were coherency (remote) misses.
    pub fn coherency_ratio(&self) -> f64 {
        let t = self.accesses();
        if t == 0 {
            0.0
        } else {
            self.remote_hits as f64 / t as f64
        }
    }

    /// Accumulate another counter set (used when merging round deltas).
    fn add(&mut self, o: &MemStats) {
        self.l1_hits += o.l1_hits;
        self.l2_hits += o.l2_hits;
        self.upgrades += o.upgrades;
        self.remote_hits += o.remote_hits;
        self.mem_misses += o.mem_misses;
        self.invalidations += o.invalidations;
        self.writebacks += o.writebacks;
        self.bus_wait += o.bus_wait;
        self.bus_busy += o.bus_busy;
        self.remote_node += o.remote_node;
        self.channel_wait += o.channel_wait;
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Dir {
    /// Cores holding the line in L1.
    l1s: u64,
    /// L2 groups holding the line.
    l2s: u64,
    /// Core holding the line modified (implies exclusivity).
    owner: Option<u32>,
}

/// One semantic directory mutation. Edits are replayed — against the
/// domain's own view immediately, and against the shared snapshot at
/// commit — instead of writing back whole entries, so concurrent edits to
/// the same line from different domains compose rather than clobber.
#[derive(Clone, Copy, Debug)]
enum DirEdit {
    /// `l1s |= 1 << core`.
    AddL1 { line: u64, core: u32 },
    /// `l1s &= !(1 << core)` (L1 victim eviction).
    DelL1 { line: u64, core: u32 },
    /// `l2s |= 1 << group`.
    AddL2 { line: u64, group: u32 },
    /// `l2s &= !(1 << group)` (L2 victim eviction).
    DelL2 { line: u64, group: u32 },
    /// `owner = None` (demotion / dirty supply / owner eviction).
    DropOwner { line: u64 },
    /// Exclusive write claim: `owner = Some(core)`, `l1s = 1 << core`,
    /// `l2s = 1 << group`.
    Claim { line: u64, core: u32, group: u32 },
}

impl DirEdit {
    fn line(&self) -> u64 {
        match *self {
            DirEdit::AddL1 { line, .. }
            | DirEdit::DelL1 { line, .. }
            | DirEdit::AddL2 { line, .. }
            | DirEdit::DelL2 { line, .. }
            | DirEdit::DropOwner { line }
            | DirEdit::Claim { line, .. } => line,
        }
    }

    fn apply(&self, d: &mut Dir) {
        match *self {
            DirEdit::AddL1 { core, .. } => d.l1s |= 1 << core,
            DirEdit::DelL1 { core, .. } => d.l1s &= !(1 << core),
            DirEdit::AddL2 { group, .. } => d.l2s |= 1 << group,
            DirEdit::DelL2 { group, .. } => d.l2s &= !(1 << group),
            DirEdit::DropOwner { .. } => d.owner = None,
            DirEdit::Claim { core, group, .. } => {
                d.owner = Some(core);
                d.l1s = 1 << core;
                d.l2s = 1 << group;
            }
        }
    }
}

/// A foreign-cache invalidation issued by a write; applied to the target
/// domain's cache at commit time (own-domain targets are invalidated
/// directly, inside the round).
#[derive(Clone, Copy, Debug)]
enum Inval {
    /// Drop `line` from `core`'s L1.
    L1 { core: u32, line: u64 },
    /// Drop `l2line` from `group`'s L2.
    L2 { group: u32, l2line: u64 },
}

/// Bandwidth-window bus model.
///
/// Time is divided into fixed windows; each window can carry `window`
/// cycles of transfer. A transaction books its cost into the window of its
/// issue time, spilling into later windows when one fills up — the spill is
/// the queueing delay. Unlike a single `busy_until` timestamp, this stays
/// causal when cores simulate accesses in loosely-ordered chunks: a
/// transaction issued at an earlier time books into an earlier window even
/// if a later-time transaction was processed first.
///
/// Bookings go through a per-domain *overlay* (committed snapshot + local
/// delta); [`Bus::merge`] folds an overlay into the snapshot by summing
/// per-window cycles, so merged windows can exceed nominal capacity —
/// subsequent rounds then see zero free space and queue, which is exactly
/// the saturation the model wants to expose.
#[derive(Debug)]
struct Bus {
    window: u64,
    /// Booked cycles per window, keyed by window index (sparse; old
    /// windows are pruned at merge time).
    used: HashMap<u64, u64>,
    horizon: u64,
}

impl Bus {
    fn new(window: u64) -> Self {
        Bus {
            window: window.max(1),
            used: HashMap::new(),
            horizon: 0,
        }
    }

    /// Book `cost` cycles starting at `now` against the committed snapshot
    /// plus `local` overlay, recording the booking into `local`; returns
    /// the total delay (queueing + transfer) experienced.
    fn book_overlaid(&self, local: &mut HashMap<u64, u64>, now: u64, cost: u64) -> u64 {
        let w = self.window;
        let mut win = now / w;
        let mut remaining = cost;
        let mut end = now;
        loop {
            let committed = self.used.get(&win).copied().unwrap_or(0);
            let mine = local.entry(win).or_insert(0);
            // committed windows can be overbooked after a merge
            let free = w.saturating_sub(committed + *mine);
            if free >= remaining {
                *mine += remaining;
                end = end.max(win * w + committed + *mine);
                break;
            }
            remaining -= free;
            *mine += free;
            win += 1;
        }
        end.saturating_sub(now)
    }

    /// Fold a round's overlay into the snapshot (summing is commutative,
    /// so merge order across domains cannot matter) and prune windows far
    /// behind the newest booking.
    fn merge(&mut self, local: &mut HashMap<u64, u64>) {
        let mut max_win = self.horizon;
        for (win, cycles) in local.drain() {
            *self.used.entry(win).or_insert(0) += cycles;
            max_win = max_win.max(win);
        }
        if max_win > self.horizon + 64 {
            let cutoff = max_win.saturating_sub(64);
            self.used.retain(|&k, _| k >= cutoff);
            self.horizon = max_win;
        }
    }
}

/// Cross-domain state: the directory, the system bus, and the per-node
/// memory channels. Within a round this is a read-only snapshot; it only
/// mutates in [`MemorySystem::commit_round`].
#[derive(Debug)]
pub(crate) struct SharedMem {
    dir: HashMap<u64, Dir>,
    bus: Bus,
    /// Per-NUMA-node memory channels (bandwidth windows; only booked when
    /// the topology models channel occupancy).
    channels: Vec<Bus>,
}

/// One domain's private round overlay.
#[derive(Debug, Default)]
struct RoundCtx {
    /// Materialized view of every directory line this domain touched this
    /// round: snapshot value at first touch, plus own edits.
    dir_view: HashMap<u64, Dir>,
    /// Ordered edit log, replayed into the snapshot at commit.
    dir_log: Vec<DirEdit>,
    /// Per-window bus cycles booked this round.
    bus_local: HashMap<u64, u64>,
    /// Per-node channel cycles booked this round.
    chan_local: Vec<HashMap<u64, u64>>,
    /// Foreign-cache invalidations to deliver at commit.
    invals: Vec<Inval>,
    /// Stats delta.
    stats: MemStats,
}

/// The caches and round overlay of one L2 group.
#[derive(Debug)]
pub(crate) struct DomainMem {
    cfg: MachineConfig,
    group: u32,
    base_core: u32,
    l1: Vec<Cache>,
    l2: Cache,
    /// L1 lines per L2 line.
    ratio: u64,
    l1_shift: u32,
    rnd: RoundCtx,
}

/// The simulated memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MachineConfig,
    pub(crate) shared: SharedMem,
    pub(crate) domains: Vec<DomainMem>,
    committed: MemStats,
}

impl MemorySystem {
    /// Build the hierarchy for a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.cores <= 64, "core bitmap limited to 64 cores");
        let groups = cfg.l2_groups();
        let per_group = cfg.l2_group.max(1);
        let ratio = (cfg.l2.line / cfg.l1.line).max(1) as u64;
        let nodes = cfg.nodes() as usize;
        let domains = (0..groups)
            .map(|g| {
                let base = g * per_group;
                let span = per_group.min(cfg.cores - base);
                DomainMem {
                    cfg,
                    group: g,
                    base_core: base,
                    l1: (0..span).map(|_| Cache::new(&cfg.l1)).collect(),
                    l2: Cache::new(&cfg.l2),
                    ratio,
                    l1_shift: cfg.l1.line.trailing_zeros(),
                    rnd: RoundCtx {
                        chan_local: (0..nodes).map(|_| HashMap::new()).collect(),
                        ..RoundCtx::default()
                    },
                }
            })
            .collect();
        MemorySystem {
            cfg,
            shared: SharedMem {
                dir: HashMap::new(),
                // window sized so that ~256 line transfers fit per window:
                // wide enough to absorb chunk-granular reordering, narrow
                // enough to expose sustained saturation
                bus: Bus::new(256 * cfg.bus_transfer.max(1)),
                channels: (0..nodes)
                    .map(|_| Bus::new(256 * cfg.topology.channel_transfer.max(1)))
                    .collect(),
            },
            domains,
            committed: MemStats::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Perform one access; returns `(latency_cycles, class)`.
    ///
    /// `now` is the core-local cycle at which the access issues; bus
    /// arbitration is charged relative to it. Cross-domain effects become
    /// visible to other domains at the next [`MemorySystem::commit_round`].
    pub fn access(
        &mut self,
        core: u32,
        now: u64,
        byte_addr: u64,
        write: bool,
    ) -> (u64, AccessClass) {
        let g = self.cfg.group_of(core) as usize;
        let MemorySystem {
            shared, domains, ..
        } = self;
        domains[g].access(shared, core, now, byte_addr, write)
    }

    /// Merge every domain's round overlay into the shared snapshot, in
    /// domain-index order. Call at each round (window) boundary; the
    /// result is identical no matter which host threads ran the domains.
    pub fn commit_round(&mut self) {
        let MemorySystem {
            shared,
            domains,
            committed,
            ..
        } = self;
        let mut refs: Vec<&mut DomainMem> = domains.iter_mut().collect();
        commit_parts(shared, &mut refs, committed);
    }

    /// Counters: committed rounds plus any still-open round deltas.
    pub fn stats(&self) -> MemStats {
        let mut s = self.committed;
        for d in &self.domains {
            s.add(&d.rnd.stats);
        }
        s
    }

    /// Split the system into its shared snapshot, per-domain slices, and
    /// committed counters — the layout the parallel engine threads through
    /// its worker pool.
    pub(crate) fn into_parts(self) -> (SharedMem, Vec<DomainMem>, MemStats) {
        (self.shared, self.domains, self.committed)
    }

    /// Total L1 miss ratio across cores.
    pub fn l1_miss_ratio(&self) -> f64 {
        let (h, m) = self
            .domains
            .iter()
            .flat_map(|d| d.l1.iter())
            .fold((0u64, 0u64), |(h, m), c| (h + c.hits, m + c.misses));
        if h + m == 0 {
            0.0
        } else {
            m as f64 / (h + m) as f64
        }
    }
}

/// The commit step shared by [`MemorySystem::commit_round`] and the
/// parallel engine (which holds its domains inside per-worker slots).
///
/// Two deterministic passes: first every domain's directory log, bus and
/// channel overlays, and stats delta fold into the snapshot in
/// domain-index order; then the recorded foreign-cache invalidations are
/// delivered, again in domain order. Nothing here depends on which host
/// thread produced an overlay — that is the happens-before edge the
/// parallel engine relies on.
pub(crate) fn commit_parts(
    shared: &mut SharedMem,
    domains: &mut [&mut DomainMem],
    committed: &mut MemStats,
) {
    let mut invals: Vec<Inval> = Vec::new();
    for d in domains.iter_mut() {
        let rnd = &mut d.rnd;
        for e in rnd.dir_log.drain(..) {
            e.apply(shared.dir.entry(e.line()).or_default());
        }
        rnd.dir_view.clear();
        shared.bus.merge(&mut rnd.bus_local);
        for (node, local) in rnd.chan_local.iter_mut().enumerate() {
            shared.channels[node].merge(local);
        }
        invals.append(&mut rnd.invals);
        committed.add(&rnd.stats);
        rnd.stats = MemStats::default();
    }
    for inv in invals {
        match inv {
            Inval::L1 { core, line } => {
                let g = domains[0].cfg.group_of(core) as usize;
                let d = &mut domains[g];
                debug_assert_eq!(d.group, g as u32);
                d.l1[(core - d.base_core) as usize].invalidate(line);
            }
            Inval::L2 { group, l2line } => {
                domains[group as usize].l2.invalidate(l2line);
            }
        }
    }
}

impl DomainMem {
    #[inline]
    fn l1_line(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.l1_shift
    }

    #[inline]
    fn l1_of(&mut self, core: u32) -> &mut Cache {
        &mut self.l1[(core - self.base_core) as usize]
    }

    /// Current directory view of `line`: own round edits first, else the
    /// shared snapshot.
    fn dir_of(&self, shared: &SharedMem, line: u64) -> Dir {
        self.rnd
            .dir_view
            .get(&line)
            .or_else(|| shared.dir.get(&line))
            .copied()
            .unwrap_or_default()
    }

    /// Apply `edit` to the domain's view and append it to the commit log.
    fn edit(&mut self, shared: &SharedMem, e: DirEdit) {
        let line = e.line();
        let entry = self
            .rnd
            .dir_view
            .entry(line)
            .or_insert_with(|| shared.dir.get(&line).copied().unwrap_or_default());
        e.apply(entry);
        self.rnd.dir_log.push(e);
    }

    /// Acquire the bus at `now` for `cost` cycles; returns the total delay
    /// including queueing.
    fn bus(&mut self, shared: &SharedMem, now: u64, cost: u64) -> u64 {
        let total = shared.bus.book_overlaid(&mut self.rnd.bus_local, now, cost);
        self.rnd.stats.bus_wait += total.saturating_sub(cost);
        self.rnd.stats.bus_busy += cost;
        total
    }

    /// Extra cycles a main-memory fetch pays under the NUMA topology:
    /// the remote-node penalty when the page's home controller sits on a
    /// different node than `core`, plus the home node's memory-channel
    /// occupancy (queueing into later bandwidth windows when the channel
    /// saturates). Zero on a flat topology.
    fn numa_mem(&mut self, shared: &SharedMem, core: u32, byte_addr: u64, at: u64) -> u64 {
        if self.cfg.topology.is_flat() {
            return 0;
        }
        let home = self.cfg.home_node(byte_addr);
        let mut extra = 0;
        if home != self.cfg.node_of(core) {
            extra += self.cfg.topology.remote_mem_penalty;
            self.rnd.stats.remote_node += 1;
        }
        let ct = self.cfg.topology.channel_transfer;
        if ct > 0 {
            let total = shared.channels[home as usize].book_overlaid(
                &mut self.rnd.chan_local[home as usize],
                at + extra,
                ct,
            );
            self.rnd.stats.channel_wait += total.saturating_sub(ct);
            extra += total;
        }
        extra
    }

    /// Extra cycles a cache-to-cache transfer pays when the supplier cache
    /// sits on a different NUMA node. The supplier is the dirty owner when
    /// one exists, otherwise the lowest-numbered foreign L2 group holding
    /// the line (deterministic, matching the directory's supply choice).
    fn numa_c2c(&mut self, core: u32, d: &Dir, g: u32) -> u64 {
        if self.cfg.topology.is_flat() || self.cfg.topology.remote_c2c_penalty == 0 {
            return 0;
        }
        let supplier = if let Some(o) = d.owner.filter(|&o| self.cfg.group_of(o) != g) {
            self.cfg.node_of(o)
        } else {
            let foreign = d.l2s & !(1u64 << g);
            if foreign == 0 {
                return 0;
            }
            self.cfg
                .node_of(foreign.trailing_zeros() * self.cfg.l2_group.max(1))
        };
        if supplier != self.cfg.node_of(core) {
            self.rnd.stats.remote_node += 1;
            self.cfg.topology.remote_c2c_penalty
        } else {
            0
        }
    }

    /// Evict bookkeeping for an L1 victim.
    fn l1_evicted(&mut self, shared: &SharedMem, core: u32, line: u64) {
        let d = self.dir_of(shared, line);
        if d.l1s & (1 << core) != 0 {
            self.edit(shared, DirEdit::DelL1 { line, core });
        }
        // a dirty victim writes back through L2 (stays dirty in L2
        // conceptually); the owner mark survives so the group still
        // supplies dirty data
    }

    /// Evict bookkeeping for an L2 victim (an L2-granularity line).
    fn l2_evicted(&mut self, shared: &SharedMem, group: u32, l2_victim: u64) {
        for sub in (l2_victim * self.ratio)..((l2_victim + 1) * self.ratio) {
            let d = self.dir_of(shared, sub);
            if d.l2s & (1 << group) != 0 {
                self.edit(shared, DirEdit::DelL2 { line: sub, group });
            }
            if let Some(o) = d.owner {
                if self.cfg.group_of(o) == group {
                    self.edit(shared, DirEdit::DropOwner { line: sub });
                    self.rnd.stats.writebacks += 1;
                }
            }
        }
    }

    pub(crate) fn access(
        &mut self,
        shared: &SharedMem,
        core: u32,
        now: u64,
        byte_addr: u64,
        write: bool,
    ) -> (u64, AccessClass) {
        if write {
            self.write(shared, core, now, byte_addr)
        } else {
            self.read(shared, core, now, byte_addr)
        }
    }

    fn read(
        &mut self,
        shared: &SharedMem,
        core: u32,
        now: u64,
        byte_addr: u64,
    ) -> (u64, AccessClass) {
        let line = self.l1_line(byte_addr);
        if self.l1_of(core).probe(line) {
            self.rnd.stats.l1_hits += 1;
            return (self.cfg.l1.read_lat, AccessClass::L1Hit);
        }
        let g = self.group;
        let mut lat = self.cfg.l1.read_lat + self.cfg.l2.read_lat;
        let class;
        let l2_shift = self.l2.line_shift();
        if self.l2.probe(byte_addr >> l2_shift) {
            self.rnd.stats.l2_hits += 1;
            class = AccessClass::L2Hit;
        } else {
            // L2 miss: find a supplier over the bus
            let d = self.dir_of(shared, line);
            let foreign_owner = d.owner.filter(|&o| self.cfg.group_of(o) != g).is_some();
            let foreign_l2 = d.l2s & !(1u64 << g) != 0;
            if foreign_owner || foreign_l2 {
                // cache-to-cache supply (coherency miss)
                lat += self.cfg.c2c_lat;
                lat += self.numa_c2c(core, &d, g);
                lat += self.bus(shared, now + lat, self.cfg.bus_transfer);
                self.rnd.stats.remote_hits += 1;
                class = AccessClass::RemoteHit;
                if foreign_owner {
                    // dirty supplier demotes to shared and writes back
                    self.rnd.stats.writebacks += 1;
                    self.edit(shared, DirEdit::DropOwner { line });
                }
            } else {
                lat += self.cfg.mem_lat;
                lat += self.numa_mem(shared, core, byte_addr, now + lat);
                lat += self.bus(shared, now + lat, self.cfg.bus_transfer);
                self.rnd.stats.mem_misses += 1;
                class = AccessClass::MemMiss;
            }
            // fill L2
            let l2line = byte_addr >> l2_shift;
            if let Some(victim) = self.l2.insert(l2line) {
                self.l2_evicted(shared, g, victim);
            }
            self.edit(shared, DirEdit::AddL2 { line, group: g });
        }
        // a read by a non-owner demotes any owner to shared
        let d = self.dir_of(shared, line);
        if let Some(o) = d.owner {
            if o != core {
                self.edit(shared, DirEdit::DropOwner { line });
            }
        }
        // fill L1
        if let Some(victim) = self.l1_of(core).insert(line) {
            self.l1_evicted(shared, core, victim);
        }
        self.edit(shared, DirEdit::AddL1 { line, core });
        self.edit(shared, DirEdit::AddL2 { line, group: g });
        (lat, class)
    }

    fn write(
        &mut self,
        shared: &SharedMem,
        core: u32,
        now: u64,
        byte_addr: u64,
    ) -> (u64, AccessClass) {
        let line = self.l1_line(byte_addr);
        let g = self.group;
        let d = self.dir_of(shared, line);

        // exclusive-owner fast path
        if d.owner == Some(core) && self.l1_of(core).probe(line) {
            self.rnd.stats.l1_hits += 1;
            return (self.cfg.l1.write_lat, AccessClass::L1Hit);
        }

        let mut lat;
        let class;

        // invalidate foreign copies
        let foreign_l1 = d.l1s & !(1u64 << core);
        let foreign_l2 = d.l2s & !(1u64 << g);
        let had_local_copy = d.l1s & (1 << core) != 0 && self.l1_of(core).contains(line);
        let mut invalidate_lat = 0;
        if foreign_l1 != 0 || foreign_l2 != 0 {
            // one control transaction invalidates all sharers (snooping
            // bus); the writer waits for it to be ordered
            invalidate_lat = self.bus(shared, now, self.cfg.bus_control);
            for c2 in 0..self.cfg.cores {
                if foreign_l1 & (1 << c2) != 0 {
                    if self.cfg.group_of(c2) == g {
                        // a sibling core in this domain: drop it now
                        self.l1_of(c2).invalidate(line);
                    } else {
                        self.rnd.invals.push(Inval::L1 { core: c2, line });
                    }
                    self.rnd.stats.invalidations += 1;
                }
            }
            let l2line_inv = byte_addr >> self.l2.line_shift();
            for g2 in 0..self.cfg.l2_groups() {
                // own group is masked out of foreign_l2 by construction
                if foreign_l2 & (1 << g2) != 0 {
                    self.rnd.invals.push(Inval::L2 {
                        group: g2,
                        l2line: l2line_inv,
                    });
                    self.rnd.stats.invalidations += 1;
                }
            }
        }

        let foreign_owner_dirty = d.owner.is_some_and(|o| o != core);
        if had_local_copy && !foreign_owner_dirty {
            // data already local: pure upgrade (write + invalidation)
            lat = self.cfg.l1.write_lat + invalidate_lat;
            self.rnd.stats.upgrades += 1;
            class = AccessClass::Upgrade;
        } else {
            // need the data: own L2 / remote / memory (after the
            // invalidation is ordered)
            lat = self.cfg.l1.write_lat + self.cfg.l2.read_lat + invalidate_lat;
            let l2line = byte_addr >> self.l2.line_shift();
            if !foreign_owner_dirty && self.l2.probe(l2line) {
                self.rnd.stats.l2_hits += 1;
                class = AccessClass::L2Hit;
            } else if foreign_owner_dirty || foreign_l2 != 0 {
                lat += self.cfg.c2c_lat;
                lat += self.numa_c2c(core, &d, g);
                lat += self.bus(shared, now + lat, self.cfg.bus_transfer);
                self.rnd.stats.remote_hits += 1;
                self.rnd.stats.writebacks += u64::from(foreign_owner_dirty);
                class = AccessClass::RemoteHit;
            } else {
                lat += self.cfg.mem_lat;
                lat += self.numa_mem(shared, core, byte_addr, now + lat);
                lat += self.bus(shared, now + lat, self.cfg.bus_transfer);
                self.rnd.stats.mem_misses += 1;
                class = AccessClass::MemMiss;
            }
            if let Some(victim) = self.l2.insert(l2line) {
                self.l2_evicted(shared, g, victim);
            }
        }

        // take ownership
        if let Some(victim) = self.l1_of(core).insert(line) {
            self.l1_evicted(shared, core, victim);
        }
        self.edit(
            shared,
            DirEdit::Claim {
                line,
                core,
                group: g,
            },
        );
        (lat, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: u32, group: u32) -> MemorySystem {
        let mut cfg = MachineConfig::bagle(cores);
        cfg.l2_group = group;
        MemorySystem::new(cfg)
    }

    #[test]
    fn cold_read_is_a_memory_miss_then_hits() {
        let mut m = sys(2, 1);
        let (lat, class) = m.access(0, 0, 0x1000, false);
        assert_eq!(class, AccessClass::MemMiss);
        assert!(lat >= m.config().mem_lat);
        let (lat2, class2) = m.access(0, 10_000, 0x1000, false);
        assert_eq!(class2, AccessClass::L1Hit);
        assert_eq!(lat2, m.config().l1.read_lat);
        assert!(lat2 < lat);
    }

    #[test]
    fn read_after_remote_read_is_cache_to_cache() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x40, false);
        m.commit_round(); // cores sit in different domains
        let (_, class) = m.access(1, 1_000, 0x40, false);
        assert_eq!(class, AccessClass::RemoteHit);
        assert_eq!(m.stats().remote_hits, 1);
    }

    #[test]
    fn same_group_cores_share_l2_within_a_round() {
        let mut m = sys(2, 2); // both cores in one group: no commit needed
        m.access(0, 0, 0x40, false);
        let (_, class) = m.access(1, 1_000, 0x40, false);
        assert_eq!(class, AccessClass::L2Hit);
    }

    #[test]
    fn write_invalidates_remote_reader() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x80, false); // core 0 reads
        m.commit_round();
        m.access(1, 100, 0x80, true); // core 1 writes -> invalidate core 0
        m.commit_round(); // delivers the cross-domain invalidation
        assert!(m.stats().invalidations >= 1);
        // core 0 re-read is not an L1 hit
        let (_, class) = m.access(0, 10_000, 0x80, false);
        assert_ne!(class, AccessClass::L1Hit);
        // and it is a coherency transfer from core 1's modified copy
        assert_eq!(class, AccessClass::RemoteHit);
    }

    #[test]
    fn cross_domain_writes_are_invisible_until_commit() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x80, false);
        m.commit_round();
        m.access(1, 100, 0x80, true); // invalidation recorded, not delivered
        let (_, class) = m.access(0, 200, 0x80, false);
        assert_eq!(
            class,
            AccessClass::L1Hit,
            "pre-commit reads see the snapshot"
        );
        m.commit_round();
        let (_, class) = m.access(0, 10_000, 0x80, false);
        assert_ne!(
            class,
            AccessClass::L1Hit,
            "commit delivers the invalidation"
        );
    }

    #[test]
    fn dirty_read_demotes_owner() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0xC0, true); // core 0 owns dirty
        m.commit_round();
        m.access(1, 100, 0xC0, false); // core 1 reads: c2c + writeback
        m.commit_round();
        assert!(m.stats().writebacks >= 1);
        // core 0 rewriting needs an upgrade again (ownership was dropped)
        let (_, class) = m.access(0, 10_000, 0xC0, true);
        assert_eq!(class, AccessClass::Upgrade);
    }

    #[test]
    fn repeated_owner_writes_are_l1_hits() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x100, true);
        for t in 1..10 {
            let (lat, class) = m.access(0, t * 10, 0x100, true);
            assert_eq!(class, AccessClass::L1Hit);
            assert_eq!(lat, m.config().l1.write_lat);
        }
    }

    #[test]
    fn write_to_local_shared_line_is_upgrade() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x140, false);
        m.commit_round();
        m.access(1, 100, 0x140, false);
        m.commit_round();
        let (_, class) = m.access(0, 1_000, 0x140, true);
        assert_eq!(class, AccessClass::Upgrade);
        assert!(m.stats().invalidations >= 1); // core 1's copies dropped
    }

    #[test]
    fn bus_saturation_delays_misses() {
        let mut m = sys(4, 4); // one domain: saturation visible in-round
                               // Flood one bandwidth window: more transfer demand than one window
                               // (256 line transfers) can carry must spill into the next window,
                               // showing up as queueing delay.
        let mut lats = Vec::new();
        for i in 0..600u64 {
            let core = (i % 4) as u32;
            let (lat, _) = m.access(core, 0, 0x10000 + i * 4096, false);
            lats.push(lat);
        }
        assert!(m.stats().bus_wait > 0, "overload must queue");
        assert!(
            lats.last().unwrap() > lats.first().unwrap(),
            "later misses in a saturated window wait longer"
        );
        // while a single isolated miss far in the future pays no wait
        let before = m.stats().bus_wait;
        let (_, class) = m.access(0, 10_000_000, 0xFFFF_0000, false);
        assert_eq!(class, AccessClass::MemMiss);
        assert_eq!(m.stats().bus_wait, before);
    }

    #[test]
    fn committed_bus_demand_delays_the_next_round() {
        // two domains flood the same window in one round; after the merge
        // the window is overbooked, so a next-round miss at the same time
        // queues behind the committed demand
        let mut m = sys(2, 1);
        for i in 0..300u64 {
            m.access(0, 0, 0x10000 + i * 4096, false);
            m.access(1, 0, 0x80_0000 + i * 4096, false);
        }
        m.commit_round();
        let before = m.stats().bus_wait;
        let (_, class) = m.access(0, 0, 0xFFF_0000, false);
        assert_eq!(class, AccessClass::MemMiss);
        assert!(
            m.stats().bus_wait > before,
            "merged overlays must saturate the committed window"
        );
    }

    #[test]
    fn capacity_eviction_causes_re_miss() {
        // tiny L1: walk far beyond capacity, then re-walk
        let mut cfg = MachineConfig::bagle(1);
        cfg.l1.size = 1024; // 16 lines, 4-way
        let mut m = MemorySystem::new(cfg);
        for i in 0..64u64 {
            m.access(0, i * 1000, i * 64, false);
        }
        let (_, class) = m.access(0, 1_000_000, 0, false);
        assert_ne!(class, AccessClass::L1Hit, "line 0 must have been evicted");
    }

    #[test]
    fn stats_accesses_add_up() {
        let mut m = sys(2, 1);
        for i in 0..20u64 {
            m.access((i % 2) as u32, i * 10, (i % 5) * 64, i % 3 == 0);
            if i % 4 == 3 {
                m.commit_round();
            }
        }
        assert_eq!(m.stats().accesses(), 20);
    }

    fn numa_sys(cores: u32) -> MemorySystem {
        MemorySystem::new(crate::config::MachineConfig::sparc_t3_4(cores).unwrap())
    }

    #[test]
    fn remote_node_memory_pays_exactly_the_penalty() {
        // page 0 is homed on node 0; core 0 sits on node 0, core 63 on node 3
        let mut local = numa_sys(64);
        let (lat_local, cl) = local.access(0, 0, 0x100, false);
        assert_eq!(cl, AccessClass::MemMiss);
        let mut remote = numa_sys(64);
        let (lat_remote, cr) = remote.access(63, 0, 0x100, false);
        assert_eq!(cr, AccessClass::MemMiss);
        assert_eq!(
            lat_remote,
            lat_local + remote.config().topology.remote_mem_penalty
        );
        assert_eq!(remote.stats().remote_node, 1);
        assert_eq!(local.stats().remote_node, 0);
    }

    #[test]
    fn cross_node_c2c_pays_the_remote_penalty() {
        let cfg = crate::config::MachineConfig::sparc_t3_4(64).unwrap();
        let no_penalty = cfg.with_topology(crate::config::Topology {
            remote_c2c_penalty: 0,
            ..cfg.topology
        });
        // core 0 (node 0) dirties a line; core 17 (node 1) reads it back
        let run = |mut m: MemorySystem| {
            m.access(0, 0, 0x40, true);
            m.commit_round();
            let (lat, class) = m.access(17, 10_000, 0x40, false);
            assert_eq!(class, AccessClass::RemoteHit);
            (lat, m.stats().remote_node)
        };
        let (lat_pen, crossings) = run(MemorySystem::new(cfg));
        let (lat_flat, _) = run(MemorySystem::new(no_penalty));
        assert_eq!(lat_pen, lat_flat + cfg.topology.remote_c2c_penalty);
        assert!(crossings >= 1);
    }

    #[test]
    fn node_memory_channel_saturates_under_flood() {
        // 16 cores = one node (and one domain); 600 distinct-page misses at
        // time 0 demand ~600 channel slots against a 256-slot window, so
        // the tail queues
        let mut m = numa_sys(16);
        let mut lats = Vec::new();
        for i in 0..600u64 {
            let (lat, class) = m.access((i % 16) as u32, 0, 0x10_0000 + i * 4096, false);
            assert_eq!(class, AccessClass::MemMiss);
            lats.push(lat);
        }
        assert!(m.stats().channel_wait > 0, "channel flood must queue");
        assert!(
            lats.last().unwrap() > lats.first().unwrap(),
            "later transfers in a saturated channel wait longer"
        );
    }

    #[test]
    fn l2_line_larger_than_l1_line_works() {
        // Bagle: L2 line 128B, L1 64B. Two adjacent L1 lines share an L2
        // line: second read should be an L2 hit (spatial prefetch effect).
        let mut m = sys(1, 1);
        m.access(0, 0, 0x0, false); // fills L2 line 0 (bytes 0..128)
        let (_, class) = m.access(0, 1_000, 0x40, false);
        assert_eq!(class, AccessClass::L2Hit);
    }

    #[test]
    fn concurrent_sharer_bits_survive_the_merge() {
        // both domains read the same line in one round; the semantic edit
        // log must keep both sharer bits (a last-writer-wins entry merge
        // would drop one)
        let mut m = sys(2, 1);
        m.access(0, 0, 0x200, false);
        m.access(1, 0, 0x200, false);
        m.commit_round();
        // a third-party write must invalidate *both* copies
        let mut m2 = sys(2, 1);
        m2.access(0, 0, 0x200, false);
        m2.access(1, 0, 0x200, false);
        m2.commit_round();
        m2.access(1, 100, 0x200, true);
        m2.commit_round();
        assert!(
            m2.stats().invalidations >= 1,
            "core 0's sharer bit must have survived the merge"
        );
        let (_, class) = m2.access(0, 10_000, 0x200, false);
        assert_ne!(class, AccessClass::L1Hit);
        drop(m);
    }
}
