//! The simulated memory hierarchy: per-core L1s, per-group L2s, a MESI-style
//! invalidation protocol, and an arbitrated system network (bus).
//!
//! The model tracks cache-line *presence* and coherence state, charging
//! latencies per access — the same level of detail as the Simics `gcache`
//! setup of §6.1.1, which the paper notes "allow Simics to simulate and take
//! into account the overhead of the MESI protocol". Dirty lines have a
//! unique owner core; writes invalidate all foreign copies over the bus;
//! L2-to-L2 (cache-to-cache) supplies model coherency misses, which is what
//! keeps MMULT below ideal speedup in Fig. 5.

use crate::cache::Cache;
use crate::config::MachineConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classification of one memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Served by the core's own L1.
    L1Hit,
    /// Served by the core's group L2.
    L2Hit,
    /// Write that only needed an ownership upgrade (data already local).
    Upgrade,
    /// Served by another group's L2 over the bus — a coherency miss.
    RemoteHit,
    /// Served by main memory.
    MemMiss,
}

/// Aggregate counters of the memory system.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (after L1 miss).
    pub l2_hits: u64,
    /// Ownership upgrades (write to a locally-shared line).
    pub upgrades: u64,
    /// Cache-to-cache transfers (coherency misses).
    pub remote_hits: u64,
    /// Main-memory fetches.
    pub mem_misses: u64,
    /// L1/L2 copies invalidated by remote writes.
    pub invalidations: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
    /// Cycles any access spent waiting for the bus.
    pub bus_wait: u64,
    /// Cycles the bus was occupied.
    pub bus_busy: u64,
    /// Transfers (memory fetches or cache-to-cache) that crossed a NUMA
    /// node boundary and paid the topology's remote penalty.
    #[serde(default)]
    pub remote_node: u64,
    /// Cycles accesses queued on saturated per-node memory channels
    /// (beyond the raw transfer occupancy).
    #[serde(default)]
    pub channel_wait: u64,
}

impl MemStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.upgrades + self.remote_hits + self.mem_misses
    }

    /// Fraction of accesses that were coherency (remote) misses.
    pub fn coherency_ratio(&self) -> f64 {
        let t = self.accesses();
        if t == 0 {
            0.0
        } else {
            self.remote_hits as f64 / t as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Dir {
    /// Cores holding the line in L1.
    l1s: u64,
    /// L2 groups holding the line.
    l2s: u64,
    /// Core holding the line modified (implies exclusivity).
    owner: Option<u32>,
}

/// Bandwidth-window bus model.
///
/// Time is divided into fixed windows; each window can carry `window`
/// cycles of transfer. A transaction books its cost into the window of its
/// issue time, spilling into later windows when one fills up — the spill is
/// the queueing delay. Unlike a single `busy_until` timestamp, this stays
/// causal when cores simulate accesses in loosely-ordered chunks: a
/// transaction issued at an earlier time books into an earlier window even
/// if a later-time transaction was processed first.
#[derive(Debug)]
struct Bus {
    window: u64,
    /// Booked cycles per window, keyed by window index (sparse; old
    /// windows are pruned).
    used: HashMap<u64, u64>,
    horizon: u64,
}

impl Bus {
    fn new(window: u64) -> Self {
        Bus {
            window: window.max(1),
            used: HashMap::new(),
            horizon: 0,
        }
    }

    /// Book `cost` cycles starting at `now`; returns the total delay
    /// (queueing + transfer) experienced.
    fn book(&mut self, now: u64, cost: u64) -> u64 {
        let w = self.window;
        let mut win = now / w;
        let mut remaining = cost;
        let mut end = now;
        loop {
            let used = self.used.entry(win).or_insert(0);
            let free = w - *used;
            if free >= remaining {
                *used += remaining;
                end = end.max(win * w + *used);
                break;
            }
            remaining -= free;
            *used = w;
            win += 1;
        }
        // prune windows far behind the newest booking
        if win > self.horizon + 64 {
            let cutoff = win.saturating_sub(32);
            self.used.retain(|&k, _| k >= cutoff);
            self.horizon = win;
        }
        end.saturating_sub(now)
    }
}

/// The simulated memory system.
pub struct MemorySystem {
    cfg: MachineConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    dir: HashMap<u64, Dir>,
    bus: Bus,
    /// Per-NUMA-node memory channels (bandwidth windows; only booked when
    /// the topology models channel occupancy).
    channels: Vec<Bus>,
    /// Counters.
    pub stats: MemStats,
    /// L1 lines per L2 line.
    ratio: u64,
    l1_shift: u32,
}

impl MemorySystem {
    /// Build the hierarchy for a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.cores <= 64, "core bitmap limited to 64 cores");
        let l1 = (0..cfg.cores).map(|_| Cache::new(&cfg.l1)).collect();
        let l2 = (0..cfg.l2_groups()).map(|_| Cache::new(&cfg.l2)).collect();
        let ratio = (cfg.l2.line / cfg.l1.line).max(1) as u64;
        let channels = (0..cfg.nodes())
            .map(|_| Bus::new(256 * cfg.topology.channel_transfer.max(1)))
            .collect();
        MemorySystem {
            cfg,
            l1,
            l2,
            dir: HashMap::new(),
            // window sized so that ~256 line transfers fit per window: wide
            // enough to absorb chunk-granular reordering, narrow enough to
            // expose sustained saturation
            bus: Bus::new(256 * cfg.bus_transfer.max(1)),
            channels,
            stats: MemStats::default(),
            ratio,
            l1_shift: cfg.l1.line.trailing_zeros(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Acquire the bus at `now` for `cost` cycles; returns the total delay
    /// including queueing.
    fn bus(&mut self, now: u64, cost: u64) -> u64 {
        let total = self.bus.book(now, cost);
        self.stats.bus_wait += total.saturating_sub(cost);
        self.stats.bus_busy += cost;
        total
    }

    #[inline]
    fn l1_line(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.l1_shift
    }

    /// Extra cycles a main-memory fetch pays under the NUMA topology:
    /// the remote-node penalty when the page's home controller sits on a
    /// different node than `core`, plus the home node's memory-channel
    /// occupancy (queueing into later bandwidth windows when the channel
    /// saturates). Zero on a flat topology.
    fn numa_mem(&mut self, core: u32, byte_addr: u64, at: u64) -> u64 {
        if self.cfg.topology.is_flat() {
            return 0;
        }
        let home = self.cfg.home_node(byte_addr);
        let mut extra = 0;
        if home != self.cfg.node_of(core) {
            extra += self.cfg.topology.remote_mem_penalty;
            self.stats.remote_node += 1;
        }
        let ct = self.cfg.topology.channel_transfer;
        if ct > 0 {
            let total = self.channels[home as usize].book(at + extra, ct);
            self.stats.channel_wait += total.saturating_sub(ct);
            extra += total;
        }
        extra
    }

    /// Extra cycles a cache-to-cache transfer pays when the supplier cache
    /// sits on a different NUMA node. The supplier is the dirty owner when
    /// one exists, otherwise the lowest-numbered foreign L2 group holding
    /// the line (deterministic, matching the directory's supply choice).
    fn numa_c2c(&mut self, core: u32, d: &Dir, g: u32) -> u64 {
        if self.cfg.topology.is_flat() || self.cfg.topology.remote_c2c_penalty == 0 {
            return 0;
        }
        let supplier = if let Some(o) = d.owner.filter(|&o| self.cfg.group_of(o) != g) {
            self.cfg.node_of(o)
        } else {
            let foreign = d.l2s & !(1u64 << g);
            if foreign == 0 {
                return 0;
            }
            self.cfg
                .node_of(foreign.trailing_zeros() * self.cfg.l2_group.max(1))
        };
        if supplier != self.cfg.node_of(core) {
            self.stats.remote_node += 1;
            self.cfg.topology.remote_c2c_penalty
        } else {
            0
        }
    }

    /// Evict bookkeeping for an L1 victim.
    fn l1_evicted(&mut self, core: u32, line: u64) {
        if let Some(d) = self.dir.get_mut(&line) {
            d.l1s &= !(1 << core);
            if d.owner == Some(core) {
                // dirty victim: write back through L2 (stays dirty in L2
                // conceptually; we clear the owner and charge a writeback
                // when it leaves the group entirely). Keep owner so the
                // group still supplies dirty data.
            }
        }
    }

    /// Evict bookkeeping for an L2 victim (an L2-granularity line).
    fn l2_evicted(&mut self, group: u32, l2_victim: u64) {
        for sub in (l2_victim * self.ratio)..((l2_victim + 1) * self.ratio) {
            let mut drop_owner = false;
            if let Some(d) = self.dir.get_mut(&sub) {
                d.l2s &= !(1 << group);
                if let Some(o) = d.owner {
                    if self.cfg.group_of(o) == group {
                        drop_owner = true;
                    }
                }
                if drop_owner {
                    d.owner = None;
                }
            }
            if drop_owner {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Perform one access; returns `(latency_cycles, class)`.
    ///
    /// `now` is the core-local cycle at which the access issues; bus
    /// arbitration is charged relative to it.
    pub fn access(
        &mut self,
        core: u32,
        now: u64,
        byte_addr: u64,
        write: bool,
    ) -> (u64, AccessClass) {
        if write {
            self.write(core, now, byte_addr)
        } else {
            self.read(core, now, byte_addr)
        }
    }

    fn read(&mut self, core: u32, now: u64, byte_addr: u64) -> (u64, AccessClass) {
        let line = self.l1_line(byte_addr);
        if self.l1[core as usize].probe(line) {
            self.stats.l1_hits += 1;
            return (self.cfg.l1.read_lat, AccessClass::L1Hit);
        }
        let g = self.cfg.group_of(core);
        let mut lat = self.cfg.l1.read_lat + self.cfg.l2.read_lat;
        let class;
        let l2_shift = self.l2[g as usize].line_shift();
        if self.l2[g as usize].probe(byte_addr >> l2_shift) {
            self.stats.l2_hits += 1;
            class = AccessClass::L2Hit;
        } else {
            // L2 miss: find a supplier over the bus
            let d = self.dir.get(&line).copied().unwrap_or_default();
            let foreign_owner = d.owner.filter(|&o| self.cfg.group_of(o) != g).is_some();
            let foreign_l2 = d.l2s & !(1u64 << g) != 0;
            if foreign_owner || foreign_l2 {
                // cache-to-cache supply (coherency miss)
                lat += self.cfg.c2c_lat;
                lat += self.numa_c2c(core, &d, g);
                lat += self.bus(now + lat, self.cfg.bus_transfer);
                self.stats.remote_hits += 1;
                class = AccessClass::RemoteHit;
                if foreign_owner {
                    // dirty supplier demotes to shared and writes back
                    self.stats.writebacks += 1;
                    if let Some(d) = self.dir.get_mut(&line) {
                        d.owner = None;
                    }
                }
            } else {
                lat += self.cfg.mem_lat;
                lat += self.numa_mem(core, byte_addr, now + lat);
                lat += self.bus(now + lat, self.cfg.bus_transfer);
                self.stats.mem_misses += 1;
                class = AccessClass::MemMiss;
            }
            // fill L2
            let l2line = byte_addr >> self.l2[g as usize].line_shift();
            if let Some(victim) = self.l2[g as usize].insert(l2line) {
                self.l2_evicted(g, victim);
            }
            self.dir.entry(line).or_default().l2s |= 1 << g;
        }
        // a read by a non-owner demotes any same-group owner to shared too
        if let Some(d) = self.dir.get_mut(&line) {
            if let Some(o) = d.owner {
                if o != core {
                    d.owner = None;
                }
            }
        }
        // fill L1
        if let Some(victim) = self.l1[core as usize].insert(line) {
            self.l1_evicted(core, victim);
        }
        let e = self.dir.entry(line).or_default();
        e.l1s |= 1 << core;
        e.l2s |= 1 << g;
        (lat, class)
    }

    fn write(&mut self, core: u32, now: u64, byte_addr: u64) -> (u64, AccessClass) {
        let line = self.l1_line(byte_addr);
        let g = self.cfg.group_of(core);
        let d = self.dir.get(&line).copied().unwrap_or_default();

        // exclusive-owner fast path
        if d.owner == Some(core) && self.l1[core as usize].probe(line) {
            self.stats.l1_hits += 1;
            return (self.cfg.l1.write_lat, AccessClass::L1Hit);
        }

        let mut lat;
        let class;

        // invalidate foreign copies
        let foreign_l1 = d.l1s & !(1u64 << core);
        let foreign_l2 = d.l2s & !(1u64 << g);
        let had_local_copy = d.l1s & (1 << core) != 0 && self.l1[core as usize].contains(line);
        let mut invalidate_lat = 0;
        if foreign_l1 != 0 || foreign_l2 != 0 {
            // one control transaction invalidates all sharers (snooping
            // bus); the writer waits for it to be ordered
            invalidate_lat = self.bus(now, self.cfg.bus_control);
            for c2 in 0..self.cfg.cores as u64 {
                if foreign_l1 & (1 << c2) != 0 {
                    self.l1[c2 as usize].invalidate(line);
                    self.stats.invalidations += 1;
                }
            }
            for g2 in 0..self.cfg.l2_groups() as u64 {
                if foreign_l2 & (1 << g2) != 0 {
                    let l2line = byte_addr >> self.l2[g2 as usize].line_shift();
                    self.l2[g2 as usize].invalidate(l2line);
                    self.stats.invalidations += 1;
                }
            }
        }

        let foreign_owner_dirty = d.owner.is_some_and(|o| o != core);
        if had_local_copy && !foreign_owner_dirty {
            // data already local: pure upgrade (write + invalidation)
            lat = self.cfg.l1.write_lat + invalidate_lat;
            self.stats.upgrades += 1;
            class = AccessClass::Upgrade;
        } else {
            // need the data: own L2 / remote / memory (after the
            // invalidation is ordered)
            lat = self.cfg.l1.write_lat + self.cfg.l2.read_lat + invalidate_lat;
            let l2line = byte_addr >> self.l2[g as usize].line_shift();
            if !foreign_owner_dirty && self.l2[g as usize].probe(l2line) {
                self.stats.l2_hits += 1;
                class = AccessClass::L2Hit;
            } else if foreign_owner_dirty || foreign_l2 != 0 {
                lat += self.cfg.c2c_lat;
                lat += self.numa_c2c(core, &d, g);
                lat += self.bus(now + lat, self.cfg.bus_transfer);
                self.stats.remote_hits += 1;
                self.stats.writebacks += u64::from(foreign_owner_dirty);
                class = AccessClass::RemoteHit;
            } else {
                lat += self.cfg.mem_lat;
                lat += self.numa_mem(core, byte_addr, now + lat);
                lat += self.bus(now + lat, self.cfg.bus_transfer);
                self.stats.mem_misses += 1;
                class = AccessClass::MemMiss;
            }
            if let Some(victim) = self.l2[g as usize].insert(l2line) {
                self.l2_evicted(g, victim);
            }
        }

        // take ownership
        if let Some(victim) = self.l1[core as usize].insert(line) {
            self.l1_evicted(core, victim);
        }
        let e = self.dir.entry(line).or_default();
        e.owner = Some(core);
        e.l1s = 1 << core;
        e.l2s = 1 << g;
        (lat, class)
    }

    /// Total L1 miss ratio across cores.
    pub fn l1_miss_ratio(&self) -> f64 {
        let (h, m) = self
            .l1
            .iter()
            .fold((0u64, 0u64), |(h, m), c| (h + c.hits, m + c.misses));
        if h + m == 0 {
            0.0
        } else {
            m as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: u32, group: u32) -> MemorySystem {
        let mut cfg = MachineConfig::bagle(cores);
        cfg.l2_group = group;
        MemorySystem::new(cfg)
    }

    #[test]
    fn cold_read_is_a_memory_miss_then_hits() {
        let mut m = sys(2, 1);
        let (lat, class) = m.access(0, 0, 0x1000, false);
        assert_eq!(class, AccessClass::MemMiss);
        assert!(lat >= m.config().mem_lat);
        let (lat2, class2) = m.access(0, 10_000, 0x1000, false);
        assert_eq!(class2, AccessClass::L1Hit);
        assert_eq!(lat2, m.config().l1.read_lat);
        assert!(lat2 < lat);
    }

    #[test]
    fn read_after_remote_read_is_cache_to_cache() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x40, false);
        let (_, class) = m.access(1, 1_000, 0x40, false);
        assert_eq!(class, AccessClass::RemoteHit);
        assert_eq!(m.stats.remote_hits, 1);
    }

    #[test]
    fn same_group_cores_share_l2() {
        let mut m = sys(2, 2); // both cores in one group
        m.access(0, 0, 0x40, false);
        let (_, class) = m.access(1, 1_000, 0x40, false);
        assert_eq!(class, AccessClass::L2Hit);
    }

    #[test]
    fn write_invalidates_remote_reader() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x80, false); // core 0 reads
        m.access(1, 100, 0x80, true); // core 1 writes -> invalidate core 0
        assert!(m.stats.invalidations >= 1);
        // core 0 re-read is not an L1 hit
        let (_, class) = m.access(0, 10_000, 0x80, false);
        assert_ne!(class, AccessClass::L1Hit);
        // and it is a coherency transfer from core 1's modified copy
        assert_eq!(class, AccessClass::RemoteHit);
    }

    #[test]
    fn dirty_read_demotes_owner() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0xC0, true); // core 0 owns dirty
        m.access(1, 100, 0xC0, false); // core 1 reads: c2c + writeback
        assert!(m.stats.writebacks >= 1);
        // core 0 rewriting needs an upgrade again (ownership was dropped)
        let (_, class) = m.access(0, 10_000, 0xC0, true);
        assert_eq!(class, AccessClass::Upgrade);
    }

    #[test]
    fn repeated_owner_writes_are_l1_hits() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x100, true);
        for t in 1..10 {
            let (lat, class) = m.access(0, t * 10, 0x100, true);
            assert_eq!(class, AccessClass::L1Hit);
            assert_eq!(lat, m.config().l1.write_lat);
        }
    }

    #[test]
    fn write_to_local_shared_line_is_upgrade() {
        let mut m = sys(2, 1);
        m.access(0, 0, 0x140, false);
        m.access(1, 100, 0x140, false);
        let (_, class) = m.access(0, 1_000, 0x140, true);
        assert_eq!(class, AccessClass::Upgrade);
        assert!(m.stats.invalidations >= 1); // core 1's copies dropped
    }

    #[test]
    fn bus_saturation_delays_misses() {
        let mut m = sys(4, 1);
        // Flood one bandwidth window: more transfer demand than one window
        // (256 line transfers) can carry must spill into the next window,
        // showing up as queueing delay.
        let mut lats = Vec::new();
        for i in 0..600u64 {
            let core = (i % 4) as u32;
            let (lat, _) = m.access(core, 0, 0x10000 + i * 4096, false);
            lats.push(lat);
        }
        assert!(m.stats.bus_wait > 0, "overload must queue");
        assert!(
            lats.last().unwrap() > lats.first().unwrap(),
            "later misses in a saturated window wait longer"
        );
        // while a single isolated miss far in the future pays no wait
        let before = m.stats.bus_wait;
        let (_, class) = m.access(0, 10_000_000, 0xFFFF_0000, false);
        assert_eq!(class, AccessClass::MemMiss);
        assert_eq!(m.stats.bus_wait, before);
    }

    #[test]
    fn capacity_eviction_causes_re_miss() {
        // tiny L1: walk far beyond capacity, then re-walk
        let mut cfg = MachineConfig::bagle(1);
        cfg.l1.size = 1024; // 16 lines, 4-way
        let mut m = MemorySystem::new(cfg);
        for i in 0..64u64 {
            m.access(0, i * 1000, i * 64, false);
        }
        let (_, class) = m.access(0, 1_000_000, 0, false);
        assert_ne!(class, AccessClass::L1Hit, "line 0 must have been evicted");
    }

    #[test]
    fn stats_accesses_add_up() {
        let mut m = sys(2, 1);
        for i in 0..20u64 {
            m.access((i % 2) as u32, i * 10, (i % 5) * 64, i % 3 == 0);
        }
        assert_eq!(m.stats.accesses(), 20);
    }

    fn numa_sys(cores: u32) -> MemorySystem {
        MemorySystem::new(crate::config::MachineConfig::sparc_t3_4(cores).unwrap())
    }

    #[test]
    fn remote_node_memory_pays_exactly_the_penalty() {
        // page 0 is homed on node 0; core 0 sits on node 0, core 63 on node 3
        let mut local = numa_sys(64);
        let (lat_local, cl) = local.access(0, 0, 0x100, false);
        assert_eq!(cl, AccessClass::MemMiss);
        let mut remote = numa_sys(64);
        let (lat_remote, cr) = remote.access(63, 0, 0x100, false);
        assert_eq!(cr, AccessClass::MemMiss);
        assert_eq!(
            lat_remote,
            lat_local + remote.config().topology.remote_mem_penalty
        );
        assert_eq!(remote.stats.remote_node, 1);
        assert_eq!(local.stats.remote_node, 0);
    }

    #[test]
    fn cross_node_c2c_pays_the_remote_penalty() {
        let cfg = crate::config::MachineConfig::sparc_t3_4(64).unwrap();
        let no_penalty = cfg.with_topology(crate::config::Topology {
            remote_c2c_penalty: 0,
            ..cfg.topology
        });
        // core 0 (node 0) dirties a line; core 17 (node 1) reads it back
        let run = |mut m: MemorySystem| {
            m.access(0, 0, 0x40, true);
            let (lat, class) = m.access(17, 10_000, 0x40, false);
            assert_eq!(class, AccessClass::RemoteHit);
            (lat, m.stats.remote_node)
        };
        let (lat_pen, crossings) = run(MemorySystem::new(cfg));
        let (lat_flat, _) = run(MemorySystem::new(no_penalty));
        assert_eq!(lat_pen, lat_flat + cfg.topology.remote_c2c_penalty);
        assert!(crossings >= 1);
    }

    #[test]
    fn node_memory_channel_saturates_under_flood() {
        // 16 cores = one node; 600 distinct-page misses at time 0 demand
        // ~600 channel slots against a 256-slot window, so the tail queues
        let mut m = numa_sys(16);
        let mut lats = Vec::new();
        for i in 0..600u64 {
            let (lat, class) = m.access((i % 16) as u32, 0, 0x10_0000 + i * 4096, false);
            assert_eq!(class, AccessClass::MemMiss);
            lats.push(lat);
        }
        assert!(m.stats.channel_wait > 0, "channel flood must queue");
        assert!(
            lats.last().unwrap() > lats.first().unwrap(),
            "later transfers in a saturated channel wait longer"
        );
    }

    #[test]
    fn l2_line_larger_than_l1_line_works() {
        // Bagle: L2 line 128B, L1 64B. Two adjacent L1 lines share an L2
        // line: second read should be an L2 hit (spatial prefetch effect).
        let mut m = sys(1, 1);
        m.access(0, 0, 0x0, false); // fills L2 line 0 (bytes 0..128)
        let (_, class) = m.access(0, 1_000, 0x40, false);
        assert_eq!(class, AccessClass::L2Hit);
    }
}
