//! The discrete-event queues.
//!
//! Both queues order events by the canonical key **`(cycle, lane)`**, with
//! per-lane insertion order breaking what little remains. The machine
//! schedules at most one outstanding event per lane (core), so `(cycle,
//! lane)` is a *total* order over live events — and unlike a global
//! insertion counter it is reproducible no matter which host thread pushed
//! the event, which is what lets the parallel sharded engine commit lanes
//! concurrently and still pop bit-identically to the serial engines.
//!
//! [`EventQueue`] is the single global heap (the equivalence oracle);
//! [`ShardedEventQueue`] keeps one heap per lane and selects the global
//! minimum through a tournament tree over cached lane heads, so a pop costs
//! O(log lanes) instead of an O(lanes) head scan.

use crate::error::SimError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Slot indices ride in the low 20 bits of the tie-break key.
const SLOT_BITS: u64 = 20;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// Deterministic event queue keyed by `(cycle, lane, insertion order)`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u32, u64)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute cycle `at` on lane 0.
    ///
    /// # Panics
    /// If more than 2^20 events are outstanding. Fallible callers (the
    /// machine) use [`EventQueue::try_push_lane`] instead.
    pub fn push(&mut self, at: u64, event: E) {
        self.try_push_lane(0, at, event)
            .expect("more than 2^20 outstanding events");
    }

    /// Schedule `event` at absolute cycle `at` on `lane`. Events pop in
    /// `(at, lane)` order; same-lane ties resolve in insertion order.
    pub fn try_push_lane(&mut self, lane: u32, at: u64, event: E) -> Result<(), SimError> {
        let slot = if let Some(s) = self.free.pop() {
            s
        } else {
            self.slots.push(None);
            self.slots.len() - 1
        };
        if slot as u64 > SLOT_MASK {
            self.slots.pop();
            return Err(SimError::EventOverflow { lane });
        }
        self.slots[slot] = Some(event);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse((at, lane, (seq << SLOT_BITS) | slot as u64)));
        Ok(())
    }

    /// Earliest pending cycle, if any.
    pub fn min_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Pop the earliest event; ties resolve by lane, then insertion order.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, _, key)) = self.heap.pop()?;
        let slot = (key & SLOT_MASK) as usize;
        let event = self.slots[slot].take().expect("event slot empty");
        self.free.push(slot);
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One lane of a [`ShardedEventQueue`]: a private heap with its own slot
/// store and insertion counter. A lane is entirely self-contained, so the
/// parallel engine can hand disjoint lane sets to worker threads.
#[derive(Debug)]
pub(crate) struct Lane<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    next_seq: u64,
    /// Cached head cycle, kept in sync on push/pop so cross-lane minimum
    /// selection never touches the heap.
    head: Option<u64>,
}

impl<E> Default for Lane<E> {
    fn default() -> Self {
        Lane::new()
    }
}

impl<E> Lane<E> {
    pub(crate) fn new() -> Self {
        Lane {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            head: None,
        }
    }

    /// `lane` is only used to label the error.
    pub(crate) fn try_push(&mut self, lane: u32, at: u64, event: E) -> Result<(), SimError> {
        let slot = if let Some(s) = self.free.pop() {
            s
        } else {
            self.slots.push(None);
            self.slots.len() - 1
        };
        if slot as u64 > SLOT_MASK {
            self.slots.pop();
            return Err(SimError::EventOverflow { lane });
        }
        self.slots[slot] = Some(event);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse((at, (seq << SLOT_BITS) | slot as u64)));
        self.head = Some(self.heap.peek().expect("just pushed").0 .0);
        Ok(())
    }

    pub(crate) fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, key)) = self.heap.pop()?;
        let slot = (key & SLOT_MASK) as usize;
        let event = self.slots[slot].take().expect("event slot empty");
        self.free.push(slot);
        self.head = self.heap.peek().map(|r| r.0 .0);
        Some((at, event))
    }

    /// Cached earliest pending cycle on this lane.
    pub(crate) fn head_at(&self) -> Option<u64> {
        self.head
    }
}

/// Marks an empty/padding position in the tournament tree.
const NO_LANE: u32 = u32::MAX;

/// A deterministic event queue sharded into per-lane heaps.
///
/// Events carry a lane index (the simulated core). The queue pops the
/// globally earliest event in `(cycle, lane)` order, selected by a winner
/// (tournament) tree over the cached lane heads: each internal node stores
/// the winning lane of its subtree, so a push or pop only replays one
/// root-to-leaf path — O(log lanes) instead of the O(lanes) head scan this
/// replaces.
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    lanes: Vec<Lane<E>>,
    /// Winner tree: `tree[1]` is the overall winning lane, leaves live at
    /// `[leaf_base, 2*leaf_base)`. `NO_LANE` marks padding.
    tree: Vec<u32>,
    leaf_base: usize,
    len: usize,
}

impl<E> ShardedEventQueue<E> {
    /// An empty queue with `lanes` lanes (at least one).
    pub fn new(lanes: usize) -> Self {
        let n = lanes.max(1);
        let leaf_base = n.next_power_of_two();
        let mut tree = vec![NO_LANE; 2 * leaf_base];
        for (l, leaf) in tree[leaf_base..leaf_base + n].iter_mut().enumerate() {
            *leaf = l as u32;
        }
        let mut q = ShardedEventQueue {
            lanes: (0..n).map(|_| Lane::new()).collect(),
            tree,
            leaf_base,
            len: 0,
        };
        for l in 0..n {
            q.replay(l);
        }
        q
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The winner of two tree positions: the lane whose head is earliest,
    /// lane index breaking ties. Empty lanes and padding always lose.
    fn better(&self, a: u32, b: u32) -> u32 {
        let key = |l: u32| -> Option<(u64, u32)> {
            if l == NO_LANE {
                return None;
            }
            self.lanes[l as usize].head_at().map(|at| (at, l))
        };
        match (key(a), key(b)) {
            (Some(ka), Some(kb)) => {
                if ka <= kb {
                    a
                } else {
                    b
                }
            }
            (Some(_), None) => a,
            _ => b,
        }
    }

    /// Replay `lane`'s leaf-to-root path after its head changed.
    fn replay(&mut self, lane: usize) {
        let mut i = (self.leaf_base + lane) / 2;
        while i >= 1 {
            self.tree[i] = self.better(self.tree[2 * i], self.tree[2 * i + 1]);
            i /= 2;
        }
    }

    /// Schedule `event` on `lane` at absolute cycle `at`.
    pub fn try_push(&mut self, lane: usize, at: u64, event: E) -> Result<(), SimError> {
        self.lanes[lane].try_push(lane as u32, at, event)?;
        self.len += 1;
        self.replay(lane);
        Ok(())
    }

    /// The current winning lane, if any event is pending. With a single
    /// lane `tree[1]` *is* the leaf; otherwise it is the root.
    fn winner(&self) -> Option<usize> {
        let w = self.tree[1];
        if w == NO_LANE || self.lanes[w as usize].head_at().is_none() {
            None
        } else {
            Some(w as usize)
        }
    }

    /// Earliest pending cycle across all lanes, if any.
    pub fn min_time(&self) -> Option<u64> {
        self.winner().and_then(|w| self.lanes[w].head_at())
    }

    /// Pop the globally earliest event in `(cycle, lane)` order. Returns
    /// `(cycle, lane, event)`.
    pub fn pop(&mut self) -> Option<(u64, usize, E)> {
        let lane = self.winner()?;
        let (at, event) = self.lanes[lane].pop().expect("winner lane is non-empty");
        self.len -= 1;
        self.replay(lane);
        Some((at, lane, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.min_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.min_time(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn lanes_break_ties_before_insertion_order() {
        let mut q = EventQueue::new();
        q.try_push_lane(2, 5, 'a').unwrap();
        q.try_push_lane(0, 5, 'b').unwrap();
        q.try_push_lane(1, 5, 'c').unwrap();
        assert_eq!(q.pop(), Some((5, 'b')));
        assert_eq!(q.pop(), Some((5, 'c')));
        assert_eq!(q.pop(), Some((5, 'a')));
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.push(round, round);
            assert_eq!(q.pop(), Some((round, round)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(1, 'x');
        q.push(9, 'z');
        assert_eq!(q.pop(), Some((1, 'x')));
        q.push(4, 'y');
        assert_eq!(q.pop(), Some((4, 'y')));
        assert_eq!(q.pop(), Some((9, 'z')));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn sharded_pops_in_global_time_order() {
        let mut q = ShardedEventQueue::new(4);
        q.try_push(3, 30, "c").unwrap();
        q.try_push(0, 10, "a").unwrap();
        q.try_push(2, 20, "b").unwrap();
        assert_eq!(q.min_time(), Some(10));
        assert_eq!(q.pop(), Some((10, 0, "a")));
        assert_eq!(q.pop(), Some((20, 2, "b")));
        assert_eq!(q.pop(), Some((30, 3, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.min_time(), None);
    }

    #[test]
    fn sharded_cross_lane_ties_break_by_lane_index() {
        let mut q = ShardedEventQueue::new(3);
        q.try_push(2, 5, 1).unwrap();
        q.try_push(0, 5, 2).unwrap();
        q.try_push(1, 5, 3).unwrap();
        q.try_push(0, 5, 4).unwrap();
        assert_eq!(q.pop(), Some((5, 0, 2)));
        assert_eq!(q.pop(), Some((5, 0, 4)));
        assert_eq!(q.pop(), Some((5, 1, 3)));
        assert_eq!(q.pop(), Some((5, 2, 1)));
    }

    #[test]
    fn sharded_matches_global_queue_order_exactly() {
        // pseudo-random schedule, deterministic: the sharded queue must
        // reproduce the lane-keyed global heap's pop sequence event for
        // event, including dense cross-lane ties
        let mut global = EventQueue::new();
        let mut sharded = ShardedEventQueue::new(8);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..500u64 {
            let at = step() % 64; // dense times force many ties
            let lane = (step() % 8) as usize;
            global.try_push_lane(lane as u32, at, i).unwrap();
            sharded.try_push(lane, at, i).unwrap();
            if step() % 3 == 0 {
                assert_eq!(global.pop(), sharded.pop().map(|(t, _, e)| (t, e)));
            }
        }
        loop {
            let g = global.pop();
            let s = sharded.pop().map(|(t, _, e)| (t, e));
            assert_eq!(g, s);
            if g.is_none() {
                break;
            }
        }
        assert!(sharded.is_empty());
    }

    #[test]
    fn sharded_lane_slots_are_recycled() {
        let mut q = ShardedEventQueue::new(2);
        for round in 0..100u64 {
            q.try_push((round % 2) as usize, round, round).unwrap();
            let (at, lane, ev) = q.pop().unwrap();
            assert_eq!((at, lane, ev), (round, (round % 2) as usize, round));
        }
        assert!(q.is_empty());
        assert_eq!(q.lanes(), 2);
    }

    #[test]
    fn tournament_tree_handles_single_and_odd_lane_counts() {
        for n in [1usize, 3, 5, 7, 64] {
            let mut q = ShardedEventQueue::new(n);
            for l in (0..n).rev() {
                q.try_push(l, (l as u64) * 2, l).unwrap();
            }
            for l in 0..n {
                assert_eq!(q.pop(), Some(((l as u64) * 2, l, l)), "n={n}");
            }
            assert!(q.pop().is_none());
        }
    }
}
