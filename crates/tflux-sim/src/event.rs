//! The discrete-event queue.
//!
//! A deterministic priority queue of `(cycle, sequence)`-ordered events.
//! Ties on the cycle are broken by insertion order, so simulation results
//! are bit-reproducible across runs and platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute cycle `at`.
    pub fn push(&mut self, at: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s] = Some(event);
            s
        } else {
            self.slots.push(Some(event));
            self.slots.len() - 1
        };
        // the slot index rides in the low 20 bits of the tie-break key;
        // sequence numbers stay strictly increasing above it, preserving
        // insertion order for equal times
        assert!(slot < 1 << 20, "more than 2^20 outstanding events");
        self.heap.push(Reverse((at, (seq << 20) | slot as u64)));
    }

    /// Pop the earliest event; ties resolve in insertion order.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, key)) = self.heap.pop()?;
        let slot = (key & 0xF_FFFF) as usize;
        let event = self.slots[slot].take().expect("event slot empty");
        self.free.push(slot);
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.push(round, round);
            assert_eq!(q.pop(), Some((round, round)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(1, 'x');
        q.push(9, 'z');
        assert_eq!(q.pop(), Some((1, 'x')));
        q.push(4, 'y');
        assert_eq!(q.pop(), Some((4, 'y')));
        assert_eq!(q.pop(), Some((9, 'z')));
        assert_eq!(q.len(), 0);
    }
}
