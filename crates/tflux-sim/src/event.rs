//! The discrete-event queues.
//!
//! [`EventQueue`] is a deterministic priority queue of
//! `(cycle, sequence)`-ordered events. Ties on the cycle are broken by
//! insertion order, so simulation results are bit-reproducible across runs
//! and platforms.
//!
//! [`ShardedEventQueue`] splits the same event set into per-lane (per-core)
//! heaps with one *global* sequence counter. Popping the minimum across
//! lane heads yields exactly the `(cycle, sequence)` order of the single
//! global heap, so the two structures are interchangeable cycle-for-cycle;
//! the sharding is what lets the engine advance lanes in conservative time
//! windows (see `machine::DesEngine::Sharded`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute cycle `at`.
    pub fn push(&mut self, at: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s] = Some(event);
            s
        } else {
            self.slots.push(Some(event));
            self.slots.len() - 1
        };
        // the slot index rides in the low 20 bits of the tie-break key;
        // sequence numbers stay strictly increasing above it, preserving
        // insertion order for equal times
        assert!(slot < 1 << 20, "more than 2^20 outstanding events");
        self.heap.push(Reverse((at, (seq << 20) | slot as u64)));
    }

    /// Pop the earliest event; ties resolve in insertion order.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, key)) = self.heap.pop()?;
        let slot = (key & 0xF_FFFF) as usize;
        let event = self.slots[slot].take().expect("event slot empty");
        self.free.push(slot);
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One lane of a [`ShardedEventQueue`]: a small private heap with its own
/// slot store. Lanes share the parent's sequence counter, so cross-lane
/// ties still resolve in global insertion order.
#[derive(Debug)]
struct Lane<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    /// Cached head key `(at, seq_key)`, kept in sync on push/pop so the
    /// cross-lane minimum scan never touches the heaps.
    head: Option<(u64, u64)>,
}

impl<E> Lane<E> {
    fn new() -> Self {
        Lane {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: None,
        }
    }

    fn push(&mut self, at: u64, key_seq: u64, event: E) {
        let slot = if let Some(s) = self.free.pop() {
            self.slots[s] = Some(event);
            s
        } else {
            self.slots.push(Some(event));
            self.slots.len() - 1
        };
        assert!(slot < 1 << 20, "more than 2^20 outstanding events per lane");
        let key = (at, (key_seq << 20) | slot as u64);
        self.heap.push(Reverse(key));
        self.head = Some(self.heap.peek().expect("just pushed").0);
    }

    fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((at, key)) = self.heap.pop()?;
        let slot = (key & 0xF_FFFF) as usize;
        let event = self.slots[slot].take().expect("event slot empty");
        self.free.push(slot);
        self.head = self.heap.peek().map(|r| r.0);
        Some((at, event))
    }
}

/// A deterministic event queue sharded into per-lane heaps.
///
/// Events carry a lane index (the simulated core). The queue pops the
/// globally earliest event by scanning the cached lane heads — an O(lanes)
/// sweep over a dense array, cheap and branch-predictable for the ≤ 64
/// lanes a machine can have. Because all lanes draw from one strictly
/// increasing sequence counter, the pop order is **identical** to
/// [`EventQueue`]'s, including cross-lane ties.
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    lanes: Vec<Lane<E>>,
    next_seq: u64,
    len: usize,
}

impl<E> ShardedEventQueue<E> {
    /// An empty queue with `lanes` lanes (at least one).
    pub fn new(lanes: usize) -> Self {
        ShardedEventQueue {
            lanes: (0..lanes.max(1)).map(|_| Lane::new()).collect(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Schedule `event` on `lane` at absolute cycle `at`.
    pub fn push(&mut self, lane: usize, at: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[lane].push(at, seq, event);
        self.len += 1;
    }

    /// Earliest pending cycle across all lanes, if any.
    pub fn min_time(&self) -> Option<u64> {
        self.lanes
            .iter()
            .filter_map(|l| l.head)
            .min()
            .map(|(at, _)| at)
    }

    /// Pop the globally earliest event; cross-lane ties resolve in global
    /// insertion order. Returns `(cycle, lane, event)`.
    pub fn pop(&mut self) -> Option<(u64, usize, E)> {
        let (lane, _) = self
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.head.map(|h| (i, h)))
            .min_by_key(|&(_, h)| h)?;
        let (at, event) = self.lanes[lane].pop().expect("head lane is non-empty");
        self.len -= 1;
        Some((at, lane, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 2)));
        assert_eq!(q.pop(), Some((5, 3)));
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            q.push(round, round);
            assert_eq!(q.pop(), Some((round, round)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(1, 'x');
        q.push(9, 'z');
        assert_eq!(q.pop(), Some((1, 'x')));
        q.push(4, 'y');
        assert_eq!(q.pop(), Some((4, 'y')));
        assert_eq!(q.pop(), Some((9, 'z')));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn sharded_pops_in_global_time_order() {
        let mut q = ShardedEventQueue::new(4);
        q.push(3, 30, "c");
        q.push(0, 10, "a");
        q.push(2, 20, "b");
        assert_eq!(q.min_time(), Some(10));
        assert_eq!(q.pop(), Some((10, 0, "a")));
        assert_eq!(q.pop(), Some((20, 2, "b")));
        assert_eq!(q.pop(), Some((30, 3, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.min_time(), None);
    }

    #[test]
    fn sharded_cross_lane_ties_break_by_global_insertion_order() {
        let mut q = ShardedEventQueue::new(3);
        q.push(2, 5, 1);
        q.push(0, 5, 2);
        q.push(1, 5, 3);
        q.push(0, 5, 4);
        assert_eq!(q.pop(), Some((5, 2, 1)));
        assert_eq!(q.pop(), Some((5, 0, 2)));
        assert_eq!(q.pop(), Some((5, 1, 3)));
        assert_eq!(q.pop(), Some((5, 0, 4)));
    }

    #[test]
    fn sharded_matches_global_queue_order_exactly() {
        // pseudo-random schedule, deterministic: the sharded queue must
        // reproduce the single-heap pop sequence event for event
        let mut global = EventQueue::new();
        let mut sharded = ShardedEventQueue::new(8);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..500u64 {
            let at = step() % 64; // dense times force many ties
            let lane = (step() % 8) as usize;
            global.push(at, i);
            sharded.push(lane, at, i);
            if step() % 3 == 0 {
                assert_eq!(global.pop(), sharded.pop().map(|(t, _, e)| (t, e)));
            }
        }
        loop {
            let g = global.pop();
            let s = sharded.pop().map(|(t, _, e)| (t, e));
            assert_eq!(g, s);
            if g.is_none() {
                break;
            }
        }
        assert!(sharded.is_empty());
    }

    #[test]
    fn sharded_lane_slots_are_recycled() {
        let mut q = ShardedEventQueue::new(2);
        for round in 0..100u64 {
            q.push((round % 2) as usize, round, round);
            let (at, lane, ev) = q.pop().unwrap();
            assert_eq!((at, lane, ev), (round, (round % 2) as usize, round));
        }
        assert!(q.is_empty());
        assert_eq!(q.lanes(), 2);
    }
}
