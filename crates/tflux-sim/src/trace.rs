//! Execution traces: per-instance (core, start, end) spans recorded during
//! a simulation, with a text Gantt renderer — the tooling equivalent of
//! watching the paper's Fig. 2 kernel loop run.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use tflux_core::ids::Instance;
use tflux_core::program::DdmProgram;
use tflux_core::thread::ThreadKind;

/// One executed instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The core that executed it.
    pub core: u32,
    /// The instance.
    pub instance: Instance,
    /// First cycle of the body.
    pub start: u64,
    /// Completion cycle.
    pub end: u64,
}

/// The full trace of one simulated run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Spans in completion order.
    pub spans: Vec<Span>,
}

impl ExecTrace {
    /// Record a span (called by the machine).
    pub(crate) fn record(&mut self, core: u32, instance: Instance, start: u64, end: u64) {
        self.spans.push(Span {
            core,
            instance,
            start,
            end,
        });
    }

    /// Total spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Last completion cycle.
    pub fn end_cycle(&self) -> u64 {
        self.spans.iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// The longest span (often the serialization culprit).
    pub fn longest(&self) -> Option<Span> {
        self.spans.iter().copied().max_by_key(|s| s.end - s.start)
    }

    /// Busy cycles per core.
    pub fn core_busy(&self, cores: u32) -> Vec<u64> {
        let mut busy = vec![0u64; cores as usize];
        for s in &self.spans {
            if let Some(b) = busy.get_mut(s.core as usize) {
                *b += s.end - s.start;
            }
        }
        busy
    }

    /// Spans executed by the given core, in start order.
    pub fn per_core(&self, core: u32) -> Vec<Span> {
        let mut v: Vec<Span> = self
            .spans
            .iter()
            .copied()
            .filter(|s| s.core == core)
            .collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Verify the trace is physically consistent: no core executes two
    /// instances at once. Returns the first overlap found.
    pub fn find_overlap(&self) -> Option<(Span, Span)> {
        let mut cores: std::collections::HashMap<u32, Vec<Span>> = Default::default();
        for s in &self.spans {
            cores.entry(s.core).or_default().push(*s);
        }
        for spans in cores.values_mut() {
            spans.sort_by_key(|s| s.start);
            for w in spans.windows(2) {
                if w[1].start < w[0].end {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }

    /// Aggregate busy cycles and instance counts per thread template —
    /// "which DThread is the bottleneck" at a glance. Returns
    /// `(name, instances, total_cycles, max_span_cycles)` rows sorted by
    /// total cycles, descending.
    pub fn per_template(&self, program: &DdmProgram) -> Vec<(String, usize, u64, u64)> {
        use std::collections::HashMap;
        let mut agg: HashMap<tflux_core::ids::ThreadId, (usize, u64, u64)> = HashMap::new();
        for s in &self.spans {
            let e = agg.entry(s.instance.thread).or_default();
            e.0 += 1;
            e.1 += s.end - s.start;
            e.2 = e.2.max(s.end - s.start);
        }
        let mut rows: Vec<_> = agg
            .into_iter()
            .map(|(t, (n, total, max))| (program.thread(t).name.clone(), n, total, max))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.2));
        rows
    }

    /// Render a text Gantt chart: one row per core, `width` columns over
    /// the run's duration. App instances print as `#`, inlets/outlets as
    /// `|`, idle as `.`.
    pub fn gantt(&self, program: &DdmProgram, cores: u32, width: usize) -> String {
        let total = self.end_cycle().max(1);
        let width = width.max(10);
        let mut rows = vec![vec![b'.'; width]; cores as usize];
        for s in &self.spans {
            let Some(row) = rows.get_mut(s.core as usize) else {
                continue;
            };
            let c = match program.thread(s.instance.thread).kind {
                ThreadKind::App => b'#',
                ThreadKind::Inlet | ThreadKind::Outlet => b'|',
            };
            let lo = (s.start as u128 * width as u128 / total as u128) as usize;
            let hi = ((s.end as u128 * width as u128).div_ceil(total as u128) as usize)
                .min(width)
                .max(lo + 1);
            for cell in &mut row[lo..hi.min(width)] {
                *cell = c;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "cycles 0..{total} ({} spans)", self.spans.len());
        for (i, row) in rows.into_iter().enumerate() {
            let _ = writeln!(out, "core {i:>2} [{}]", String::from_utf8_lossy(&row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tflux_core::ids::{Context, ThreadId};
    use tflux_core::prelude::*;

    fn prog() -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::new("w", 4));
        b.build().unwrap()
    }

    fn span(core: u32, t: u32, start: u64, end: u64) -> Span {
        Span {
            core,
            instance: Instance::new(ThreadId(t), Context(0)),
            start,
            end,
        }
    }

    #[test]
    fn busy_and_longest() {
        let mut tr = ExecTrace::default();
        tr.record(0, Instance::new(ThreadId(0), Context(0)), 0, 100);
        tr.record(1, Instance::new(ThreadId(0), Context(1)), 10, 250);
        assert_eq!(tr.core_busy(2), vec![100, 240]);
        assert_eq!(tr.longest().unwrap().end, 250);
        assert_eq!(tr.end_cycle(), 250);
    }

    #[test]
    fn overlap_detection() {
        let mut tr = ExecTrace::default();
        tr.spans.push(span(0, 0, 0, 100));
        tr.spans.push(span(0, 0, 50, 150)); // overlaps on core 0
        assert!(tr.find_overlap().is_some());
        let mut ok = ExecTrace::default();
        ok.spans.push(span(0, 0, 0, 100));
        ok.spans.push(span(0, 0, 100, 150));
        ok.spans.push(span(1, 0, 0, 150));
        assert!(ok.find_overlap().is_none());
    }

    #[test]
    fn gantt_renders_rows() {
        let p = prog();
        let mut tr = ExecTrace::default();
        tr.record(0, Instance::new(ThreadId(0), Context(0)), 0, 500);
        tr.record(1, Instance::new(ThreadId(0), Context(1)), 500, 1000);
        let g = tr.gantt(&p, 2, 40);
        assert!(g.contains("core  0"));
        assert!(g.contains("core  1"));
        assert!(g.contains('#'));
        assert!(g.contains('.'));
        // core 0 busy early, core 1 late
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[1].starts_with("core  0 [#"));
        assert!(lines[2].contains(".#") || lines[2].ends_with("#]"));
    }

    #[test]
    fn per_template_aggregates_and_sorts() {
        let p = prog();
        let mut tr = ExecTrace::default();
        tr.record(0, Instance::new(ThreadId(0), Context(0)), 0, 100);
        tr.record(1, Instance::new(ThreadId(0), Context(1)), 0, 300);
        tr.record(0, Instance::scalar(p.blocks()[0].inlet), 0, 10);
        let rows = tr.per_template(&p);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "w");
        assert_eq!(rows[0].1, 2); // instances
        assert_eq!(rows[0].2, 400); // total cycles
        assert_eq!(rows[0].3, 300); // max span
        assert_eq!(rows[1].0, "inlet.B0");
    }

    #[test]
    fn inlets_render_as_bars() {
        let p = prog();
        let inlet = p.blocks()[0].inlet;
        let mut tr = ExecTrace::default();
        tr.record(0, Instance::scalar(inlet), 0, 100);
        let g = tr.gantt(&p, 1, 20);
        assert!(g.contains('|'));
    }
}
