//! The TSU device model: the hardware TSU Group behind its Memory-Mapped
//! Interface, or the software TSU Emulator — same state machine, different
//! cycle costs.
//!
//! §4.1: the CPU controls the TSU Group "through specially encoded flags"
//! sent as memory accesses the MMI snoops off the system network; each
//! access is an L1-latency-plus-4-cycles operation, and the unit itself
//! takes a configurable processing time per command (the 1→128-cycle
//! sensitivity knob). The device serializes command processing — it is one
//! unit — which is exactly why grouping per-CPU TSUs into a TSU Group
//! (§3.3) must be cheap for the paper's claim to hold; the ablation bench
//! sweeps `op` to verify the <1% claim.

use crate::config::TsuCosts;
use serde::{Deserialize, Serialize};
use tflux_core::error::CoreError;
use tflux_core::ids::{Epoch, Instance, KernelId};
use tflux_core::thread::ThreadKind;
use tflux_core::tsu::{CompletionFunnel, CoreTsu, FetchResult, TsuBackend};

/// Counters of the device model.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TsuDevStats {
    /// Commands processed (fetches + completions).
    pub commands: u64,
    /// Cycles the unit spent processing commands.
    pub busy: u64,
    /// Fetches that found nothing ready (core parked).
    pub empty_fetches: u64,
    /// Peak number of simultaneously parked cores.
    pub max_parked: u32,
    /// Completion batches whose ready-count updates crossed TSU-Group
    /// shards (each batch = one TSU-to-TSU network message).
    pub cross_updates: u64,
    /// Funnel flushes: batched completion commands sent to the unit. Each
    /// one covers up to `FlushPolicy::Batch { size }` App completions but
    /// costs a single command slot.
    #[serde(default)]
    pub funnel_flushes: u64,
    /// Fetches served by stealing from a sibling kernel's ready queue
    /// (each paid [`TsuCosts::steal`] extra cycles inside the unit).
    #[serde(default)]
    pub stolen_fetches: u64,
}

/// Result of a fetch command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DevFetch {
    /// Run this instance, dispatched under this epoch; the core may start
    /// at the given cycle. The epoch token must be handed back on
    /// [`TsuDevice::complete`].
    Thread(Instance, Epoch, u64),
    /// Nothing ready: the core parks until the device wakes it.
    Parked,
    /// Program finished: the core exits at the given cycle.
    Exit(u64),
}

/// The TSU Group / TSU Emulator device. Optionally sharded into multiple
/// TSU Groups (§3.3's "systems with very large number of CPUs" extension):
/// each shard serializes its own cores' commands, and a ready-count update
/// that crosses shards pays `cross_cost` extra cycles (the TSU-to-TSU
/// message that the single-group design handles internally).
pub struct TsuDevice<'p> {
    tsu: CoreTsu<&'p tflux_core::program::DdmProgram>,
    costs: TsuCosts,
    busy_until: Vec<u64>,
    /// `shard_of[core]`.
    shard_of: Vec<u32>,
    cross_cost: u64,
    parked: Vec<bool>,
    ready_buf: Vec<Instance>,
    /// Per-core completion funnels (empty and inert under
    /// `FlushPolicy::Direct`): App completions park core-locally and reach
    /// the unit as one batched command per flush.
    funnels: Vec<CompletionFunnel>,
    /// Counters.
    pub stats: TsuDevStats,
}

impl<'p> TsuDevice<'p> {
    /// Wrap a TSU state machine with a cost model for `cores` cores (one
    /// TSU Group).
    pub fn new(
        tsu: CoreTsu<&'p tflux_core::program::DdmProgram>,
        costs: TsuCosts,
        cores: u32,
    ) -> Self {
        Self::sharded(tsu, costs, cores, 1, 0)
    }

    /// A sharded TSU: `groups` independent units, cross-shard updates
    /// costing `cross_cost` extra cycles.
    pub fn sharded(
        tsu: CoreTsu<&'p tflux_core::program::DdmProgram>,
        costs: TsuCosts,
        cores: u32,
        groups: u32,
        cross_cost: u64,
    ) -> Self {
        let g = groups.max(1);
        let shard_of = (0..cores)
            .map(|c| (c as u64 * g as u64 / cores.max(1) as u64) as u32)
            .collect();
        let funnels = (0..cores)
            .map(|_| CompletionFunnel::new(tsu.flush_policy()))
            .collect();
        TsuDevice {
            tsu,
            costs,
            busy_until: vec![0; g as usize],
            shard_of,
            cross_cost,
            parked: vec![false; cores as usize],
            ready_buf: Vec::new(),
            funnels,
            stats: TsuDevStats::default(),
        }
    }

    /// The wrapped state machine.
    pub fn tsu(&self) -> &CoreTsu<&'p tflux_core::program::DdmProgram> {
        &self.tsu
    }

    /// Whether the program has finished.
    pub fn finished(&self) -> bool {
        self.tsu.finished()
    }

    /// Serialize one command into a shard; returns its completion cycle.
    fn process(&mut self, shard: u32, arrive: u64) -> u64 {
        let b = &mut self.busy_until[shard as usize];
        let start = (*b).max(arrive);
        let done = start + self.costs.op;
        *b = done;
        self.stats.commands += 1;
        self.stats.busy += self.costs.op;
        done
    }

    /// Flush a core's funnel as one batched completion command arriving
    /// at the unit at cycle `arrive`; returns the cycle at which the
    /// newly-ready DThreads become visible. A no-op for empty funnels.
    fn flush_core(&mut self, core: u32, arrive: u64) -> Result<u64, CoreError> {
        if self.funnels[core as usize].is_empty() {
            return Ok(arrive);
        }
        let shard = self.shard_of[core as usize];
        let mut ready_at = self.process(shard, arrive);
        self.stats.funnel_flushes += 1;
        let mut ready = std::mem::take(&mut self.ready_buf);
        let result = self.funnels[core as usize].flush(&mut self.tsu, &mut ready);
        if self.cross_cost > 0 {
            let kernels = self.tsu.kernels();
            let crossings = ready.iter().any(|&i| {
                let owner = self.tsu.program().kernel_of(i, kernels);
                self.shard_of[owner.idx()] != shard
            });
            if crossings {
                ready_at += self.cross_cost;
                self.stats.cross_updates += 1;
            }
        }
        self.ready_buf = ready;
        result?;
        Ok(ready_at)
    }

    /// A core asks for its next DThread at core-local cycle `now`.
    /// Propagates TSU protocol errors (non-resident dispatch, poisoned
    /// Synchronization Memory) instead of handing out a bogus instance.
    pub fn fetch(&mut self, core: u32, now: u64) -> Result<DevFetch, tflux_core::error::CoreError> {
        let arrive = now + self.costs.access;
        let shard = self.shard_of[core as usize];
        let mut done = self.process(shard, arrive);
        let (mut fetched, mut stolen) = self.tsu.fetch_ready_traced(KernelId(core))?;
        if fetched == FetchResult::Wait && self.funnels.iter().any(|f| !f.is_empty()) {
            // parked decrements may be the only thing standing between
            // this core and ready work: drain its own funnel, then (still
            // empty-handed) ask the unit to collect every core's buffer,
            // before conceding a park
            self.flush_core(core, arrive)?;
            (fetched, stolen) = self.tsu.fetch_ready_traced(KernelId(core))?;
            if fetched == FetchResult::Wait {
                for c in 0..self.funnels.len() as u32 {
                    self.flush_core(c, arrive)?;
                }
                (fetched, stolen) = self.tsu.fetch_ready_traced(KernelId(core))?;
            }
        }
        if stolen {
            // the unit walked a sibling queue to serve this fetch: the
            // command occupies the shard for `steal` extra cycles
            self.busy_until[shard as usize] += self.costs.steal;
            self.stats.busy += self.costs.steal;
            self.stats.stolen_fetches += 1;
            done += self.costs.steal;
        }
        Ok(match fetched {
            FetchResult::Thread(i, ep) => {
                self.parked[core as usize] = false;
                DevFetch::Thread(i, ep, done)
            }
            FetchResult::Wait => {
                self.stats.empty_fetches += 1;
                self.parked[core as usize] = true;
                let parked = self.parked.iter().filter(|&&p| p).count() as u32;
                self.stats.max_parked = self.stats.max_parked.max(parked);
                DevFetch::Parked
            }
            FetchResult::Exit => {
                self.parked[core as usize] = false;
                DevFetch::Exit(done)
            }
        })
    }

    /// A core notifies completion of `inst` at core-local cycle `now`.
    ///
    /// Returns `(core_free, ready_at)`: the cycle the core may continue
    /// (the notification is a posted store — the core does not wait for the
    /// TSU's post-processing), and the cycle at which newly-ready DThreads
    /// become visible (post-processing done inside the unit).
    pub fn complete(
        &mut self,
        core: u32,
        now: u64,
        inst: Instance,
        epoch: Epoch,
    ) -> Result<(u64, u64), tflux_core::error::CoreError> {
        let c = core as usize;
        if self.funnels[c].batching()
            && self.tsu.program().thread(inst.thread).kind == ThreadKind::App
        {
            // the completion parks in the core-local funnel: no MMI
            // access and no unit command until the batch fills
            if self.funnels[c].push(inst, epoch) {
                let ready_at = self.flush_core(core, now + self.costs.access)?;
                return Ok((now, ready_at));
            }
            return Ok((now, now));
        }
        let core_free = now + self.costs.access;
        // block transitions go straight to the unit; drain parked work
        // first so the command observes every earlier decrement
        self.flush_core(core, core_free)?;
        let shard = self.shard_of[c];
        let mut ready_at = self.process(shard, core_free);
        let mut ready = std::mem::take(&mut self.ready_buf);
        TsuBackend::complete(&mut self.tsu, inst, epoch, &mut ready)?;
        // cross-shard ready-count updates: charge the TSU-to-TSU network
        // message only when a newly-ready instance's owning kernel actually
        // lives on another shard
        if self.cross_cost > 0 {
            let kernels = self.tsu.kernels();
            let crossings = ready.iter().any(|&i| {
                let owner = self.tsu.program().kernel_of(i, kernels);
                self.shard_of[owner.idx()] != shard
            });
            if crossings {
                ready_at += self.cross_cost;
                self.stats.cross_updates += 1;
            }
        }
        self.ready_buf = ready;
        Ok((core_free, ready_at))
    }

    /// Cores currently parked, ascending. The machine retries their fetches
    /// after every completion.
    pub fn parked_cores(&self) -> Vec<u32> {
        let mut v = Vec::new();
        self.parked_cores_into(&mut v);
        v
    }

    /// Collect the currently-parked cores, ascending, into `buf` (cleared
    /// first). The allocation-free form of
    /// [`parked_cores`](Self::parked_cores) — the machine calls this once
    /// per completion, which at 64 cores is hot.
    pub fn parked_cores_into(&self, buf: &mut Vec<u32>) {
        buf.clear();
        buf.extend(
            self.parked
                .iter()
                .enumerate()
                .filter_map(|(c, &p)| p.then_some(c as u32)),
        );
    }

    /// Whether any core is parked.
    pub fn any_parked(&self) -> bool {
        self.parked.iter().any(|&p| p)
    }

    /// Kernel-side software overhead per DThread transition.
    pub fn kernel_overhead(&self) -> u64 {
        self.costs.kernel_overhead
    }

    /// Open the next streaming epoch: one unit command on shard 0 (epoch
    /// control is a serialized MMI operation). Returns the epoch id and
    /// the cycle at which any re-armed instances become fetchable.
    pub fn open_epoch(&mut self, now: u64) -> Result<(Epoch, u64), CoreError> {
        let done = self.process(0, now + self.costs.access);
        let mut ready = std::mem::take(&mut self.ready_buf);
        let ep = TsuBackend::open_epoch(&mut self.tsu, &mut ready);
        self.ready_buf = ready;
        Ok((ep?, done))
    }

    /// Retire a fully drained epoch, freeing one credit of the window.
    /// One unit command on shard 0; returns its completion cycle.
    pub fn retire_epoch(&mut self, epoch: Epoch, now: u64) -> Result<u64, CoreError> {
        let done = self.process(0, now + self.costs.access);
        TsuBackend::retire_epoch(&mut self.tsu, epoch)?;
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tflux_core::prelude::*;

    fn fork(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::new("w", arity));
        b.build().unwrap()
    }

    #[test]
    fn fetch_charges_access_and_op_latency() {
        let p = fork(2);
        let tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), 1);
        match dev.fetch(0, 100).unwrap() {
            DevFetch::Thread(i, _, at) => {
                assert_eq!(i.thread, p.blocks()[0].inlet);
                // 100 + access(6) + op(4)
                assert_eq!(at, 110);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stolen_fetch_charges_access_op_and_steal_latency() {
        // every `w` instance is pinned to kernel 0, so core 1 can only be
        // served by the unit walking kernel 0's queue: that fetch pays
        // access + op + steal, a local fetch pays access + op only
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 4).with_affinity(Affinity::Fixed(KernelId(0))),
        );
        let p = b.build().unwrap();
        let tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), 2);
        let DevFetch::Thread(inlet, ep, t0) = dev.fetch(0, 0).unwrap() else {
            panic!()
        };
        dev.complete(0, t0, inlet, ep).unwrap();
        // local fetch on core 0: 1000 + access(6) + op(4)
        let DevFetch::Thread(_, _, local_at) = dev.fetch(0, 1000).unwrap() else {
            panic!()
        };
        assert_eq!(local_at, 1010);
        assert_eq!(dev.stats.stolen_fetches, 0);
        // stolen fetch on core 1: serialized behind the local fetch, plus
        // the steal walk (10)
        let DevFetch::Thread(_, _, stolen_at) = dev.fetch(1, 1000).unwrap() else {
            panic!()
        };
        assert_eq!(stolen_at, local_at + 4 + 10);
        assert_eq!(dev.stats.stolen_fetches, 1);
        assert!(dev.tsu().stats().steals >= 1);
    }

    #[test]
    fn commands_serialize_through_the_unit() {
        let p = fork(8);
        let tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), 2);
        // prime: inlet fetched and completed so app threads are ready
        let DevFetch::Thread(inlet, ep, t0) = dev.fetch(0, 0).unwrap() else {
            panic!()
        };
        let (_, _) = dev.complete(0, t0, inlet, ep).unwrap();
        // two cores fetch at the same instant: second is delayed by op
        let DevFetch::Thread(_, _, a) = dev.fetch(0, 1000).unwrap() else {
            panic!()
        };
        let DevFetch::Thread(_, _, b) = dev.fetch(1, 1000).unwrap() else {
            panic!()
        };
        assert!(b >= a + 4, "unit must serialize: {a} vs {b}");
    }

    #[test]
    fn empty_fetch_parks_core() {
        let p = fork(1);
        let tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), 2);
        let DevFetch::Thread(inlet, ep, _) = dev.fetch(0, 0).unwrap() else {
            panic!()
        };
        // core 1 fetches while only core 0 holds the inlet: nothing ready
        assert_eq!(dev.fetch(1, 0).unwrap(), DevFetch::Parked);
        assert!(dev.any_parked());
        assert_eq!(dev.parked_cores(), vec![1]);
        assert_eq!(dev.stats.empty_fetches, 1);
        // completing the inlet loads the block; core 1 can now fetch
        dev.complete(0, 10, inlet, ep).unwrap();
        assert!(matches!(dev.fetch(1, 20).unwrap(), DevFetch::Thread(..)));
        assert!(!dev.any_parked());
    }

    #[test]
    fn completion_is_posted_core_continues_before_postprocessing() {
        let p = fork(1);
        let tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        let mut dev = TsuDevice::new(tsu, TsuCosts::soft(), 1);
        let DevFetch::Thread(inlet, ep, t) = dev.fetch(0, 0).unwrap() else {
            panic!()
        };
        let (core_free, ready_at) = dev.complete(0, t, inlet, ep).unwrap();
        assert_eq!(core_free, t + TsuCosts::soft().access);
        assert!(ready_at >= core_free + TsuCosts::soft().op);
    }

    #[test]
    fn shards_serialize_independently() {
        let p = fork(16);
        let tsu = CoreTsu::new(&p, 4, TsuConfig::default());
        let mut dev = TsuDevice::sharded(tsu, TsuCosts::hard(), 4, 2, 8);
        // prime the block
        let DevFetch::Thread(inlet, ep, t0) = dev.fetch(0, 0).unwrap() else {
            panic!()
        };
        dev.complete(0, t0, inlet, ep).unwrap();
        // cores 0 and 2 are on different shards: same-instant fetches do
        // NOT serialize against each other
        let DevFetch::Thread(_, _, a) = dev.fetch(0, 1000).unwrap() else {
            panic!()
        };
        let DevFetch::Thread(_, _, b) = dev.fetch(2, 1000).unwrap() else {
            panic!()
        };
        assert_eq!(a, b, "different shards must not serialize");
        // cores 2 and 3 share a shard: they do serialize
        let DevFetch::Thread(_, _, c) = dev.fetch(3, 1000).unwrap() else {
            panic!()
        };
        assert!(c > b, "same shard must serialize: {b} vs {c}");
    }

    #[test]
    fn cross_shard_updates_are_charged_and_counted() {
        let p = fork(8);
        let tsu = CoreTsu::new(&p, 4, TsuConfig::default());
        let mut dev = TsuDevice::sharded(tsu, TsuCosts::hard(), 4, 2, 50);
        let DevFetch::Thread(inlet, ep, t0) = dev.fetch(0, 0).unwrap() else {
            panic!()
        };
        // the inlet load readies instances owned by both shards
        let (_, ready_at) = dev.complete(0, t0, inlet, ep).unwrap();
        assert!(dev.stats.cross_updates >= 1);
        // ready_at includes the cross-shard message
        let plain_tsu = CoreTsu::new(&p, 4, TsuConfig::default());
        let mut plain = TsuDevice::new(plain_tsu, TsuCosts::hard(), 4);
        let DevFetch::Thread(inlet2, ep2, t1) = plain.fetch(0, 0).unwrap() else {
            panic!()
        };
        let (_, plain_ready) = plain.complete(0, t1, inlet2, ep2).unwrap();
        assert_eq!(ready_at, plain_ready + 50);
    }

    #[test]
    fn funneled_completions_batch_unit_commands() {
        fn drive(flush: FlushPolicy) -> (TsuDevStats, tflux_core::TsuStats) {
            let mut b = ProgramBuilder::new();
            let blk = b.block();
            let work = b.thread(blk, ThreadSpec::new("w", 32));
            let sink = b.thread(blk, ThreadSpec::scalar("sink"));
            b.arc(work, sink, ArcMapping::Reduction).unwrap();
            let p = b.build().unwrap();
            let tsu = CoreTsu::new(
                &p,
                2,
                TsuConfig {
                    flush,
                    ..TsuConfig::default()
                },
            );
            let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), 2);
            let mut now = [0u64; 2];
            let mut exited = [false; 2];
            let mut guard = 0;
            while !(exited[0] && exited[1]) {
                guard += 1;
                assert!(guard < 10_000, "device drive stalled");
                for core in 0..2u32 {
                    let c = core as usize;
                    if exited[c] {
                        continue;
                    }
                    match dev.fetch(core, now[c]).unwrap() {
                        DevFetch::Thread(i, ep, at) => {
                            let (free, _) = dev.complete(core, at, i, ep).unwrap();
                            now[c] = free;
                        }
                        DevFetch::Parked => now[c] += 1,
                        DevFetch::Exit(_) => exited[c] = true,
                    }
                }
            }
            (dev.stats, dev.tsu().stats())
        }
        let (d_dev, d_tsu) = drive(FlushPolicy::Direct);
        let (b_dev, b_tsu) = drive(FlushPolicy::Batch { size: 8 });
        // same logical work...
        assert_eq!(b_tsu.completions, d_tsu.completions);
        assert_eq!(b_tsu.rc_updates, d_tsu.rc_updates);
        // ...but fewer physical RMWs and fewer unit commands: batched App
        // completions reach the unit as funnel flushes, not one command
        // apiece
        assert!(b_tsu.rc_rmws < d_tsu.rc_rmws);
        assert!(b_dev.funnel_flushes > 0);
        assert!(
            b_dev.commands < d_dev.commands,
            "batched {} !< direct {}",
            b_dev.commands,
            d_dev.commands
        );
    }

    #[test]
    fn reopened_epoch_resumes_the_device_after_exit() {
        let p = fork(2);
        let tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), 1);
        let mut now = 0;
        let drive = |dev: &mut TsuDevice<'_>, mut now: u64| loop {
            match dev.fetch(0, now).unwrap() {
                DevFetch::Thread(i, ep, at) => {
                    let (free, _) = dev.complete(0, at, i, ep).unwrap();
                    now = free;
                }
                DevFetch::Exit(at) => break at,
                DevFetch::Parked => panic!("single core should never park"),
            }
        };
        now = drive(&mut dev, now);
        assert!(dev.finished());
        // open the next epoch: the device re-arms and serves a full pass
        let (ep, ready_at) = dev.open_epoch(now).unwrap();
        assert_eq!(ep, tflux_core::ids::Epoch(1));
        assert!(!dev.finished());
        drive(&mut dev, ready_at);
        assert!(dev.finished());
        assert_eq!(
            dev.tsu().stats().completions as usize,
            2 * p.total_instances()
        );
        assert_eq!(dev.tsu().stats().epochs, 2);
        // retiring closes the ledger oldest-first, exactly once
        dev.retire_epoch(tflux_core::ids::Epoch(0), now).unwrap();
        dev.retire_epoch(tflux_core::ids::Epoch(1), now).unwrap();
        assert!(dev.retire_epoch(tflux_core::ids::Epoch(1), now).is_err());
    }

    #[test]
    fn exit_after_program_finishes() {
        let p = fork(1);
        let tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        let mut dev = TsuDevice::new(tsu, TsuCosts::hard(), 1);
        let mut now = 0;
        loop {
            match dev.fetch(0, now).unwrap() {
                DevFetch::Thread(i, ep, at) => {
                    let (free, _) = dev.complete(0, at, i, ep).unwrap();
                    now = free;
                }
                DevFetch::Exit(_) => break,
                DevFetch::Parked => panic!("single core should never park"),
            }
        }
        assert!(dev.finished());
        assert_eq!(dev.tsu().stats().completions as usize, p.total_instances());
    }
}
