//! The Memory-Mapped Interface (MMI): the hardware TSU Group's concrete
//! wire format.
//!
//! §4.1: "The TSU Group is attached to the system's network as a
//! memory-mapped device. A special unit, the Memory Mapped Interface (MMI),
//! is responsible for snooping the network and transferring to the TSU all
//! memory requests directed to it. ... The CPU controls the TSU Group
//! through specially encoded flags. At the TSU Group side these requests
//! are decoded and trigger the appropriate TSU operation."
//!
//! This module pins down that encoding: the device's address window, the
//! per-core command/response register layout, and the 64-bit command words
//! a kernel stores to drive the TSU. The [`TsuDevice`](crate::tsu_dev)
//! charges the *timing* of these transactions abstractly; this module is
//! the functional contract a hardware implementation (or the DDMCPP `sim`
//! back-end's generated kernel code) would follow — the hardware sibling of
//! the Cell platform's `CommandBuffer` encoding in `tflux-cell`.

use tflux_core::ids::{Context, Instance, KernelId, ThreadId};

/// Default base address of the TSU Group's memory window (high, uncached).
pub const TSU_BASE: u64 = 0xFFFF_0000_0000;
/// Bytes of address space per core (one command + one response register).
pub const PER_CORE_WINDOW: u64 = 16;

/// A command a kernel issues to the TSU through its command register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmiCommand {
    /// Request the next ready DThread (the FindReadyThread query).
    Fetch,
    /// Notify completion of an instance (triggers post-processing).
    Complete(Instance),
    /// Load the metadata of a DDM block (issued by Inlet DThreads).
    LoadBlock(u32),
    /// Release the TSU entries of a block (issued by Outlet DThreads).
    FreeBlock(u32),
}

/// A response the TSU writes into a core's response register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmiResponse {
    /// Run this instance.
    Thread(Instance),
    /// Nothing ready; retry / wait for the TSU's wake.
    Wait,
    /// Program finished; the kernel exits.
    Exit,
}

const OP_FETCH: u64 = 0x01;
const OP_COMPLETE: u64 = 0x02;
const OP_LOAD: u64 = 0x03;
const OP_FREE: u64 = 0x04;

const RSP_THREAD: u64 = 0x01;
const RSP_WAIT: u64 = 0x02;
const RSP_EXIT: u64 = 0x03;

/// The TSU Group's address map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmiMap {
    /// Base address of the device window.
    pub base: u64,
    /// Number of cores served (sizes the window).
    pub cores: u32,
}

impl MmiMap {
    /// The default map for a machine with `cores` cores.
    pub fn new(cores: u32) -> Self {
        MmiMap {
            base: TSU_BASE,
            cores,
        }
    }

    /// Address of a core's command register (stores issue commands).
    pub fn cmd_addr(&self, core: KernelId) -> u64 {
        self.base + core.0 as u64 * PER_CORE_WINDOW
    }

    /// Address of a core's response register (loads read responses).
    pub fn resp_addr(&self, core: KernelId) -> u64 {
        self.cmd_addr(core) + 8
    }

    /// Total bytes the device occupies on the network.
    pub fn window_bytes(&self) -> u64 {
        self.cores as u64 * PER_CORE_WINDOW
    }

    /// Whether an address belongs to the TSU window (what the MMI snoops).
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.window_bytes()
    }

    /// Decode which core and register an in-window address refers to.
    /// Returns `(core, is_response_register)`.
    pub fn decode_addr(&self, addr: u64) -> Option<(KernelId, bool)> {
        if !self.contains(addr) {
            return None;
        }
        let off = addr - self.base;
        Some((
            KernelId((off / PER_CORE_WINDOW) as u32),
            off % PER_CORE_WINDOW >= 8,
        ))
    }
}

impl MmiCommand {
    /// Encode as the 64-bit word a kernel stores:
    /// `[63:56] opcode | [55:32] thread id | [31:0] context`.
    pub fn encode(&self) -> u64 {
        match *self {
            MmiCommand::Fetch => OP_FETCH << 56,
            MmiCommand::Complete(i) => {
                (OP_COMPLETE << 56) | ((i.thread.0 as u64 & 0xFF_FFFF) << 32) | i.context.0 as u64
            }
            MmiCommand::LoadBlock(b) => (OP_LOAD << 56) | b as u64,
            MmiCommand::FreeBlock(b) => (OP_FREE << 56) | b as u64,
        }
    }

    /// Decode a stored command word.
    pub fn decode(word: u64) -> Option<MmiCommand> {
        let op = word >> 56;
        match op {
            OP_FETCH => Some(MmiCommand::Fetch),
            OP_COMPLETE => Some(MmiCommand::Complete(Instance::new(
                ThreadId(((word >> 32) & 0xFF_FFFF) as u32),
                Context((word & 0xFFFF_FFFF) as u32),
            ))),
            OP_LOAD => Some(MmiCommand::LoadBlock((word & 0xFFFF_FFFF) as u32)),
            OP_FREE => Some(MmiCommand::FreeBlock((word & 0xFFFF_FFFF) as u32)),
            _ => None,
        }
    }
}

impl MmiResponse {
    /// Encode as the 64-bit word the TSU writes to a response register.
    pub fn encode(&self) -> u64 {
        match *self {
            MmiResponse::Thread(i) => {
                (RSP_THREAD << 56) | ((i.thread.0 as u64 & 0xFF_FFFF) << 32) | i.context.0 as u64
            }
            MmiResponse::Wait => RSP_WAIT << 56,
            MmiResponse::Exit => RSP_EXIT << 56,
        }
    }

    /// Decode a response word.
    pub fn decode(word: u64) -> Option<MmiResponse> {
        match word >> 56 {
            RSP_THREAD => Some(MmiResponse::Thread(Instance::new(
                ThreadId(((word >> 32) & 0xFF_FFFF) as u32),
                Context((word & 0xFFFF_FFFF) as u32),
            ))),
            RSP_WAIT => Some(MmiResponse::Wait),
            RSP_EXIT => Some(MmiResponse::Exit),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_words_roundtrip() {
        let cmds = [
            MmiCommand::Fetch,
            MmiCommand::Complete(Instance::new(ThreadId(0xABCDE), Context(0x00DE_ADBE_u32))),
            MmiCommand::LoadBlock(7),
            MmiCommand::FreeBlock(0xFFFF),
        ];
        for c in cmds {
            assert_eq!(MmiCommand::decode(c.encode()), Some(c), "{c:?}");
        }
    }

    #[test]
    fn response_words_roundtrip() {
        let rsps = [
            MmiResponse::Thread(Instance::new(ThreadId(3), Context(9))),
            MmiResponse::Wait,
            MmiResponse::Exit,
        ];
        for r in rsps {
            assert_eq!(MmiResponse::decode(r.encode()), Some(r), "{r:?}");
        }
    }

    #[test]
    fn garbage_words_do_not_decode() {
        assert_eq!(MmiCommand::decode(0), None);
        assert_eq!(MmiCommand::decode(u64::MAX), None);
        assert_eq!(MmiResponse::decode(0), None);
        assert_eq!(MmiResponse::decode(0xF0 << 56), None);
    }

    #[test]
    fn address_map_decodes_cores_and_registers() {
        let map = MmiMap::new(27);
        assert!(map.contains(map.cmd_addr(KernelId(0))));
        assert!(map.contains(map.resp_addr(KernelId(26))));
        assert!(!map.contains(map.base + map.window_bytes()));
        assert!(!map.contains(0x1000));

        assert_eq!(
            map.decode_addr(map.cmd_addr(KernelId(5))),
            Some((KernelId(5), false))
        );
        assert_eq!(
            map.decode_addr(map.resp_addr(KernelId(5))),
            Some((KernelId(5), true))
        );
        assert_eq!(map.decode_addr(0), None);
    }

    #[test]
    fn windows_do_not_overlap_between_cores() {
        let map = MmiMap::new(8);
        let mut seen = std::collections::HashSet::new();
        for c in 0..8 {
            for reg in [map.cmd_addr(KernelId(c)), map.resp_addr(KernelId(c))] {
                assert!(seen.insert(reg), "address {reg:#x} reused");
            }
        }
    }

    #[test]
    fn device_window_is_outside_workload_address_space() {
        // workload trace generators use the low 4 GB; the device must not
        // alias a cacheable line
        let map = MmiMap::new(64);
        assert!(map.base > 0xFFFF_FFFF);
    }

    #[test]
    fn complete_encoding_masks_wide_ids() {
        // thread ids wider than 24 bits are masked, not smeared into the
        // opcode field
        let i = Instance::new(ThreadId(u32::MAX), Context(1));
        let word = MmiCommand::Complete(i).encode();
        assert_eq!(word >> 56, 0x02);
        match MmiCommand::decode(word) {
            Some(MmiCommand::Complete(d)) => assert_eq!(d.thread.0, 0xFF_FFFF),
            other => panic!("{other:?}"),
        }
    }
}
