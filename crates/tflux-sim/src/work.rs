//! Workload cost models: what a DThread instance does on a simulated core.
//!
//! A [`WorkSource`] maps every instance of a program to an [`InstanceWork`]:
//! pure compute cycles plus a stream of cache-line-granular memory accesses.
//! The simulator replays the stream through the cache/coherence model and
//! interleaves the compute cycles, producing the instance's execution time
//! on a particular core at a particular moment.
//!
//! Workload models for the paper's five benchmarks live in
//! `tflux-workloads`; this module defines the interface plus simple sources
//! used by tests and microbenchmarks.

use tflux_core::ids::Instance;

/// One memory access (byte address; the caches derive their line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// Whether this is a store.
    pub write: bool,
}

impl MemAccess {
    /// A load.
    pub fn read(addr: u64) -> Self {
        MemAccess { addr, write: false }
    }

    /// A store.
    pub fn write(addr: u64) -> Self {
        MemAccess { addr, write: true }
    }
}

/// The cost description of one DThread instance.
#[derive(Clone, Debug, Default)]
pub struct InstanceWork {
    /// Pure compute cycles, interleaved uniformly with the access stream.
    pub compute: u64,
    /// Memory accesses in program order.
    pub accesses: Vec<MemAccess>,
}

impl InstanceWork {
    /// Compute-only work.
    pub fn compute(cycles: u64) -> Self {
        InstanceWork {
            compute: cycles,
            accesses: Vec::new(),
        }
    }

    /// Reset for reuse (keeps the access allocation).
    pub fn clear(&mut self) {
        self.compute = 0;
        self.accesses.clear();
    }
}

/// Produces the cost description of every instance of a program.
///
/// Instances the source knows nothing about (inlets, outlets, pure
/// synchronization threads) should be given zero work.
pub trait WorkSource {
    /// Fill `out` (already cleared) with the work of `inst`.
    fn work(&self, inst: Instance, out: &mut InstanceWork);
}

/// Every instance costs the same fixed compute time; no memory traffic.
/// The simplest possible source — used for TSU/scheduling microbenchmarks
/// and tests where memory effects would be noise.
#[derive(Clone, Copy, Debug)]
pub struct UniformWork {
    /// Compute cycles per application instance.
    pub cycles: u64,
}

impl WorkSource for UniformWork {
    fn work(&self, _inst: Instance, out: &mut InstanceWork) {
        out.compute = self.cycles;
    }
}

/// Adapter: build a source from a closure.
pub struct FnWork<F>(pub F);

impl<F: Fn(Instance, &mut InstanceWork)> WorkSource for FnWork<F> {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        (self.0)(inst, out);
    }
}

/// A source that streams sequentially through a private array region per
/// context — useful for cache-behaviour tests.
#[derive(Clone, Copy, Debug)]
pub struct StreamWork {
    /// Bytes each instance walks.
    pub bytes_per_instance: u64,
    /// Access stride in bytes.
    pub stride: u64,
    /// Base address of the shared region.
    pub base: u64,
    /// Whether instances write (true) or read (false).
    pub writes: bool,
    /// Compute cycles per access.
    pub cycles_per_access: u64,
}

impl WorkSource for StreamWork {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        let start = self.base + inst.context.0 as u64 * self.bytes_per_instance;
        let n = self.bytes_per_instance / self.stride.max(1);
        for i in 0..n {
            out.accesses.push(MemAccess {
                addr: start + i * self.stride,
                write: self.writes,
            });
        }
        out.compute = n * self.cycles_per_access;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tflux_core::ids::{Context, ThreadId};

    #[test]
    fn uniform_work_is_uniform() {
        let s = UniformWork { cycles: 100 };
        let mut w = InstanceWork::default();
        s.work(Instance::new(ThreadId(0), Context(3)), &mut w);
        assert_eq!(w.compute, 100);
        assert!(w.accesses.is_empty());
    }

    #[test]
    fn stream_work_partitions_by_context() {
        let s = StreamWork {
            bytes_per_instance: 256,
            stride: 64,
            base: 0x1000,
            writes: false,
            cycles_per_access: 2,
        };
        let mut w = InstanceWork::default();
        s.work(Instance::new(ThreadId(0), Context(1)), &mut w);
        assert_eq!(w.accesses.len(), 4);
        assert_eq!(w.accesses[0].addr, 0x1100);
        assert_eq!(w.accesses[3].addr, 0x11C0);
        assert_eq!(w.compute, 8);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut w = InstanceWork::default();
        w.accesses.extend((0..100).map(MemAccess::read));
        let cap = w.accesses.capacity();
        w.clear();
        assert_eq!(w.accesses.len(), 0);
        assert_eq!(w.accesses.capacity(), cap);
    }

    #[test]
    fn fn_work_delegates() {
        let s = FnWork(|inst: Instance, out: &mut InstanceWork| {
            out.compute = inst.context.0 as u64 * 10;
        });
        let mut w = InstanceWork::default();
        s.work(Instance::new(ThreadId(2), Context(5)), &mut w);
        assert_eq!(w.compute, 50);
    }
}
