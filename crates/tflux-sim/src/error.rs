//! Typed simulation failures.
//!
//! A simulation that cannot continue reports *why* through
//! [`SimError`] instead of panicking, so sweep drivers (bench harness,
//! figures generation) can attribute the failure to a configuration
//! rather than unwinding through the event loop.

use std::fmt;
use tflux_core::error::CoreError;

/// Why a simulation run could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A single event lane accumulated more than 2^20 outstanding events.
    ///
    /// The event queues pack the slot index into the low 20 bits of the
    /// deterministic tie-break key; overflowing it would silently corrupt
    /// event ordering, so the push is refused instead.
    EventOverflow {
        /// The lane (simulated core) whose slot store overflowed.
        lane: u32,
    },
    /// The TSU state machine rejected a command — an invalid
    /// program/configuration pair (e.g. a block exceeding TSU capacity),
    /// not a data-dependent condition.
    Protocol(CoreError),
    /// The event queue drained with cores still waiting on the TSU: the
    /// program cannot make progress under this configuration.
    Deadlock {
        /// Number of cores that never reached the Exit condition.
        stuck: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventOverflow { lane } => write!(
                f,
                "lane {lane} exceeded 2^20 outstanding events; the 20-bit \
                 slot field of the deterministic event key would overflow"
            ),
            SimError::Protocol(e) => write!(f, "TSU protocol error: {e}"),
            SimError::Deadlock { stuck } => write!(
                f,
                "simulation deadlocked: {stuck} cores stuck with no pending events"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_lane() {
        let e = SimError::EventOverflow { lane: 7 };
        assert!(e.to_string().contains("lane 7"));
    }

    #[test]
    fn protocol_errors_chain_their_source() {
        let e = SimError::from(CoreError::EmptyProgram);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("protocol"));
    }
}
