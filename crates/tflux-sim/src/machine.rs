//! The simulated machine: cores running the Fig. 2 kernel loop against the
//! TSU device and the memory hierarchy, driven by a deterministic
//! discrete-event loop.
//!
//! Cores execute DThread instances as chunks of memory accesses interleaved
//! with compute cycles; every chunk boundary is an event, which keeps cores
//! loosely synchronized so bus arbitration and coherence see a realistic
//! interleaving without paying for an event per access.
//!
//! # Rounds
//!
//! Every engine advances time in *rounds*. A round starts at the earliest
//! pending event cycle `t0` and spans `R = MachineConfig::merge_round_len()`
//! cycles, in three phases:
//!
//! 1. **Drain** — events earlier than `t0 + R` are popped in canonical
//!    `(cycle, lane)` order. `Chunk` events execute immediately against the
//!    core's memory domain (reading the shared snapshot, writing a private
//!    overlay); they only ever push follow-up events onto their own lane.
//!    `Fetch` events and chunk completions are *deferred* into a batch keyed
//!    by `(cycle, lane)` — TSU-device state is global, so device commands
//!    must not run while lanes advance independently.
//! 2. **Replay** — the deferred batch drains in `(cycle, lane)` order on the
//!    driving thread. Device commands run here; fetches they spawn inside
//!    the round join the batch, chunk work always lands on the event store
//!    for the next round.
//! 3. **Commit** — every domain's memory overlay merges into the shared
//!    snapshot in domain-index order ([`crate::memsys`]).
//!
//! Because phases never interleave and the replay/commit orders are fixed,
//! the result is independent of the engine and of how many host threads
//! drained phase 1 — the property the equivalence suite pins down.

use crate::config::MachineConfig;
use crate::error::SimError;
use crate::event::{EventQueue, Lane, ShardedEventQueue};
use crate::memsys::{commit_parts, DomainMem, MemorySystem, SharedMem};
use crate::report::SimReport;
use crate::trace::ExecTrace;
use crate::tsu_dev::{DevFetch, TsuDevice};
use crate::work::{InstanceWork, WorkSource};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{mpsc, RwLock};
use std::thread;
use tflux_core::ids::{Epoch, Instance};
use tflux_core::program::DdmProgram;
use tflux_core::tsu::{drain_sequential, CoreTsu, FlushPolicy, TsuConfig};

/// Accesses per scheduling quantum. Chunking trades event-queue overhead
/// against interleaving fidelity; 64 accesses ≈ a few hundred cycles, well
/// under typical DThread lengths.
const CHUNK: usize = 64;

/// Which discrete-event engine drives the cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DesEngine {
    /// One global binary heap over all events — the original engine and
    /// the equivalence oracle.
    #[default]
    Global,
    /// Per-core event lanes advanced round-by-round. With one host thread
    /// the lanes sit behind a tournament tree and drain on the calling
    /// thread; with [`Machine::with_host_threads`] `> 1` each L2 group's
    /// lanes drain concurrently on a worker pool, each against its own
    /// memory-domain overlay, and the overlays merge at the round boundary.
    /// Both variants are cycle-for-cycle identical to
    /// [`DesEngine::Global`]: all cross-lane influence is serialized
    /// through the round's replay and commit phases, whose order is fixed
    /// by `(cycle, lane)` and domain index — never by host scheduling.
    Sharded,
}

/// A simulated TFlux machine.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    cfg: MachineConfig,
    tsu_cfg: TsuConfig,
    /// Streaming passes over the program graph (1 = one-shot).
    epochs: u64,
    engine: DesEngine,
    /// Host worker threads draining event lanes (only meaningful for
    /// [`DesEngine::Sharded`]).
    host_threads: u32,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The core asks the TSU for its next DThread.
    Fetch(u32),
    /// The core executes its next chunk of the current instance.
    Chunk(u32),
}

#[derive(Debug, Default)]
struct CoreState {
    current: Option<(Instance, Epoch)>,
    /// Cycle the current instance's body started (for tracing).
    started: u64,
    work: InstanceWork,
    cursor: usize,
    compute_per_chunk: u64,
    compute_rem: u64,
    parked_since: u64,
    busy: u64,
    tsu_time: u64,
    idle: u64,
    finish: u64,
    done: bool,
}

/// The event store behind one simulation run.
enum Events {
    /// Single global heap ([`DesEngine::Global`]).
    Global(EventQueue<Ev>),
    /// Tournament tree over per-core lanes (serial [`DesEngine::Sharded`]).
    Sharded(ShardedEventQueue<Ev>),
    /// Bare lanes, handed out to the worker pool round by round
    /// (parallel [`DesEngine::Sharded`]).
    Lanes(Vec<Lane<Ev>>),
}

impl Events {
    fn try_push(&mut self, lane: u32, at: u64, ev: Ev) -> Result<(), SimError> {
        match self {
            Events::Global(q) => q.try_push_lane(lane, at, ev),
            Events::Sharded(q) => q.try_push(lane as usize, at, ev),
            Events::Lanes(ls) => ls[lane as usize].try_push(lane, at, ev),
        }
    }

    fn min_time(&self) -> Option<u64> {
        match self {
            Events::Global(q) => q.min_time(),
            Events::Sharded(q) => q.min_time(),
            Events::Lanes(ls) => ls.iter().filter_map(|l| l.head_at()).min(),
        }
    }

    /// Pop the earliest event in `(cycle, lane)` order if it is before
    /// `end`.
    fn pop_before(&mut self, end: u64) -> Option<(u64, Ev)> {
        match self {
            Events::Global(q) => {
                if q.min_time()? < end {
                    q.pop()
                } else {
                    None
                }
            }
            Events::Sharded(q) => {
                if q.min_time()? < end {
                    q.pop().map(|(t, _, e)| (t, e))
                } else {
                    None
                }
            }
            Events::Lanes(ls) => {
                let (i, at) = ls
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| l.head_at().map(|h| (i, h)))
                    .min_by_key(|&(i, h)| (h, i))?;
                if at < end {
                    ls[i].pop()
                } else {
                    None
                }
            }
        }
    }

    fn lanes_mut(&mut self) -> &mut Vec<Lane<Ev>> {
        match self {
            Events::Lanes(ls) => ls,
            _ => unreachable!("lanes_mut on a queue-backed event store"),
        }
    }
}

/// A deferred TSU-device operation, replayed serially at the round
/// boundary. `Ord` is derived only so the tuple key is heap-friendly;
/// batch keys `(cycle, lane)` are unique, so the op never decides order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum DevOp {
    /// Replay `dev.fetch(lane, cycle)`.
    Fetch,
    /// The lane's instance finished its last chunk at `now` (≥ the
    /// triggering event's cycle, which keys the batch).
    Complete { now: u64 },
}

/// The round's deferred device operations, drained in `(cycle, lane)`
/// order.
#[derive(Default)]
struct DevBatch {
    heap: BinaryHeap<Reverse<(u64, u32, DevOp)>>,
}

impl DevBatch {
    fn push(&mut self, at: u64, lane: u32, op: DevOp) {
        self.heap.push(Reverse((at, lane, op)));
    }

    fn pop(&mut self) -> Option<(u64, u32, DevOp)> {
        self.heap.pop().map(|Reverse(x)| x)
    }
}

/// Push router for the replay phase: fetches landing inside the current
/// round rejoin the device batch, everything else goes to the event store.
/// Also asserts the conservative bound that justifies deferral — a device
/// op triggered at `trigger` can only schedule *other* lanes at least one
/// TSU service latency later.
struct RoundIo<'a> {
    events: &'a mut Events,
    batch: &'a mut DevBatch,
    round_end: u64,
    /// Minimum cross-lane scheduling latency (`tsu.access + tsu.op`).
    window: u64,
    /// `(cycle, lane)` key of the op being replayed.
    trigger: (u64, u32),
}

impl RoundIo<'_> {
    fn push(&mut self, lane: u32, at: u64, ev: Ev) -> Result<(), SimError> {
        let (t0, l0) = self.trigger;
        if lane != l0 {
            debug_assert!(
                at >= t0 + self.window,
                "cross-lane event at cycle {at} lands inside the conservative \
                 window {t0}+{}: deferring device ops to the round boundary \
                 no longer preserves event order",
                self.window
            );
        }
        if matches!(ev, Ev::Fetch(_)) && at < self.round_end {
            self.batch.push(at, lane, DevOp::Fetch);
            Ok(())
        } else {
            self.events.try_push(lane, at, ev)
        }
    }
}

/// Outcome of executing one chunk.
enum ChunkOut {
    /// More accesses remain; the next chunk event fires at this cycle.
    Continue(u64),
    /// The instance's body finished at this cycle.
    Done(u64),
}

/// Execute one chunk of `s`'s current instance starting at cycle `t`.
/// `access(now, addr, write)` performs one memory access and returns its
/// latency.
fn run_chunk<F: FnMut(u64, u64, bool) -> u64>(
    s: &mut CoreState,
    t: u64,
    access: &mut F,
) -> ChunkOut {
    let mut now = t;
    let total = s.work.accesses.len();
    let end = (s.cursor + CHUNK).min(total);
    for i in s.cursor..end {
        let a = s.work.accesses[i];
        now += access(now, a.addr, a.write);
    }
    s.cursor = end;
    now += s.compute_per_chunk;
    if s.cursor >= total {
        now += s.compute_rem;
        s.compute_rem = 0;
    }
    s.busy += now - t;
    if s.cursor < total {
        ChunkOut::Continue(now)
    } else {
        ChunkOut::Done(now)
    }
}

/// One L2 group's worth of simulation state, packed up and shipped to a
/// worker for the drain phase of a round, then shipped back.
struct DomainRun {
    domain: usize,
    base_core: u32,
    round_end: u64,
    dmem: DomainMem,
    lanes: Vec<Lane<Ev>>,
    states: Vec<CoreState>,
    /// Deferred device ops `(cycle, lane, op)` discovered this round.
    deferred: Vec<(u64, u32, DevOp)>,
    /// Events popped (for the throughput counters).
    popped: u64,
    err: Option<SimError>,
}

impl DomainRun {
    /// Drain this domain's lanes up to `round_end` against the shared
    /// snapshot. Pops follow `(cycle, lane)` order within the domain,
    /// which is exactly the serial engines' order restricted to these
    /// lanes — nothing outside the domain can schedule events inside the
    /// round, so the subsequences compose deterministically.
    fn run(&mut self, shared: &SharedMem) {
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (i, l) in self.lanes.iter().enumerate() {
                if let Some(h) = l.head_at() {
                    if h < self.round_end && best.is_none_or(|(bh, bi)| (h, i) < (bh, bi)) {
                        best = Some((h, i));
                    }
                }
            }
            let Some((_, li)) = best else { break };
            let (t, ev) = self.lanes[li].pop().expect("non-empty head");
            self.popped += 1;
            let c = self.base_core + li as u32;
            match ev {
                Ev::Fetch(fc) => {
                    debug_assert_eq!(fc, c);
                    self.deferred.push((t, c, DevOp::Fetch));
                }
                Ev::Chunk(_) => {
                    let s = &mut self.states[li];
                    let dmem = &mut self.dmem;
                    match run_chunk(s, t, &mut |now, addr, w| {
                        dmem.access(shared, c, now, addr, w).0
                    }) {
                        ChunkOut::Continue(now) => {
                            if let Err(e) = self.lanes[li].try_push(c, now, Ev::Chunk(c)) {
                                self.err = Some(e);
                                return;
                            }
                        }
                        ChunkOut::Done(now) => self.deferred.push((t, c, DevOp::Complete { now })),
                    }
                }
            }
        }
    }
}

/// Take domain `d`'s state out of the flat simulation arrays (lanes and
/// core states are `mem::take`n, the domain memory moves out of its slot).
fn pack_domain(
    d: usize,
    per_group: usize,
    cores: usize,
    round_end: u64,
    dmems: &mut [Option<DomainMem>],
    lanes: &mut [Lane<Ev>],
    states: &mut [CoreState],
) -> DomainRun {
    let base = d * per_group;
    let span = per_group.min(cores - base);
    DomainRun {
        domain: d,
        base_core: base as u32,
        round_end,
        dmem: dmems[d].take().expect("domain already in flight"),
        lanes: lanes[base..base + span]
            .iter_mut()
            .map(std::mem::take)
            .collect(),
        states: states[base..base + span]
            .iter_mut()
            .map(std::mem::take)
            .collect(),
        deferred: Vec::new(),
        popped: 0,
        err: None,
    }
}

/// Scatter a finished [`DomainRun`] back into the flat arrays and fold its
/// deferred device ops into the round batch.
fn unpack_domain(
    task: DomainRun,
    per_group: usize,
    dmems: &mut [Option<DomainMem>],
    lanes: &mut [Lane<Ev>],
    states: &mut [CoreState],
    batch: &mut DevBatch,
    events_done: &mut u64,
) -> Option<SimError> {
    let DomainRun {
        domain,
        dmem,
        lanes: dl,
        states: ds,
        deferred,
        popped,
        err,
        ..
    } = task;
    let base = domain * per_group;
    for (i, lane) in dl.into_iter().enumerate() {
        lanes[base + i] = lane;
    }
    for (i, st) in ds.into_iter().enumerate() {
        states[base + i] = st;
    }
    dmems[domain] = Some(dmem);
    for (at, lane, op) in deferred {
        batch.push(at, lane, op);
    }
    *events_done += popped;
    err
}

impl Machine {
    /// A machine with default (unlimited-capacity) TSU configuration.
    ///
    /// Completion flushing is pinned to [`FlushPolicy::Direct`]: the
    /// paper's hardware TSU posts every completion straight to the SM,
    /// so the simulated figures must not pick up the software runtime's
    /// adaptive funnel batching. Opt in via [`Machine::with_tsu_config`].
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            cfg,
            tsu_cfg: TsuConfig {
                flush: FlushPolicy::Direct,
                ..TsuConfig::default()
            },
            epochs: 1,
            engine: DesEngine::default(),
            host_threads: 1,
        }
    }

    /// Override the TSU state-machine configuration (capacity, policy).
    pub fn with_tsu_config(mut self, tsu_cfg: TsuConfig) -> Self {
        self.tsu_cfg = tsu_cfg;
        self
    }

    /// Select the discrete-event engine (defaults to the global heap).
    pub fn with_engine(mut self, engine: DesEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Drain [`DesEngine::Sharded`] event lanes on `n` host threads
    /// (clamped to ≥ 1; capped at the machine's L2-group count, since the
    /// memory domain is the unit of isolation). The report is bit-identical
    /// for every thread count — parallelism is an implementation detail of
    /// the engine, never part of the model.
    pub fn with_host_threads(mut self, n: u32) -> Self {
        self.host_threads = n.max(1);
        self
    }

    /// Stream the program for `epochs` consecutive passes (clamped to
    /// ≥ 1): contexts re-arm at each pass boundary and cores keep running
    /// without tearing the machine down. The epochs are banked on the
    /// device up front, so a [`TsuConfig::window`] smaller than `epochs`
    /// is a protocol error (the sim has no supervisor to retire credits
    /// mid-run).
    pub fn with_epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Simulate `program` with per-instance costs from `source`.
    ///
    /// # Errors
    /// [`SimError::Protocol`] if the TSU rejects a command (e.g. a block
    /// exceeding the configured capacity), [`SimError::Deadlock`] if the
    /// event queue drains with cores still waiting — both indicate an
    /// invalid program/configuration pair, not a data-dependent condition —
    /// and [`SimError::EventOverflow`] if a lane exceeds its slot store.
    pub fn run(
        &self,
        program: &DdmProgram,
        source: &dyn WorkSource,
    ) -> Result<SimReport, SimError> {
        self.run_inner(program, source, None)
    }

    /// Like [`run`](Self::run), additionally recording a per-instance
    /// execution trace (core, start, end) for Gantt rendering and
    /// schedule analysis.
    pub fn run_traced(
        &self,
        program: &DdmProgram,
        source: &dyn WorkSource,
    ) -> Result<(SimReport, ExecTrace), SimError> {
        let mut trace = ExecTrace::default();
        let report = self.run_inner(program, source, Some(&mut trace))?;
        Ok((report, trace))
    }

    fn run_inner(
        &self,
        program: &DdmProgram,
        source: &dyn WorkSource,
        trace: Option<&mut ExecTrace>,
    ) -> Result<SimReport, SimError> {
        let parallel = self.engine == DesEngine::Sharded
            && self.host_threads > 1
            && self.cfg.l2_groups() > 1
            && self.cfg.cores > 1;
        if parallel {
            self.run_parallel(program, source, trace)
        } else {
            self.run_serial(program, source, trace)
        }
    }

    /// Build the TSU device with every streaming epoch banked up front.
    fn build_dev<'p>(
        &self,
        program: &'p DdmProgram,
        cores: u32,
    ) -> Result<TsuDevice<'p>, SimError> {
        let tsu = CoreTsu::new(program, cores, self.tsu_cfg);
        // cross-TSU-group updates ride the system network
        let cross = if self.cfg.tsu_groups > 1 {
            self.cfg.bus_transfer * 2
        } else {
            0
        };
        let mut dev = TsuDevice::sharded(tsu, self.cfg.tsu, cores, self.cfg.tsu_groups, cross);
        // streaming: bank every pass beyond the first before any core
        // fetches; re-arms then ride the final outlet of each pass
        for _ in 1..self.epochs {
            dev.open_epoch(0)?;
        }
        Ok(dev)
    }

    fn run_serial(
        &self,
        program: &DdmProgram,
        source: &dyn WorkSource,
        mut trace: Option<&mut ExecTrace>,
    ) -> Result<SimReport, SimError> {
        let cores = self.cfg.cores.max(1);
        let mut dev = self.build_dev(program, cores)?;
        let mut mem = MemorySystem::new(self.cfg);
        let mut states: Vec<CoreState> = (0..cores).map(|_| CoreState::default()).collect();
        let mut events = match self.engine {
            DesEngine::Global => Events::Global(EventQueue::new()),
            DesEngine::Sharded => Events::Sharded(ShardedEventQueue::new(cores as usize)),
        };
        let round_len = self.cfg.merge_round_len();
        let window = self.cfg.tsu.access + self.cfg.tsu.op;
        let mut batch = DevBatch::default();
        let mut instances = 0usize;
        let mut parked_buf: Vec<u32> = Vec::with_capacity(cores as usize);
        let mut events_done = 0u64;

        for c in 0..cores {
            events.try_push(c, 0, Ev::Fetch(c))?;
        }

        while let Some(t0) = events.min_time() {
            let round_end = t0.saturating_add(round_len);
            // phase 1: drain chunks, defer device ops
            while let Some((t, ev)) = events.pop_before(round_end) {
                events_done += 1;
                match ev {
                    Ev::Fetch(c) => batch.push(t, c, DevOp::Fetch),
                    Ev::Chunk(c) => {
                        let s = &mut states[c as usize];
                        match run_chunk(s, t, &mut |now, addr, w| mem.access(c, now, addr, w).0) {
                            ChunkOut::Continue(now) => events.try_push(c, now, Ev::Chunk(c))?,
                            ChunkOut::Done(now) => batch.push(t, c, DevOp::Complete { now }),
                        }
                    }
                }
            }
            // phase 2: replay device ops serially
            events_done += self.replay_batch(
                &mut batch,
                round_end,
                window,
                &mut dev,
                source,
                &mut states,
                &mut events,
                &mut instances,
                &mut parked_buf,
                trace.as_deref_mut(),
            )?;
            // phase 3: merge round overlays
            mem.commit_round();
        }

        Self::finish_report(&states, &dev, mem.stats(), instances, events_done)
    }

    fn run_parallel(
        &self,
        program: &DdmProgram,
        source: &dyn WorkSource,
        mut trace: Option<&mut ExecTrace>,
    ) -> Result<SimReport, SimError> {
        let cores = self.cfg.cores.max(1);
        let groups = self.cfg.l2_groups() as usize;
        let per_group = self.cfg.l2_group.max(1) as usize;
        let threads = (self.host_threads as usize).min(groups);
        let mut dev = self.build_dev(program, cores)?;
        let (shared, domains, mut committed) = MemorySystem::new(self.cfg).into_parts();
        let shared = RwLock::new(shared);
        let mut dmems: Vec<Option<DomainMem>> = domains.into_iter().map(Some).collect();
        let mut states: Vec<CoreState> = (0..cores).map(|_| CoreState::default()).collect();
        let mut events = Events::Lanes((0..cores).map(|_| Lane::new()).collect());
        let round_len = self.cfg.merge_round_len();
        let window = self.cfg.tsu.access + self.cfg.tsu.op;
        let mut batch = DevBatch::default();
        let mut instances = 0usize;
        let mut parked_buf: Vec<u32> = Vec::with_capacity(cores as usize);
        let mut events_done = 0u64;

        for c in 0..cores {
            events.try_push(c, 0, Ev::Fetch(c))?;
        }

        let run = thread::scope(|scope| -> Result<(), SimError> {
            // Persistent workers: domain d always lands on worker d % T, a
            // fixed mapping chosen for cache affinity — results never depend
            // on it. Workers exit when the task senders drop.
            let (res_tx, res_rx) = mpsc::channel::<DomainRun>();
            let mut task_txs: Vec<mpsc::Sender<DomainRun>> = Vec::with_capacity(threads);
            for _ in 0..threads {
                let (tx, rx) = mpsc::channel::<DomainRun>();
                task_txs.push(tx);
                let res_tx = res_tx.clone();
                let shared = &shared;
                scope.spawn(move || {
                    while let Ok(mut task) = rx.recv() {
                        {
                            let snap = shared.read().expect("snapshot lock");
                            task.run(&snap);
                        }
                        if res_tx.send(task).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);

            loop {
                let Some(t0) = events.min_time() else { break };
                let round_end = t0.saturating_add(round_len);
                // phase 1: drain each active domain's lanes concurrently
                let mut first_err: Option<SimError> = None;
                {
                    let lanes = events.lanes_mut();
                    let active: Vec<usize> = (0..groups)
                        .filter(|&d| {
                            let base = d * per_group;
                            let span = per_group.min(cores as usize - base);
                            lanes[base..base + span]
                                .iter()
                                .any(|l| l.head_at().is_some_and(|h| h < round_end))
                        })
                        .collect();
                    if let [only] = active[..] {
                        // a lone active domain gains nothing from the pool;
                        // drain it here and skip the channel round-trip
                        let mut task = pack_domain(
                            only,
                            per_group,
                            cores as usize,
                            round_end,
                            &mut dmems,
                            lanes,
                            &mut states,
                        );
                        {
                            let snap = shared.read().expect("snapshot lock");
                            task.run(&snap);
                        }
                        first_err = unpack_domain(
                            task,
                            per_group,
                            &mut dmems,
                            lanes,
                            &mut states,
                            &mut batch,
                            &mut events_done,
                        );
                    } else {
                        for &d in &active {
                            let task = pack_domain(
                                d,
                                per_group,
                                cores as usize,
                                round_end,
                                &mut dmems,
                                lanes,
                                &mut states,
                            );
                            task_txs[d % threads].send(task).expect("worker alive");
                        }
                        for _ in 0..active.len() {
                            let task = res_rx.recv().expect("worker result");
                            let err = unpack_domain(
                                task,
                                per_group,
                                &mut dmems,
                                lanes,
                                &mut states,
                                &mut batch,
                                &mut events_done,
                            );
                            first_err = first_err.or(err);
                        }
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
                // phase 2: replay device ops serially on this thread
                events_done += self.replay_batch(
                    &mut batch,
                    round_end,
                    window,
                    &mut dev,
                    source,
                    &mut states,
                    &mut events,
                    &mut instances,
                    &mut parked_buf,
                    trace.as_deref_mut(),
                )?;
                // phase 3: merge round overlays in domain-index order
                {
                    let mut snap = shared.write().expect("commit lock");
                    let mut refs: Vec<&mut DomainMem> = dmems
                        .iter_mut()
                        .map(|d| d.as_mut().expect("domain home for commit"))
                        .collect();
                    commit_parts(&mut snap, &mut refs, &mut committed);
                }
            }
            Ok(())
        });
        run?;

        Self::finish_report(&states, &dev, committed, instances, events_done)
    }

    /// Replay the round's deferred device operations in `(cycle, lane)`
    /// order. Returns the number of operations replayed.
    #[allow(clippy::too_many_arguments)]
    fn replay_batch(
        &self,
        batch: &mut DevBatch,
        round_end: u64,
        window: u64,
        dev: &mut TsuDevice<'_>,
        source: &dyn WorkSource,
        states: &mut [CoreState],
        events: &mut Events,
        instances: &mut usize,
        parked_buf: &mut Vec<u32>,
        mut trace: Option<&mut ExecTrace>,
    ) -> Result<u64, SimError> {
        let mut done = 0u64;
        while let Some((at, lane, op)) = batch.pop() {
            done += 1;
            let mut io = RoundIo {
                events,
                batch,
                round_end,
                window,
                trigger: (at, lane),
            };
            match op {
                DevOp::Fetch => Self::handle_fetch(lane, at, dev, source, states, &mut io)?,
                DevOp::Complete { now } => {
                    *instances += 1;
                    if let Some(tr) = trace.as_deref_mut() {
                        let st = &states[lane as usize];
                        if let Some((inst, _)) = st.current {
                            tr.record(lane, inst, st.started, now);
                        }
                    }
                    self.handle_completion(lane, now, dev, source, states, &mut io, parked_buf)?;
                }
            }
        }
        Ok(done)
    }

    fn finish_report(
        states: &[CoreState],
        dev: &TsuDevice<'_>,
        mem: crate::memsys::MemStats,
        instances: usize,
        events: u64,
    ) -> Result<SimReport, SimError> {
        let stuck = states.iter().filter(|s| !s.done).count() as u32;
        if stuck > 0 || !dev.finished() {
            return Err(SimError::Deadlock { stuck });
        }
        Ok(SimReport {
            cycles: states.iter().map(|s| s.finish).max().unwrap_or(0),
            core_busy: states.iter().map(|s| s.busy).collect(),
            core_tsu: states.iter().map(|s| s.tsu_time).collect(),
            core_idle: states.iter().map(|s| s.idle).collect(),
            mem,
            tsu: dev.tsu().stats(),
            dev: dev.stats,
            instances,
            events,
        })
    }

    /// Start executing `inst` (fetched under `epoch`) on core `c` at
    /// cycle `start`.
    fn begin_instance(
        c: u32,
        start: u64,
        inst: Instance,
        epoch: Epoch,
        source: &dyn WorkSource,
        states: &mut [CoreState],
        io: &mut RoundIo<'_>,
    ) -> Result<(), SimError> {
        let s = &mut states[c as usize];
        s.current = Some((inst, epoch));
        s.started = start;
        s.work.clear();
        source.work(inst, &mut s.work);
        s.cursor = 0;
        let chunks = s.work.accesses.len().div_ceil(CHUNK).max(1) as u64;
        s.compute_per_chunk = s.work.compute / chunks;
        s.compute_rem = s.work.compute % chunks;
        io.push(c, start, Ev::Chunk(c))
    }

    fn handle_fetch(
        c: u32,
        t: u64,
        dev: &mut TsuDevice<'_>,
        source: &dyn WorkSource,
        states: &mut [CoreState],
        io: &mut RoundIo<'_>,
    ) -> Result<(), SimError> {
        match dev.fetch(c, t)? {
            DevFetch::Thread(inst, ep, at) => {
                let start = at + dev.kernel_overhead();
                states[c as usize].tsu_time += start - t;
                Self::begin_instance(c, start, inst, ep, source, states, io)?;
            }
            DevFetch::Parked => {
                states[c as usize].parked_since = t;
            }
            DevFetch::Exit(at) => {
                let s = &mut states[c as usize];
                s.tsu_time += at - t;
                s.finish = at;
                s.done = true;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_completion(
        &self,
        c: u32,
        now: u64,
        dev: &mut TsuDevice<'_>,
        source: &dyn WorkSource,
        states: &mut [CoreState],
        io: &mut RoundIo<'_>,
        parked_buf: &mut Vec<u32>,
    ) -> Result<(), SimError> {
        let (inst, epoch) = states[c as usize]
            .current
            .take()
            .expect("completion without a current instance");
        let (core_free, ready_at) = dev.complete(c, now, inst, epoch)?;
        let next_fetch = core_free + dev.kernel_overhead();
        states[c as usize].tsu_time += next_fetch - now;
        io.push(c, next_fetch, Ev::Fetch(c))?;

        // Wake parked cores: after post-processing, ready DThreads (or the
        // Exit condition) become visible at `ready_at`.
        if dev.any_parked() {
            let finished = dev.finished();
            let avail = dev.tsu().ready_len();
            if finished || avail > 0 {
                let mut budget = if finished { usize::MAX } else { avail };
                dev.parked_cores_into(parked_buf);
                for &p in parked_buf.iter() {
                    if budget == 0 {
                        break;
                    }
                    let parked_since = states[p as usize].parked_since;
                    match dev.fetch(p, ready_at)? {
                        DevFetch::Thread(pi, pep, at) => {
                            let start = at + dev.kernel_overhead();
                            states[p as usize].idle += ready_at.saturating_sub(parked_since);
                            states[p as usize].tsu_time += start - ready_at;
                            Self::begin_instance(p, start, pi, pep, source, states, io)?;
                            budget = budget.saturating_sub(1);
                        }
                        DevFetch::Parked => {}
                        DevFetch::Exit(at) => {
                            let s = &mut states[p as usize];
                            s.idle += ready_at.saturating_sub(parked_since);
                            s.tsu_time += at - ready_at;
                            s.finish = at;
                            s.done = true;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Simulate the *sequential baseline*: the original program's work
    /// executed instance-by-instance on a single core, with **zero** TSU
    /// and kernel costs — the paper's "original sequential \[program\],
    /// i.e. without any TFlux overheads" (§5).
    pub fn run_sequential(&self, program: &DdmProgram, source: &dyn WorkSource) -> SimReport {
        let mut tsu = CoreTsu::new(program, 1, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let mut mem = MemorySystem::new(self.cfg.with_cores(1));
        let mut now = 0u64;
        let mut work = InstanceWork::default();
        let mut instances = 0usize;
        for inst in order {
            work.clear();
            source.work(inst, &mut work);
            for a in &work.accesses {
                let (lat, _) = mem.access(0, now, a.addr, a.write);
                now += lat;
            }
            now += work.compute;
            instances += 1;
        }
        SimReport {
            cycles: now,
            core_busy: vec![now],
            core_tsu: vec![0],
            core_idle: vec![0],
            mem: mem.stats(),
            tsu: tsu.stats(),
            dev: Default::default(),
            instances,
            events: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TsuCosts;
    use crate::work::{FnWork, StreamWork, UniformWork};
    use tflux_core::prelude::*;

    fn fork_join(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    fn chain(len: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let mut prev = b.thread(blk, ThreadSpec::scalar("t0"));
        for i in 1..len {
            let t = b.thread(blk, ThreadSpec::scalar(format!("t{i}")));
            b.arc(prev, t, ArcMapping::Scalar).unwrap();
            prev = t;
        }
        b.build().unwrap()
    }

    /// Work only on the loop thread (T0); inlet/outlet/sinks are free.
    fn app_work(cycles: u64) -> impl WorkSource {
        FnWork(move |inst: Instance, out: &mut InstanceWork| {
            if inst.thread == ThreadId(0) {
                out.compute = cycles;
            }
        })
    }

    #[test]
    fn embarrassingly_parallel_scales_nearly_linearly() {
        let p = fork_join(64);
        let src = app_work(50_000);
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        let par4 = Machine::new(MachineConfig::bagle(4)).run(&p, &src).unwrap();
        let par8 = Machine::new(MachineConfig::bagle(8)).run(&p, &src).unwrap();
        let s4 = par4.speedup_over(&seq);
        let s8 = par8.speedup_over(&seq);
        assert!(s4 > 3.5 && s4 <= 4.01, "speedup(4)={s4}");
        assert!(s8 > 7.0 && s8 <= 8.01, "speedup(8)={s8}");
    }

    #[test]
    fn serial_chain_gets_no_speedup() {
        let p = chain(32);
        let src = UniformWork { cycles: 10_000 };
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        let par = Machine::new(MachineConfig::bagle(8)).run(&p, &src).unwrap();
        let s = par.speedup_over(&seq);
        assert!(s <= 1.0, "chain cannot speed up, got {s}");
        assert!(
            s > 0.9,
            "overheads should stay small at this grain, got {s}"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = fork_join(32);
        let src = StreamWork {
            bytes_per_instance: 4096,
            stride: 64,
            base: 0x10_0000,
            writes: false,
            cycles_per_access: 3,
        };
        let a = Machine::new(MachineConfig::bagle(8)).run(&p, &src).unwrap();
        let b = Machine::new(MachineConfig::bagle(8)).run(&p, &src).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem.accesses(), b.mem.accesses());
        assert_eq!(a.dev.commands, b.dev.commands);
    }

    #[test]
    fn all_instances_execute() {
        let p = fork_join(20);
        let src = UniformWork { cycles: 100 };
        let r = Machine::new(MachineConfig::bagle(4)).run(&p, &src).unwrap();
        assert_eq!(r.instances, p.total_instances());
        assert_eq!(r.tsu.completions as usize, p.total_instances());
        assert!(r.events > 0, "the event counter must tick");
    }

    #[test]
    fn tsu_op_latency_barely_matters_at_coarse_grain() {
        // §4.1: 1 -> 128 cycles of TSU processing changes performance <1%.
        // The ablation isolates per-command cost, so the explicit Direct
        // knob keeps adaptive funnel batching out of the measurement.
        let p = fork_join(128);
        let src = app_work(200_000);
        let base = MachineConfig::bagle(8);
        let direct = TsuConfig {
            flush: tflux_core::tsu::FlushPolicy::Direct,
            ..TsuConfig::default()
        };
        let fast = Machine::new(base.with_tsu(TsuCosts {
            op: 1,
            ..TsuCosts::hard()
        }))
        .with_tsu_config(direct)
        .run(&p, &src)
        .unwrap();
        let slow = Machine::new(base.with_tsu(TsuCosts {
            op: 128,
            ..TsuCosts::hard()
        }))
        .with_tsu_config(direct)
        .run(&p, &src)
        .unwrap();
        let delta = (slow.cycles as f64 - fast.cycles as f64) / fast.cycles as f64;
        assert!(delta < 0.01, "TSU latency impact {delta} >= 1%");
    }

    #[test]
    fn tsu_op_latency_hurts_at_fine_grain() {
        let p = fork_join(512);
        let src = UniformWork { cycles: 60 }; // DThreads of ~60 cycles
        let base = MachineConfig::bagle(8);
        let fast = Machine::new(base.with_tsu(TsuCosts {
            op: 1,
            ..TsuCosts::hard()
        }))
        .run(&p, &src)
        .unwrap();
        let slow = Machine::new(base.with_tsu(TsuCosts {
            op: 128,
            ..TsuCosts::hard()
        }))
        .run(&p, &src)
        .unwrap();
        let delta = (slow.cycles as f64 - fast.cycles as f64) / fast.cycles as f64;
        assert!(
            delta > 0.10,
            "fine grain must expose TSU latency, got {delta}"
        );
    }

    #[test]
    fn soft_tsu_needs_coarser_grain_than_hard() {
        // the §6.2.2 effect: at fine grain the software TSU hurts much more
        let p = fork_join(256);
        let fine = UniformWork { cycles: 500 };
        let hard = Machine::new(MachineConfig::bagle(4))
            .run(&p, &fine)
            .unwrap();
        let soft = Machine::new(MachineConfig::bagle(4).with_tsu(TsuCosts::soft()))
            .run(&p, &fine)
            .unwrap();
        assert!(
            soft.cycles as f64 > hard.cycles as f64 * 1.5,
            "soft {} vs hard {}",
            soft.cycles,
            hard.cycles
        );
    }

    #[test]
    fn sequential_baseline_has_no_tsu_cost() {
        let p = fork_join(16);
        let src = UniformWork { cycles: 1000 };
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        assert_eq!(seq.cycles, p.total_instances() as u64 * 1000);
        assert_eq!(seq.dev.commands, 0);
    }

    #[test]
    fn idle_time_recorded_for_starved_cores() {
        // 1 long thread then a barrier: other cores park
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let long = b.thread(blk, ThreadSpec::scalar("long"));
        let fan = b.thread(blk, ThreadSpec::new("fan", 8));
        b.arc(long, fan, ArcMapping::Broadcast).unwrap();
        let p = b.build().unwrap();
        let src = FnWork(|inst: Instance, out: &mut InstanceWork| {
            out.compute = if inst.thread == ThreadId(0) {
                100_000
            } else {
                1_000
            };
        });
        let r = Machine::new(MachineConfig::bagle(4)).run(&p, &src).unwrap();
        let total_idle: u64 = r.core_idle.iter().sum();
        assert!(total_idle > 100_000, "idle {total_idle}");
        assert!(r.utilization() < 0.7);
    }

    #[test]
    fn trace_covers_every_instance_without_overlap() {
        let p = fork_join(32);
        let src = UniformWork { cycles: 777 };
        let m = Machine::new(MachineConfig::bagle(4));
        let (report, trace) = m.run_traced(&p, &src).unwrap();
        assert_eq!(trace.len(), p.total_instances());
        assert_eq!(report.instances, trace.len());
        assert!(trace.find_overlap().is_none(), "{:?}", trace.find_overlap());
        assert!(trace.end_cycle() <= report.cycles);
        // busy accounting agrees with the report
        assert_eq!(trace.core_busy(4), report.core_busy);
        // gantt renders
        let g = trace.gantt(&p, 4, 60);
        assert!(g.contains("core  0"));
    }

    #[test]
    fn traced_and_untraced_runs_are_identical() {
        let p = fork_join(16);
        let src = UniformWork { cycles: 1000 };
        let m = Machine::new(MachineConfig::bagle(3));
        let plain = m.run(&p, &src).unwrap();
        let (traced, _) = m.run_traced(&p, &src).unwrap();
        assert_eq!(plain.cycles, traced.cycles);
    }

    #[test]
    fn multi_block_program_completes() {
        let mut b = ProgramBuilder::new();
        for _ in 0..4 {
            let blk = b.block();
            b.thread(blk, ThreadSpec::new("w", 16));
        }
        let p = b.build().unwrap();
        let r = Machine::new(MachineConfig::bagle(4))
            .run(&p, &UniformWork { cycles: 500 })
            .unwrap();
        assert_eq!(r.instances, p.total_instances());
        assert_eq!(r.tsu.blocks_loaded, 4);
    }

    #[test]
    fn streamed_epochs_replay_the_program_deterministically() {
        let p = fork_join(16);
        let src = UniformWork { cycles: 800 };
        let m = Machine::new(MachineConfig::bagle(4)).with_epochs(3);
        let a = m.run(&p, &src).unwrap();
        assert_eq!(a.instances, 3 * p.total_instances());
        assert_eq!(a.tsu.completions as usize, 3 * p.total_instances());
        assert_eq!(a.tsu.epochs, 3);
        // wraparound keeps the sim deterministic
        let b = m.run(&p, &src).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dev.commands, b.dev.commands);
        // three passes cost roughly three one-shot runs, never less
        let one = Machine::new(MachineConfig::bagle(4)).run(&p, &src).unwrap();
        assert!(
            a.cycles > 2 * one.cycles,
            "{} !> 2*{}",
            a.cycles,
            one.cycles
        );
    }

    #[test]
    fn sharded_engine_matches_global_engine_cycle_for_cycle() {
        let p = fork_join(48);
        let src = StreamWork {
            bytes_per_instance: 4096,
            stride: 64,
            base: 0x10_0000,
            writes: true,
            cycles_per_access: 3,
        };
        for cfg in [
            MachineConfig::bagle(8),
            MachineConfig::xeon_x3650(6),
            MachineConfig::sparc_t3_4(32).unwrap(),
        ] {
            let global = Machine::new(cfg).run(&p, &src).unwrap();
            let sharded = Machine::new(cfg)
                .with_engine(DesEngine::Sharded)
                .run(&p, &src)
                .unwrap();
            assert_eq!(global.cycles, sharded.cycles, "cfg {cfg:?}");
            assert_eq!(global.core_busy, sharded.core_busy);
            assert_eq!(global.core_idle, sharded.core_idle);
            assert_eq!(global.mem.accesses(), sharded.mem.accesses());
            assert_eq!(global.mem.bus_wait, sharded.mem.bus_wait);
            assert_eq!(global.dev.commands, sharded.dev.commands);
            assert_eq!(global.instances, sharded.instances);
            assert_eq!(global.events, sharded.events);
        }
    }

    #[test]
    fn parallel_host_threads_match_serial_engines_field_for_field() {
        let p = fork_join(96);
        let src = StreamWork {
            bytes_per_instance: 8192,
            stride: 64,
            base: 0x20_0000,
            writes: true,
            cycles_per_access: 4,
        };
        for cfg in [
            MachineConfig::bagle(8),
            MachineConfig::xeon_x3650(6),
            MachineConfig::sparc_t3_4(32).unwrap(),
        ] {
            let global = Machine::new(cfg).run(&p, &src).unwrap();
            for threads in [1, 2, 4] {
                let par = Machine::new(cfg)
                    .with_engine(DesEngine::Sharded)
                    .with_host_threads(threads)
                    .run(&p, &src)
                    .unwrap();
                assert_eq!(
                    format!("{global:?}"),
                    format!("{par:?}"),
                    "cfg {cfg:?} at {threads} host threads"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_handles_streaming_epochs() {
        let p = fork_join(24);
        let src = StreamWork {
            bytes_per_instance: 2048,
            stride: 64,
            base: 0x30_0000,
            writes: true,
            cycles_per_access: 2,
        };
        let m = Machine::new(MachineConfig::bagle(8)).with_epochs(3);
        let global = m.run(&p, &src).unwrap();
        let par = m
            .with_engine(DesEngine::Sharded)
            .with_host_threads(4)
            .run(&p, &src)
            .unwrap();
        assert_eq!(format!("{global:?}"), format!("{par:?}"));
        assert_eq!(par.tsu.epochs, 3);
    }

    #[test]
    fn merge_round_is_a_model_parameter_not_an_engine_knob() {
        // different round lengths quantize coherence visibility differently
        // (a model change), but for a fixed round length every engine and
        // host-thread count must agree exactly
        let p = fork_join(32);
        let src = StreamWork {
            bytes_per_instance: 4096,
            stride: 64,
            base: 0,
            writes: true,
            cycles_per_access: 3,
        };
        for r in [64, 1024] {
            let cfg = MachineConfig::bagle(8).with_merge_round(r);
            let global = Machine::new(cfg).run(&p, &src).unwrap();
            let par = Machine::new(cfg)
                .with_engine(DesEngine::Sharded)
                .with_host_threads(4)
                .run(&p, &src)
                .unwrap();
            assert_eq!(format!("{global:?}"), format!("{par:?}"), "round {r}");
        }
    }

    #[test]
    fn protocol_errors_surface_as_sim_errors() {
        // banking more epochs than the TSU credit window is a protocol
        // error, reported as a typed SimError rather than a panic
        let p = fork_join(8);
        let src = UniformWork { cycles: 100 };
        let r = Machine::new(MachineConfig::bagle(4))
            .with_tsu_config(TsuConfig {
                window: 1,
                ..TsuConfig::default()
            })
            .with_epochs(3)
            .run(&p, &src);
        assert!(
            matches!(r, Err(SimError::Protocol(_))),
            "expected a protocol error, got {r:?}"
        );
    }

    #[test]
    fn t3_4_64_cores_scale_and_pay_numa_costs() {
        let p = fork_join(256);
        let src = StreamWork {
            bytes_per_instance: 8192,
            stride: 64,
            base: 0x40_0000,
            writes: false,
            cycles_per_access: 8,
        };
        let cfg64 = MachineConfig::sparc_t3_4(64).unwrap();
        let seq = Machine::new(cfg64).run_sequential(&p, &src);
        let par = Machine::new(cfg64)
            .with_engine(DesEngine::Sharded)
            .run(&p, &src)
            .unwrap();
        let s = par.speedup_over(&seq);
        assert!(s > 16.0, "64-core run should scale well past 16x, got {s}");
        assert!(s <= 64.5, "speedup cannot exceed core count, got {s}");
        assert!(
            par.mem.remote_node > 0,
            "a 4-node run must cross node boundaries"
        );
    }

    #[test]
    fn shared_write_traffic_limits_scaling() {
        // all instances hammer the same lines: coherence should throttle
        let p = fork_join(64);
        let shared = StreamWork {
            bytes_per_instance: 0, // overwritten below
            stride: 64,
            base: 0,
            writes: true,
            cycles_per_access: 1,
        };
        // every instance writes the same 64 lines
        let src = FnWork(move |inst: Instance, out: &mut InstanceWork| {
            let _ = inst;
            let _ = shared;
            for i in 0..64u64 {
                out.accesses.push(crate::work::MemAccess::write(i * 64));
            }
            out.compute = 64;
        });
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        let par = Machine::new(MachineConfig::bagle(8)).run(&p, &src).unwrap();
        let s = par.speedup_over(&seq);
        assert!(s < 4.0, "pure coherence traffic cannot scale: {s}");
        assert!(par.mem.remote_hits > 0);
        assert!(par.mem.invalidations > 0);
    }
}
