//! The simulated machine: cores running the Fig. 2 kernel loop against the
//! TSU device and the memory hierarchy, driven by a deterministic
//! discrete-event loop.
//!
//! Cores execute DThread instances as chunks of memory accesses interleaved
//! with compute cycles; every chunk boundary is an event, which keeps cores
//! loosely synchronized so bus arbitration and coherence see a realistic
//! interleaving without paying for an event per access.

use crate::config::MachineConfig;
use crate::event::{EventQueue, ShardedEventQueue};
use crate::memsys::MemorySystem;
use crate::report::SimReport;
use crate::trace::ExecTrace;
use crate::tsu_dev::{DevFetch, TsuDevice};
use crate::work::{InstanceWork, WorkSource};
use tflux_core::ids::{Epoch, Instance};
use tflux_core::program::DdmProgram;
use tflux_core::tsu::{drain_sequential, CoreTsu, FlushPolicy, TsuConfig};

/// Accesses per scheduling quantum. Chunking trades event-queue overhead
/// against interleaving fidelity; 64 accesses ≈ a few hundred cycles, well
/// under typical DThread lengths.
const CHUNK: usize = 64;

/// Which discrete-event engine drives the cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DesEngine {
    /// One global binary heap over all events — the original engine and
    /// the equivalence oracle.
    #[default]
    Global,
    /// Per-core event lanes advanced under conservative time windows whose
    /// length is the minimum cross-core scheduling latency
    /// (`tsu.access + tsu.op`). Within a window each lane's events depend
    /// only on that lane (cross-lane influence always lands in a later
    /// window — asserted at every push), which is what licenses advancing
    /// lanes independently; events are still *applied* in global
    /// `(cycle, sequence)` order because the model's shared state
    /// (directory, bus, TSU shards) mutates in place, so this engine is
    /// cycle-for-cycle identical to [`DesEngine::Global`].
    Sharded,
}

/// A simulated TFlux machine.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    cfg: MachineConfig,
    tsu_cfg: TsuConfig,
    /// Streaming passes over the program graph (1 = one-shot).
    epochs: u64,
    engine: DesEngine,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The core asks the TSU for its next DThread.
    Fetch(u32),
    /// The core executes its next chunk of the current instance.
    Chunk(u32),
}

struct CoreState {
    current: Option<(Instance, Epoch)>,
    /// Cycle the current instance's body started (for tracing).
    started: u64,
    work: InstanceWork,
    cursor: usize,
    compute_per_chunk: u64,
    compute_rem: u64,
    parked_since: u64,
    busy: u64,
    tsu_time: u64,
    idle: u64,
    finish: u64,
    done: bool,
}

/// The event store behind one simulation run: either the single global
/// heap or the sharded, conservatively-windowed queue.
enum Events {
    Global(EventQueue<Ev>),
    Sharded {
        q: ShardedEventQueue<Ev>,
        /// Conservative window length: the minimum latency by which one
        /// core's activity can schedule an event on *another* core
        /// (`tsu.access + tsu.op` — a completion must cross the MMI and be
        /// processed by the unit before any sibling can observe it).
        window: u64,
        /// Exclusive end of the window currently being drained.
        window_end: u64,
        /// Lane of the event currently being handled.
        current: Option<u32>,
    },
}

impl Events {
    fn push(&mut self, lane: u32, at: u64, ev: Ev) {
        match self {
            Events::Global(q) => q.push(at, ev),
            Events::Sharded {
                q,
                window_end,
                current,
                ..
            } => {
                // the conservative bound that makes windows independent:
                // cross-lane events must land in a later window
                let same_lane = matches!(current, Some(c) if *c == lane);
                assert!(
                    current.is_none() || same_lane || at >= *window_end,
                    "cross-lane event at cycle {at} lands inside the conservative \
                     window ending at {window_end}: the window bound no longer \
                     covers the minimum cross-core scheduling latency"
                );
                q.push(lane as usize, at, ev);
            }
        }
    }

    fn pop(&mut self) -> Option<(u64, Ev)> {
        match self {
            Events::Global(q) => q.pop(),
            Events::Sharded {
                q,
                window,
                window_end,
                current,
            } => {
                let (at, lane, ev) = q.pop()?;
                if at >= *window_end {
                    // the previous window drained dry: open the next one at
                    // the earliest pending event
                    *window_end = at + *window;
                }
                *current = Some(lane as u32);
                Some((at, ev))
            }
        }
    }
}

impl CoreState {
    fn new() -> Self {
        CoreState {
            current: None,
            started: 0,
            work: InstanceWork::default(),
            cursor: 0,
            compute_per_chunk: 0,
            compute_rem: 0,
            parked_since: 0,
            busy: 0,
            tsu_time: 0,
            idle: 0,
            finish: 0,
            done: false,
        }
    }
}

impl Machine {
    /// A machine with default (unlimited-capacity) TSU configuration.
    ///
    /// Completion flushing is pinned to [`FlushPolicy::Direct`]: the
    /// paper's hardware TSU posts every completion straight to the SM,
    /// so the simulated figures must not pick up the software runtime's
    /// adaptive funnel batching. Opt in via [`Machine::with_tsu_config`].
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            cfg,
            tsu_cfg: TsuConfig {
                flush: FlushPolicy::Direct,
                ..TsuConfig::default()
            },
            epochs: 1,
            engine: DesEngine::default(),
        }
    }

    /// Override the TSU state-machine configuration (capacity, policy).
    pub fn with_tsu_config(mut self, tsu_cfg: TsuConfig) -> Self {
        self.tsu_cfg = tsu_cfg;
        self
    }

    /// Select the discrete-event engine (defaults to the global heap).
    pub fn with_engine(mut self, engine: DesEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Stream the program for `epochs` consecutive passes (clamped to
    /// ≥ 1): contexts re-arm at each pass boundary and cores keep running
    /// without tearing the machine down. The epochs are banked on the
    /// device up front, so a [`TsuConfig::window`] smaller than `epochs`
    /// is a protocol error (the sim has no supervisor to retire credits
    /// mid-run).
    pub fn with_epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Simulate `program` with per-instance costs from `source`.
    ///
    /// # Panics
    /// On TSU protocol errors (e.g. a block exceeding the configured TSU
    /// capacity) or if the simulation deadlocks — both indicate an invalid
    /// program/configuration pair, not a data-dependent condition.
    pub fn run(&self, program: &DdmProgram, source: &dyn WorkSource) -> SimReport {
        self.run_inner(program, source, None)
    }

    /// Like [`run`](Self::run), additionally recording a per-instance
    /// execution trace (core, start, end) for Gantt rendering and
    /// schedule analysis.
    pub fn run_traced(
        &self,
        program: &DdmProgram,
        source: &dyn WorkSource,
    ) -> (SimReport, ExecTrace) {
        let mut trace = ExecTrace::default();
        let report = self.run_inner(program, source, Some(&mut trace));
        (report, trace)
    }

    fn run_inner(
        &self,
        program: &DdmProgram,
        source: &dyn WorkSource,
        mut trace: Option<&mut ExecTrace>,
    ) -> SimReport {
        let cores = self.cfg.cores.max(1);
        let tsu = CoreTsu::new(program, cores, self.tsu_cfg);
        // cross-TSU-group updates ride the system network
        let cross = if self.cfg.tsu_groups > 1 {
            self.cfg.bus_transfer * 2
        } else {
            0
        };
        let mut dev = TsuDevice::sharded(tsu, self.cfg.tsu, cores, self.cfg.tsu_groups, cross);
        // streaming: bank every pass beyond the first before any core
        // fetches; re-arms then ride the final outlet of each pass
        for _ in 1..self.epochs {
            dev.open_epoch(0)
                .unwrap_or_else(|e| panic!("TSU protocol error: {e}"));
        }
        let mut mem = MemorySystem::new(self.cfg);
        let mut states: Vec<CoreState> = (0..cores).map(|_| CoreState::new()).collect();
        let mut events = match self.engine {
            DesEngine::Global => Events::Global(EventQueue::new()),
            DesEngine::Sharded => Events::Sharded {
                q: ShardedEventQueue::new(cores as usize),
                window: self.cfg.tsu.access + self.cfg.tsu.op,
                window_end: 0,
                current: None,
            },
        };
        let mut instances = 0usize;
        let mut parked_buf: Vec<u32> = Vec::with_capacity(cores as usize);

        for c in 0..cores {
            events.push(c, 0, Ev::Fetch(c));
        }

        while let Some((t, ev)) = events.pop() {
            match ev {
                Ev::Fetch(c) => {
                    Self::handle_fetch(c, t, &mut dev, source, &mut states, &mut events)
                }
                Ev::Chunk(c) => {
                    let finished_at = {
                        let s = &mut states[c as usize];
                        let mut now = t;
                        let total = s.work.accesses.len();
                        let end = (s.cursor + CHUNK).min(total);
                        for i in s.cursor..end {
                            let a = s.work.accesses[i];
                            let (lat, _) = mem.access(c, now, a.addr, a.write);
                            now += lat;
                        }
                        s.cursor = end;
                        now += s.compute_per_chunk;
                        if s.cursor >= total {
                            now += s.compute_rem;
                            s.compute_rem = 0;
                        }
                        s.busy += now - t;
                        if s.cursor < total {
                            events.push(c, now, Ev::Chunk(c));
                            None
                        } else {
                            Some(now)
                        }
                    };
                    if let Some(now) = finished_at {
                        instances += 1;
                        if let Some(tr) = trace.as_deref_mut() {
                            let st = &states[c as usize];
                            if let Some((inst, _)) = st.current {
                                tr.record(c, inst, st.started, now);
                            }
                        }
                        self.handle_completion(
                            c,
                            now,
                            &mut dev,
                            source,
                            &mut states,
                            &mut events,
                            &mut parked_buf,
                        );
                    }
                }
            }
        }

        let all_done = states.iter().all(|s| s.done);
        assert!(
            all_done && dev.finished(),
            "simulation deadlocked: {} cores stuck, finished={}",
            states.iter().filter(|s| !s.done).count(),
            dev.finished()
        );

        SimReport {
            cycles: states.iter().map(|s| s.finish).max().unwrap_or(0),
            core_busy: states.iter().map(|s| s.busy).collect(),
            core_tsu: states.iter().map(|s| s.tsu_time).collect(),
            core_idle: states.iter().map(|s| s.idle).collect(),
            mem: mem.stats,
            tsu: dev.tsu().stats(),
            dev: dev.stats,
            instances,
        }
    }

    /// Start executing `inst` (fetched under `epoch`) on core `c` at
    /// cycle `start`.
    fn begin_instance(
        c: u32,
        start: u64,
        inst: Instance,
        epoch: Epoch,
        source: &dyn WorkSource,
        states: &mut [CoreState],
        events: &mut Events,
    ) {
        let s = &mut states[c as usize];
        s.current = Some((inst, epoch));
        s.started = start;
        s.work.clear();
        source.work(inst, &mut s.work);
        s.cursor = 0;
        let chunks = s.work.accesses.len().div_ceil(CHUNK).max(1) as u64;
        s.compute_per_chunk = s.work.compute / chunks;
        s.compute_rem = s.work.compute % chunks;
        events.push(c, start, Ev::Chunk(c));
    }

    fn handle_fetch(
        c: u32,
        t: u64,
        dev: &mut TsuDevice<'_>,
        source: &dyn WorkSource,
        states: &mut [CoreState],
        events: &mut Events,
    ) {
        match dev
            .fetch(c, t)
            .unwrap_or_else(|e| panic!("TSU protocol error: {e}"))
        {
            DevFetch::Thread(inst, ep, at) => {
                let start = at + dev.kernel_overhead();
                states[c as usize].tsu_time += start - t;
                Self::begin_instance(c, start, inst, ep, source, states, events);
            }
            DevFetch::Parked => {
                states[c as usize].parked_since = t;
            }
            DevFetch::Exit(at) => {
                let s = &mut states[c as usize];
                s.tsu_time += at - t;
                s.finish = at;
                s.done = true;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_completion(
        &self,
        c: u32,
        now: u64,
        dev: &mut TsuDevice<'_>,
        source: &dyn WorkSource,
        states: &mut [CoreState],
        events: &mut Events,
        parked_buf: &mut Vec<u32>,
    ) {
        let (inst, epoch) = states[c as usize]
            .current
            .take()
            .expect("completion without a current instance");
        let (core_free, ready_at) = dev
            .complete(c, now, inst, epoch)
            .unwrap_or_else(|e| panic!("TSU protocol error: {e}"));
        let next_fetch = core_free + dev.kernel_overhead();
        states[c as usize].tsu_time += next_fetch - now;
        events.push(c, next_fetch, Ev::Fetch(c));

        // Wake parked cores: after post-processing, ready DThreads (or the
        // Exit condition) become visible at `ready_at`.
        if dev.any_parked() {
            let finished = dev.finished();
            let avail = dev.tsu().ready_len();
            if finished || avail > 0 {
                let mut budget = if finished { usize::MAX } else { avail };
                dev.parked_cores_into(parked_buf);
                for &p in parked_buf.iter() {
                    if budget == 0 {
                        break;
                    }
                    let parked_since = states[p as usize].parked_since;
                    match dev
                        .fetch(p, ready_at)
                        .unwrap_or_else(|e| panic!("TSU protocol error: {e}"))
                    {
                        DevFetch::Thread(pi, pep, at) => {
                            let start = at + dev.kernel_overhead();
                            states[p as usize].idle += ready_at.saturating_sub(parked_since);
                            states[p as usize].tsu_time += start - ready_at;
                            Self::begin_instance(p, start, pi, pep, source, states, events);
                            budget = budget.saturating_sub(1);
                        }
                        DevFetch::Parked => {}
                        DevFetch::Exit(at) => {
                            let s = &mut states[p as usize];
                            s.idle += ready_at.saturating_sub(parked_since);
                            s.tsu_time += at - ready_at;
                            s.finish = at;
                            s.done = true;
                        }
                    }
                }
            }
        }
    }

    /// Simulate the *sequential baseline*: the original program's work
    /// executed instance-by-instance on a single core, with **zero** TSU
    /// and kernel costs — the paper's "original sequential \[program\],
    /// i.e. without any TFlux overheads" (§5).
    pub fn run_sequential(&self, program: &DdmProgram, source: &dyn WorkSource) -> SimReport {
        let mut tsu = CoreTsu::new(program, 1, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let mut mem = MemorySystem::new(self.cfg.with_cores(1));
        let mut now = 0u64;
        let mut work = InstanceWork::default();
        let mut instances = 0usize;
        for inst in order {
            work.clear();
            source.work(inst, &mut work);
            for a in &work.accesses {
                let (lat, _) = mem.access(0, now, a.addr, a.write);
                now += lat;
            }
            now += work.compute;
            instances += 1;
        }
        SimReport {
            cycles: now,
            core_busy: vec![now],
            core_tsu: vec![0],
            core_idle: vec![0],
            mem: mem.stats,
            tsu: tsu.stats(),
            dev: Default::default(),
            instances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TsuCosts;
    use crate::work::{FnWork, StreamWork, UniformWork};
    use tflux_core::prelude::*;

    fn fork_join(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    fn chain(len: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let mut prev = b.thread(blk, ThreadSpec::scalar("t0"));
        for i in 1..len {
            let t = b.thread(blk, ThreadSpec::scalar(format!("t{i}")));
            b.arc(prev, t, ArcMapping::Scalar).unwrap();
            prev = t;
        }
        b.build().unwrap()
    }

    /// Work only on the loop thread (T0); inlet/outlet/sinks are free.
    fn app_work(cycles: u64) -> impl WorkSource {
        FnWork(move |inst: Instance, out: &mut InstanceWork| {
            if inst.thread == ThreadId(0) {
                out.compute = cycles;
            }
        })
    }

    #[test]
    fn embarrassingly_parallel_scales_nearly_linearly() {
        let p = fork_join(64);
        let src = app_work(50_000);
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        let par4 = Machine::new(MachineConfig::bagle(4)).run(&p, &src);
        let par8 = Machine::new(MachineConfig::bagle(8)).run(&p, &src);
        let s4 = par4.speedup_over(&seq);
        let s8 = par8.speedup_over(&seq);
        assert!(s4 > 3.5 && s4 <= 4.01, "speedup(4)={s4}");
        assert!(s8 > 7.0 && s8 <= 8.01, "speedup(8)={s8}");
    }

    #[test]
    fn serial_chain_gets_no_speedup() {
        let p = chain(32);
        let src = UniformWork { cycles: 10_000 };
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        let par = Machine::new(MachineConfig::bagle(8)).run(&p, &src);
        let s = par.speedup_over(&seq);
        assert!(s <= 1.0, "chain cannot speed up, got {s}");
        assert!(
            s > 0.9,
            "overheads should stay small at this grain, got {s}"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = fork_join(32);
        let src = StreamWork {
            bytes_per_instance: 4096,
            stride: 64,
            base: 0x10_0000,
            writes: false,
            cycles_per_access: 3,
        };
        let a = Machine::new(MachineConfig::bagle(8)).run(&p, &src);
        let b = Machine::new(MachineConfig::bagle(8)).run(&p, &src);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.mem.accesses(), b.mem.accesses());
        assert_eq!(a.dev.commands, b.dev.commands);
    }

    #[test]
    fn all_instances_execute() {
        let p = fork_join(20);
        let src = UniformWork { cycles: 100 };
        let r = Machine::new(MachineConfig::bagle(4)).run(&p, &src);
        assert_eq!(r.instances, p.total_instances());
        assert_eq!(r.tsu.completions as usize, p.total_instances());
    }

    #[test]
    fn tsu_op_latency_barely_matters_at_coarse_grain() {
        // §4.1: 1 -> 128 cycles of TSU processing changes performance <1%.
        // The ablation isolates per-command cost, so the explicit Direct
        // knob keeps adaptive funnel batching out of the measurement.
        let p = fork_join(128);
        let src = app_work(200_000);
        let base = MachineConfig::bagle(8);
        let direct = TsuConfig {
            flush: tflux_core::tsu::FlushPolicy::Direct,
            ..TsuConfig::default()
        };
        let fast = Machine::new(base.with_tsu(TsuCosts {
            op: 1,
            ..TsuCosts::hard()
        }))
        .with_tsu_config(direct)
        .run(&p, &src);
        let slow = Machine::new(base.with_tsu(TsuCosts {
            op: 128,
            ..TsuCosts::hard()
        }))
        .with_tsu_config(direct)
        .run(&p, &src);
        let delta = (slow.cycles as f64 - fast.cycles as f64) / fast.cycles as f64;
        assert!(delta < 0.01, "TSU latency impact {delta} >= 1%");
    }

    #[test]
    fn tsu_op_latency_hurts_at_fine_grain() {
        let p = fork_join(512);
        let src = UniformWork { cycles: 60 }; // DThreads of ~60 cycles
        let base = MachineConfig::bagle(8);
        let fast = Machine::new(base.with_tsu(TsuCosts {
            op: 1,
            ..TsuCosts::hard()
        }))
        .run(&p, &src);
        let slow = Machine::new(base.with_tsu(TsuCosts {
            op: 128,
            ..TsuCosts::hard()
        }))
        .run(&p, &src);
        let delta = (slow.cycles as f64 - fast.cycles as f64) / fast.cycles as f64;
        assert!(
            delta > 0.10,
            "fine grain must expose TSU latency, got {delta}"
        );
    }

    #[test]
    fn soft_tsu_needs_coarser_grain_than_hard() {
        // the §6.2.2 effect: at fine grain the software TSU hurts much more
        let p = fork_join(256);
        let fine = UniformWork { cycles: 500 };
        let hard = Machine::new(MachineConfig::bagle(4)).run(&p, &fine);
        let soft = Machine::new(MachineConfig::bagle(4).with_tsu(TsuCosts::soft())).run(&p, &fine);
        assert!(
            soft.cycles as f64 > hard.cycles as f64 * 1.5,
            "soft {} vs hard {}",
            soft.cycles,
            hard.cycles
        );
    }

    #[test]
    fn sequential_baseline_has_no_tsu_cost() {
        let p = fork_join(16);
        let src = UniformWork { cycles: 1000 };
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        assert_eq!(seq.cycles, p.total_instances() as u64 * 1000);
        assert_eq!(seq.dev.commands, 0);
    }

    #[test]
    fn idle_time_recorded_for_starved_cores() {
        // 1 long thread then a barrier: other cores park
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let long = b.thread(blk, ThreadSpec::scalar("long"));
        let fan = b.thread(blk, ThreadSpec::new("fan", 8));
        b.arc(long, fan, ArcMapping::Broadcast).unwrap();
        let p = b.build().unwrap();
        let src = FnWork(|inst: Instance, out: &mut InstanceWork| {
            out.compute = if inst.thread == ThreadId(0) {
                100_000
            } else {
                1_000
            };
        });
        let r = Machine::new(MachineConfig::bagle(4)).run(&p, &src);
        let total_idle: u64 = r.core_idle.iter().sum();
        assert!(total_idle > 100_000, "idle {total_idle}");
        assert!(r.utilization() < 0.7);
    }

    #[test]
    fn trace_covers_every_instance_without_overlap() {
        let p = fork_join(32);
        let src = UniformWork { cycles: 777 };
        let m = Machine::new(MachineConfig::bagle(4));
        let (report, trace) = m.run_traced(&p, &src);
        assert_eq!(trace.len(), p.total_instances());
        assert_eq!(report.instances, trace.len());
        assert!(trace.find_overlap().is_none(), "{:?}", trace.find_overlap());
        assert!(trace.end_cycle() <= report.cycles);
        // busy accounting agrees with the report
        assert_eq!(trace.core_busy(4), report.core_busy);
        // gantt renders
        let g = trace.gantt(&p, 4, 60);
        assert!(g.contains("core  0"));
    }

    #[test]
    fn traced_and_untraced_runs_are_identical() {
        let p = fork_join(16);
        let src = UniformWork { cycles: 1000 };
        let m = Machine::new(MachineConfig::bagle(3));
        let plain = m.run(&p, &src);
        let (traced, _) = m.run_traced(&p, &src);
        assert_eq!(plain.cycles, traced.cycles);
    }

    #[test]
    fn multi_block_program_completes() {
        let mut b = ProgramBuilder::new();
        for _ in 0..4 {
            let blk = b.block();
            b.thread(blk, ThreadSpec::new("w", 16));
        }
        let p = b.build().unwrap();
        let r = Machine::new(MachineConfig::bagle(4)).run(&p, &UniformWork { cycles: 500 });
        assert_eq!(r.instances, p.total_instances());
        assert_eq!(r.tsu.blocks_loaded, 4);
    }

    #[test]
    fn streamed_epochs_replay_the_program_deterministically() {
        let p = fork_join(16);
        let src = UniformWork { cycles: 800 };
        let m = Machine::new(MachineConfig::bagle(4)).with_epochs(3);
        let a = m.run(&p, &src);
        assert_eq!(a.instances, 3 * p.total_instances());
        assert_eq!(a.tsu.completions as usize, 3 * p.total_instances());
        assert_eq!(a.tsu.epochs, 3);
        // wraparound keeps the sim deterministic
        let b = m.run(&p, &src);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dev.commands, b.dev.commands);
        // three passes cost roughly three one-shot runs, never less
        let one = Machine::new(MachineConfig::bagle(4)).run(&p, &src);
        assert!(
            a.cycles > 2 * one.cycles,
            "{} !> 2*{}",
            a.cycles,
            one.cycles
        );
    }

    #[test]
    fn sharded_engine_matches_global_engine_cycle_for_cycle() {
        let p = fork_join(48);
        let src = StreamWork {
            bytes_per_instance: 4096,
            stride: 64,
            base: 0x10_0000,
            writes: true,
            cycles_per_access: 3,
        };
        for cfg in [
            MachineConfig::bagle(8),
            MachineConfig::xeon_x3650(6),
            MachineConfig::sparc_t3_4(32).unwrap(),
        ] {
            let global = Machine::new(cfg).run(&p, &src);
            let sharded = Machine::new(cfg)
                .with_engine(DesEngine::Sharded)
                .run(&p, &src);
            assert_eq!(global.cycles, sharded.cycles, "cfg {cfg:?}");
            assert_eq!(global.core_busy, sharded.core_busy);
            assert_eq!(global.core_idle, sharded.core_idle);
            assert_eq!(global.mem.accesses(), sharded.mem.accesses());
            assert_eq!(global.mem.bus_wait, sharded.mem.bus_wait);
            assert_eq!(global.dev.commands, sharded.dev.commands);
            assert_eq!(global.instances, sharded.instances);
        }
    }

    #[test]
    fn sharded_engine_matches_global_under_streaming_epochs() {
        // the funnel/flush paths produce same-cycle wakeups; the windowed
        // engine must reproduce them exactly
        let p = fork_join(16);
        let src = UniformWork { cycles: 800 };
        let m = Machine::new(MachineConfig::bagle(4)).with_epochs(3);
        let global = m.run(&p, &src);
        let sharded = m.with_engine(DesEngine::Sharded).run(&p, &src);
        assert_eq!(global.cycles, sharded.cycles);
        assert_eq!(global.dev.commands, sharded.dev.commands);
        assert_eq!(sharded.tsu.epochs, 3);
    }

    #[test]
    fn t3_4_64_cores_scale_and_pay_numa_costs() {
        let p = fork_join(256);
        let src = StreamWork {
            bytes_per_instance: 8192,
            stride: 64,
            base: 0x40_0000,
            writes: false,
            cycles_per_access: 8,
        };
        let cfg64 = MachineConfig::sparc_t3_4(64).unwrap();
        let seq = Machine::new(cfg64).run_sequential(&p, &src);
        let par = Machine::new(cfg64)
            .with_engine(DesEngine::Sharded)
            .run(&p, &src);
        let s = par.speedup_over(&seq);
        assert!(s > 16.0, "64-core run should scale well past 16x, got {s}");
        assert!(s <= 64.5, "speedup cannot exceed core count, got {s}");
        assert!(
            par.mem.remote_node > 0,
            "a 4-node run must cross node boundaries"
        );
    }

    #[test]
    fn shared_write_traffic_limits_scaling() {
        // all instances hammer the same lines: coherence should throttle
        let p = fork_join(64);
        let shared = StreamWork {
            bytes_per_instance: 0, // overwritten below
            stride: 64,
            base: 0,
            writes: true,
            cycles_per_access: 1,
        };
        // every instance writes the same 64 lines
        let src = FnWork(move |inst: Instance, out: &mut InstanceWork| {
            let _ = inst;
            let _ = shared;
            for i in 0..64u64 {
                out.accesses.push(crate::work::MemAccess::write(i * 64));
            }
            out.compute = 64;
        });
        let seq = Machine::new(MachineConfig::bagle(1)).run_sequential(&p, &src);
        let par = Machine::new(MachineConfig::bagle(8)).run(&p, &src);
        let s = par.speedup_over(&seq);
        assert!(s < 4.0, "pure coherence traffic cannot scale: {s}");
        assert!(par.mem.remote_hits > 0);
        assert!(par.mem.invalidations > 0);
    }
}
