//! Machine configurations, with the paper's two evaluation machines as
//! presets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing a machine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// More kernels requested than the machine has kernel cores. Use the
    /// preset's `_oversubscribed` variant to fold kernels onto cores
    /// explicitly instead.
    Oversubscribed {
        /// Kernels requested.
        kernels: u32,
        /// Kernel cores the machine actually has.
        cores: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Oversubscribed { kernels, cores } => write!(
                f,
                "{kernels} kernels requested but the machine has {cores} kernel cores; \
                 use the explicit oversubscription constructor to double up kernels"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Physical core/memory layout beyond the cache hierarchy: NUMA nodes with
/// distinct local/remote latencies and a per-node memory-channel bandwidth
/// budget.
///
/// The default is a flat (UMA) machine: one node, zero remote penalties,
/// unmodeled channel bandwidth — cycle-identical to the pre-topology
/// simulator, which keeps the Bagle/x86 paper figures stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Cores per NUMA node (0 = all cores on one node, flat/UMA).
    pub cores_per_node: u32,
    /// Extra cycles for a memory access served by a remote node's memory
    /// controller (added on top of `mem_lat`).
    pub remote_mem_penalty: u64,
    /// Extra cycles for a cache-to-cache transfer whose supplier sits on a
    /// different node (added on top of `c2c_lat`).
    pub remote_c2c_penalty: u64,
    /// Per-node memory-channel occupancy of one line transfer, in cycles
    /// (0 = infinite bandwidth, channel unmodeled). Concurrent transfers to
    /// one node's memory book into shared bandwidth windows and queue when
    /// a window fills — they do not pipeline for free.
    pub channel_transfer: u64,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::flat()
    }
}

impl Topology {
    /// A flat UMA machine (single node, no penalties, unmodeled channel).
    pub fn flat() -> Self {
        Topology {
            cores_per_node: 0,
            remote_mem_penalty: 0,
            remote_c2c_penalty: 0,
            channel_transfer: 0,
        }
    }

    /// Whether this topology is flat (no NUMA effects modeled at all).
    pub fn is_flat(&self) -> bool {
        self.cores_per_node == 0 && self.channel_transfer == 0
    }
}

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Read-hit latency in cycles.
    pub read_lat: u64,
    /// Write-hit latency in cycles.
    pub write_lat: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size / self.line / self.assoc).max(1)
    }
}

/// Cycle costs of the kernel↔TSU interface.
///
/// `TFluxHard`: commands are memory stores/loads through the MMI
/// (§4.1 — an access is "penalized with 4 additional cycles compared to a
/// normal L1 cache access") and the TSU processes each in `op` cycles
/// (the §4.1 sensitivity knob). `TFluxSoft`: commands cross shared memory
/// plus locking (hundreds of cycles) and the TSU Emulator core spends
/// `op` cycles of software per command (§6.2.2 — "the need to invoke a
/// number of TSU Emulation functions when a DThread completes").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TsuCosts {
    /// Cycles for a kernel to issue one command to the TSU (MMI access for
    /// hardware, shared-memory + lock round trip for software).
    pub access: u64,
    /// Cycles the TSU unit needs to process one command (serialized inside
    /// the TSU Group / Emulator).
    pub op: u64,
    /// Cycles of kernel-side software run per DThread transition (zero for
    /// hardware, where the kernel just issues stores; the
    /// FindReadyThread-loop and post-processing call overhead for soft).
    pub kernel_overhead: u64,
    /// Extra cycles when a fetch is served by *stealing* from a sibling
    /// kernel's ready queue instead of the core's own (the remote-queue
    /// walk inside the unit for hardware; a cross-queue CAS plus the
    /// victim's cache line for software).
    #[serde(default)]
    pub steal: u64,
}

impl TsuCosts {
    /// Hardware TSU Group costs (§4.1/§6.1.1): MMI access = L1 read (2) + 4
    /// penalty cycles; TSU processing time 4 cycles.
    pub fn hard() -> Self {
        TsuCosts {
            access: 6,
            op: 4,
            kernel_overhead: 0,
            steal: 10,
        }
    }

    /// Software TSU Emulator costs, calibrated so that per-DThread overhead
    /// sits in the ~1–2 k-cycle range the paper implies (unroll ≥ 16 needed
    /// to amortize, §6.2.2).
    pub fn soft() -> Self {
        TsuCosts {
            access: 250,
            op: 700,
            kernel_overhead: 500,
            steal: 300,
        }
    }
}

/// Full machine description.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores executing kernels. (Cores reserved for the OS or the
    /// TSU Emulator are excluded — they are modeled by the TSU device's
    /// costs, not as simulated cores.)
    pub cores: u32,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2 cache, one per `l2_group` cores.
    pub l2: CacheConfig,
    /// How many cores share one L2 (1 = private L2 per core).
    pub l2_group: u32,
    /// Main-memory access latency in cycles (beyond L2).
    pub mem_lat: u64,
    /// Bus occupancy per line transfer in cycles (system network
    /// serialization unit).
    pub bus_transfer: u64,
    /// Bus occupancy of a coherence control message (invalidate/upgrade).
    pub bus_control: u64,
    /// Cache-to-cache transfer latency (remote L2 supplies the line).
    pub c2c_lat: u64,
    /// Kernel↔TSU cost model.
    pub tsu: TsuCosts,
    /// Number of TSU Group shards (§3.3 names multi-group TSUs as work in
    /// progress for large machines; 1 = the paper's single TSU Group).
    /// Cores are partitioned round-robin-free: shard = core × groups /
    /// cores. Cross-shard ready-count updates pay a bus crossing.
    pub tsu_groups: u32,
    /// NUMA layout (defaults to flat/UMA; absent in older serialized
    /// configs).
    #[serde(default)]
    pub topology: Topology,
    /// Length in cycles of one DES merge round: the interval at which
    /// per-domain memory-system overlays commit into the shared snapshot
    /// and deferred TSU-device operations replay. `0` (the default) picks
    /// `max(tsu.access + tsu.op, 256)`. This is a **model** parameter —
    /// every engine and host-thread count uses the same value, so results
    /// never depend on how the simulation is executed.
    #[serde(default)]
    pub merge_round: u64,
}

impl MachineConfig {
    /// The paper's simulated Sparc CMP "Bagle" (§6.1.1): 28 cores (27
    /// usable as kernels, 1 reserved for the OS); 32 KB 4-way L1D with
    /// 2-cycle reads; 2 MB 8-way per-core L2 with 20-cycle access; hardware
    /// TSU Group.
    pub fn bagle(kernels: u32) -> Self {
        MachineConfig {
            cores: kernels,
            l1: CacheConfig {
                size: 32 * 1024,
                line: 64,
                assoc: 4,
                read_lat: 2,
                write_lat: 0,
            },
            l2: CacheConfig {
                size: 2 * 1024 * 1024,
                line: 128,
                assoc: 8,
                read_lat: 20,
                write_lat: 20,
            },
            l2_group: 1,
            mem_lat: 180,
            bus_transfer: 4,
            bus_control: 2,
            c2c_lat: 40,
            tsu: TsuCosts::hard(),
            tsu_groups: 1,
            topology: Topology::flat(),
            merge_round: 0,
        }
    }

    /// The paper's native TFluxSoft machine (§6.2.1): IBM x3650 with two
    /// Xeon E5320 Core2 QuadCores. 32 KB 8-way L1 (3-cycle), 4 MB 16-way L2
    /// shared per core *pair* (14-cycle) — the pair topology behind QSORT's
    /// small-size anomaly — and the software TSU Emulator cost model.
    pub fn xeon_x3650(kernels: u32) -> Self {
        MachineConfig {
            cores: kernels,
            l1: CacheConfig {
                size: 32 * 1024,
                line: 64,
                assoc: 8,
                read_lat: 3,
                write_lat: 1,
            },
            l2: CacheConfig {
                size: 4 * 1024 * 1024,
                line: 64,
                assoc: 16,
                read_lat: 14,
                write_lat: 14,
            },
            l2_group: 2,
            mem_lat: 220,
            bus_transfer: 6,
            bus_control: 3,
            c2c_lat: 60,
            tsu: TsuCosts::soft(),
            tsu_groups: 1,
            topology: Topology::flat(),
            merge_round: 0,
        }
    }

    /// The 9-core x86 machine "similar to Bagle" the paper also simulated
    /// (§6.1.2: "The same benchmarks have been executed on a simulated 9
    /// cores X86 system similar to Bagle. The speedup values observed and
    /// conclusions drawn are similar"). x86-typical L1/L2 latencies, one
    /// core reserved for the OS — 8 kernels.
    ///
    /// # Errors
    /// [`ConfigError::Oversubscribed`] when more than 8 kernels are
    /// requested: the machine has 8 kernel cores, and silently folding
    /// extra kernels onto them would mis-report per-kernel speedups. Opt
    /// into folding with [`MachineConfig::x86_9core_oversubscribed`].
    pub fn x86_9core(kernels: u32) -> Result<Self, ConfigError> {
        if kernels > 8 {
            return Err(ConfigError::Oversubscribed { kernels, cores: 8 });
        }
        Ok(Self::x86_9core_oversubscribed(kernels))
    }

    /// The 9-core x86 machine with *explicit* oversubscription: more than 8
    /// kernels are folded onto the 8 kernel cores (the TSU still sees
    /// `kernels` logical consumers; the cores just multiplex them).
    pub fn x86_9core_oversubscribed(kernels: u32) -> Self {
        MachineConfig {
            cores: kernels.min(8),
            l1: CacheConfig {
                size: 32 * 1024,
                line: 64,
                assoc: 8,
                read_lat: 3,
                write_lat: 1,
            },
            l2: CacheConfig {
                size: 2 * 1024 * 1024,
                line: 64,
                assoc: 8,
                read_lat: 16,
                write_lat: 16,
            },
            l2_group: 1,
            mem_lat: 200,
            bus_transfer: 4,
            bus_control: 2,
            c2c_lat: 44,
            tsu: TsuCosts::hard(),
            tsu_groups: 1,
            topology: Topology::flat(),
            merge_round: 0,
        }
    }

    /// A SPARC-T3-4-class 64-core NUMA machine: 4 sockets × 16 cores, one
    /// shared L2 per socket, per-socket memory controllers. Latencies follow
    /// the T3-4 characterization (small write-through-style L1s, ~25-cycle
    /// shared L2, remote-socket memory roughly 1.5× local) with the hardware
    /// TSU cost model and one TSU Group shard per socket.
    ///
    /// # Errors
    /// [`ConfigError::Oversubscribed`] when more than 64 kernels are
    /// requested (the directory's core bitmaps are 64 bits wide — exactly
    /// this machine).
    pub fn sparc_t3_4(kernels: u32) -> Result<Self, ConfigError> {
        if kernels > 64 {
            return Err(ConfigError::Oversubscribed { kernels, cores: 64 });
        }
        Ok(MachineConfig {
            cores: kernels,
            l1: CacheConfig {
                size: 8 * 1024,
                line: 64,
                assoc: 4,
                read_lat: 3,
                write_lat: 1,
            },
            l2: CacheConfig {
                size: 6 * 1024 * 1024,
                line: 64,
                assoc: 16,
                read_lat: 26,
                write_lat: 26,
            },
            // one shared L2 per 16-core socket
            l2_group: 16,
            mem_lat: 240,
            bus_transfer: 4,
            bus_control: 2,
            c2c_lat: 70,
            tsu: TsuCosts::hard(),
            tsu_groups: kernels.div_ceil(16).max(1),
            topology: Topology {
                cores_per_node: 16,
                remote_mem_penalty: 120,
                remote_c2c_penalty: 60,
                channel_transfer: 8,
            },
            merge_round: 0,
        })
    }

    /// Override the TSU cost model.
    pub fn with_tsu(mut self, tsu: TsuCosts) -> Self {
        self.tsu = tsu;
        self
    }

    /// Override the core count.
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Override the number of TSU Group shards.
    pub fn with_tsu_groups(mut self, groups: u32) -> Self {
        self.tsu_groups = groups.max(1);
        self
    }

    /// The TSU shard serving a core.
    pub fn tsu_shard_of(&self, core: u32) -> u32 {
        let g = self.tsu_groups.max(1);
        (core as u64 * g as u64 / self.cores.max(1) as u64) as u32
    }

    /// Number of L2 groups on this machine.
    pub fn l2_groups(&self) -> u32 {
        self.cores.div_ceil(self.l2_group.max(1))
    }

    /// The L2 group a core belongs to.
    pub fn group_of(&self, core: u32) -> u32 {
        core / self.l2_group.max(1)
    }

    /// Override the DES merge-round length (0 = auto).
    pub fn with_merge_round(mut self, cycles: u64) -> Self {
        self.merge_round = cycles;
        self
    }

    /// The resolved merge-round length: the configured value, or
    /// `max(tsu.access + tsu.op, 256)` when unset — at least the
    /// conservative cross-core window (the minimum latency by which one
    /// core's activity can schedule work on another core), widened so
    /// machines with very fast TSUs still amortize commit overhead.
    /// Correctness does not depend on the value (cross-lane influence
    /// always routes through the serial boundary replay); it only sets the
    /// granularity at which cross-domain memory effects become visible.
    pub fn merge_round_len(&self) -> u64 {
        if self.merge_round > 0 {
            self.merge_round
        } else {
            (self.tsu.access + self.tsu.op).max(256)
        }
    }

    /// Override the NUMA topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Number of NUMA nodes (1 for a flat machine).
    pub fn nodes(&self) -> u32 {
        let per = self.topology.cores_per_node;
        if per == 0 {
            1
        } else {
            self.cores.div_ceil(per).max(1)
        }
    }

    /// The NUMA node a core belongs to (cores are packed onto nodes in
    /// order, so small kernel counts stay on one socket).
    pub fn node_of(&self, core: u32) -> u32 {
        core.checked_div(self.topology.cores_per_node).unwrap_or(0)
    }

    /// The home node of a physical address: memory is interleaved across
    /// nodes at 4 KiB-page granularity (deterministic, so simulations stay
    /// bit-reproducible).
    pub fn home_node(&self, byte_addr: u64) -> u32 {
        let n = self.nodes() as u64;
        if n <= 1 {
            0
        } else {
            ((byte_addr >> 12) % n) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bagle_matches_paper_geometry() {
        let m = MachineConfig::bagle(27);
        assert_eq!(m.l1.size, 32 * 1024);
        assert_eq!(m.l1.assoc, 4);
        assert_eq!(m.l1.read_lat, 2);
        assert_eq!(m.l1.write_lat, 0);
        assert_eq!(m.l2.size, 2 * 1024 * 1024);
        assert_eq!(m.l2.line, 128);
        assert_eq!(m.l2.read_lat, 20);
        assert_eq!(m.l2_group, 1);
        assert_eq!(m.tsu, TsuCosts::hard());
        assert_eq!(m.tsu.access, 6); // L1 read (2) + 4-cycle MMI penalty
    }

    #[test]
    fn xeon_pairs_cores_per_l2() {
        let m = MachineConfig::xeon_x3650(6);
        assert_eq!(m.l2_group, 2);
        assert_eq!(m.l2_groups(), 3);
        assert_eq!(m.group_of(0), 0);
        assert_eq!(m.group_of(1), 0);
        assert_eq!(m.group_of(2), 1);
        assert_eq!(m.group_of(5), 2);
    }

    #[test]
    fn cache_sets_computed() {
        let c = CacheConfig {
            size: 32 * 1024,
            line: 64,
            assoc: 4,
            read_lat: 2,
            write_lat: 0,
        };
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn x86_9core_rejects_oversubscription_with_typed_error() {
        // regression: the preset used to clamp `kernels.min(8)` silently, so
        // a 16-kernel run quietly simulated 8 cores with doubled-up kernels
        let err = MachineConfig::x86_9core(27).unwrap_err();
        assert_eq!(
            err,
            ConfigError::Oversubscribed {
                kernels: 27,
                cores: 8
            }
        );
        assert!(err.to_string().contains("27 kernels"));
        let m = MachineConfig::x86_9core(8).unwrap();
        assert_eq!(m.cores, 8);
        assert_eq!(m.l1.read_lat, 3);
        assert_eq!(m.tsu, TsuCosts::hard());
        // opting in still folds kernels onto the 8 cores
        let folded = MachineConfig::x86_9core_oversubscribed(27);
        assert_eq!(folded.cores, 8);
    }

    #[test]
    fn t3_4_preset_is_a_64_core_numa_machine() {
        let m = MachineConfig::sparc_t3_4(64).unwrap();
        assert_eq!(m.cores, 64);
        assert_eq!(m.nodes(), 4);
        assert_eq!(m.l2_group, 16);
        assert_eq!(m.l2_groups(), 4);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(15), 0);
        assert_eq!(m.node_of(16), 1);
        assert_eq!(m.node_of(63), 3);
        assert!(m.topology.remote_mem_penalty > 0);
        assert!(m.topology.channel_transfer > 0);
        assert!(!m.topology.is_flat());
        assert_eq!(
            MachineConfig::sparc_t3_4(65).unwrap_err(),
            ConfigError::Oversubscribed {
                kernels: 65,
                cores: 64
            }
        );
        // small kernel counts pack onto the first socket
        let small = MachineConfig::sparc_t3_4(8).unwrap();
        assert_eq!(small.nodes(), 1);
        assert!((0..8).all(|c| small.node_of(c) == 0));
    }

    #[test]
    fn flat_topology_has_one_node_and_interleaving_is_deterministic() {
        let flat = MachineConfig::bagle(8);
        assert!(flat.topology.is_flat());
        assert_eq!(flat.nodes(), 1);
        assert_eq!(flat.home_node(0xDEAD_BEEF), 0);
        let numa = MachineConfig::sparc_t3_4(64).unwrap();
        // pages interleave round-robin across the 4 nodes
        assert_eq!(numa.home_node(0x0000), 0);
        assert_eq!(numa.home_node(0x1000), 1);
        assert_eq!(numa.home_node(0x2000), 2);
        assert_eq!(numa.home_node(0x3000), 3);
        assert_eq!(numa.home_node(0x4000), 0);
        // same-page addresses share a home
        assert_eq!(numa.home_node(0x1000), numa.home_node(0x1FFF));
    }

    #[test]
    fn tsu_shards_partition_cores() {
        let m = MachineConfig::bagle(8).with_tsu_groups(2);
        let shards: Vec<u32> = (0..8).map(|c| m.tsu_shard_of(c)).collect();
        assert_eq!(shards, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let single = MachineConfig::bagle(8);
        assert!((0..8).all(|c| single.tsu_shard_of(c) == 0));
    }

    #[test]
    fn soft_costs_dominate_hard_costs() {
        let h = TsuCosts::hard();
        let s = TsuCosts::soft();
        assert!(s.access > 10 * h.access);
        assert!(s.op > 10 * h.op);
        assert!(s.kernel_overhead > 0 && h.kernel_overhead == 0);
    }
}
