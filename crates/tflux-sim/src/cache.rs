//! A set-associative, LRU cache model (tags only).
//!
//! The simulator tracks *presence* of cache lines, not data — workload
//! semantics run natively; the cache model only produces latencies and
//! miss classifications, like Simics' `gcache` modules the paper used.

use crate::config::CacheConfig;

/// Tag store of one cache.
#[derive(Debug)]
pub struct Cache {
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    sets: usize,
    assoc: usize,
    /// Line size of *this* cache in bytes (lines are addressed in bytes /
    /// line further up; the cache re-derives its own tag granularity so an
    /// L2 with 128-byte lines can back an L1 with 64-byte lines).
    line_shift: u32,
    tick: u64,
    /// Hits since construction.
    pub hits: u64,
    /// Misses since construction.
    pub misses: u64,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Build a cache from its configuration.
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.sets();
        let assoc = config.assoc.max(1);
        Cache {
            tags: vec![INVALID; sets * assoc],
            stamps: vec![0; sets * assoc],
            sets,
            assoc,
            line_shift: config.line.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr % self.sets as u64) as usize
    }

    /// Convert a byte address to this cache's line address.
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// Log2 of this cache's line size.
    #[inline]
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Probe for a line (by this cache's line address); updates LRU and hit
    /// counters on hit.
    #[inline]
    pub fn probe(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == line_addr {
                self.stamps[base + way] = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Probe without touching LRU or counters.
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line_addr)
    }

    /// Insert a line, evicting the LRU way if needed; returns the evicted
    /// line address, if any.
    pub fn insert(&mut self, line_addr: u64) -> Option<u64> {
        self.tick += 1;
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        // already present (refill race): refresh
        for way in 0..self.assoc {
            if self.tags[base + way] == line_addr {
                self.stamps[base + way] = self.tick;
                return None;
            }
        }
        // free way?
        for way in 0..self.assoc {
            if self.tags[base + way] == INVALID {
                self.tags[base + way] = line_addr;
                self.stamps[base + way] = self.tick;
                return None;
            }
        }
        // evict LRU
        let victim = (0..self.assoc)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("assoc >= 1");
        let evicted = self.tags[base + victim];
        self.tags[base + victim] = line_addr;
        self.stamps[base + victim] = self.tick;
        Some(evicted)
    }

    /// Drop a line if present; returns whether it was present.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == line_addr {
                self.tags[base + way] = INVALID;
                return true;
            }
        }
        false
    }

    /// Miss ratio so far (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways, 64B lines
        Cache::new(&CacheConfig {
            size: 512,
            line: 64,
            assoc: 2,
            read_lat: 1,
            write_lat: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.probe(7));
        c.insert(7);
        assert!(c.probe(7));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // lines 0, 4, 8 all map to set 0 (4 sets)
        c.insert(0);
        c.insert(4);
        c.probe(0); // 0 more recent than 4
        let evicted = c.insert(8);
        assert_eq!(evicted, Some(4));
        assert!(c.contains(0));
        assert!(c.contains(8));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(3);
        assert!(c.invalidate(3));
        assert!(!c.contains(3));
        assert!(!c.invalidate(3));
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut c = tiny();
        c.insert(0);
        c.insert(4);
        assert_eq!(c.insert(0), None);
        assert!(c.contains(4));
    }

    #[test]
    fn line_of_uses_configured_line_size() {
        let c = tiny();
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(63), 0);
        assert_eq!(c.line_of(64), 1);
        assert_eq!(c.line_of(130), 2);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        for line in 0..4 {
            c.insert(line);
        }
        for line in 0..4 {
            assert!(c.contains(line), "line {line}");
        }
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = tiny();
        c.probe(1); // miss
        c.insert(1);
        c.probe(1); // hit
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
