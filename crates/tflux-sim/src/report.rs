//! Simulation results.

use crate::memsys::MemStats;
use crate::tsu_dev::TsuDevStats;
use serde::{Deserialize, Serialize};
use tflux_core::tsu::TsuStats;

/// The outcome of one simulated execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Total execution time in cycles (time the last core finished).
    pub cycles: u64,
    /// Per-core cycles spent executing DThread bodies.
    pub core_busy: Vec<u64>,
    /// Per-core cycles spent in kernel/TSU transitions.
    pub core_tsu: Vec<u64>,
    /// Per-core cycles parked waiting for ready DThreads.
    pub core_idle: Vec<u64>,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// TSU state-machine counters.
    pub tsu: TsuStats,
    /// TSU device counters.
    pub dev: TsuDevStats,
    /// DThread instances executed.
    pub instances: usize,
    /// Discrete events processed (queue pops plus deferred device
    /// operations) — the engine-invariant denominator for host-side
    /// events/sec throughput. Zero for the sequential baseline, which has
    /// no event loop.
    #[serde(default)]
    pub events: u64,
}

impl SimReport {
    /// Average core utilization: busy / (busy + tsu + idle).
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.core_busy.iter().sum();
        let total: u64 =
            busy + self.core_tsu.iter().sum::<u64>() + self.core_idle.iter().sum::<u64>();
        if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        }
    }

    /// Speedup of this (parallel) run over a sequential baseline run.
    pub fn speedup_over(&self, sequential: &SimReport) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        sequential.cycles as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, busy: Vec<u64>, idle: Vec<u64>) -> SimReport {
        let n = busy.len();
        SimReport {
            cycles,
            core_busy: busy,
            core_tsu: vec![0; n],
            core_idle: idle,
            mem: MemStats::default(),
            tsu: TsuStats::default(),
            dev: TsuDevStats::default(),
            instances: 0,
            events: 0,
        }
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let r = report(100, vec![80, 40], vec![20, 60]);
        assert!((r.utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_seq_over_par() {
        let seq = report(1000, vec![1000], vec![0]);
        let par = report(250, vec![250; 4], vec![0; 4]);
        assert!((par.speedup_over(&seq) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let r = report(0, vec![], vec![]);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.speedup_over(&r), 0.0);
    }
}
