//! The TFluxCell machine model: PPE-resident TSU Emulator + SPE kernels.
//!
//! The execution protocol follows §4.3 exactly:
//!
//! 1. a kernel (SPE) *waits on its mailbox* for the id of the next DThread;
//! 2. before the DThread starts, its input data is *imported* from the
//!    SharedVariableBuffer in main memory into the Local Store by DMA;
//! 3. the DThread executes out of the LS;
//! 4. produced data is *exported* back to the SharedVariableBuffer by DMA;
//! 5. the kernel *places a command into its CommandBuffer*; the TSU
//!    Emulator on the PPE, which loops over all CommandBuffers, picks it
//!    up, runs the post-processing phase, and answers ready DThreads
//!    through the mailboxes.
//!
//! DMA transfers arbitrate for the element-interconnect bus; the PPE
//! emulator is a serialized resource. Everything is deterministic.

use crate::config::CellConfig;
use crate::report::CellReport;
use crate::work::{CellWork, CellWorkSource};
use tflux_core::ids::{Epoch, Instance, KernelId};
use tflux_core::program::DdmProgram;
use tflux_core::thread::ThreadKind;
use tflux_core::tsu::{drain_sequential, CompletionFunnel, CoreTsu, FetchResult, TsuConfig};
use tflux_sim::event::EventQueue;

/// Errors of a TFluxCell run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// An instance needs more Local Store than the SPE has. This is the
    /// §6.3 QSORT limitation: "larger problem sizes ... would not fit in
    /// each SPE Local Store".
    LocalStoreOverflow {
        /// The offending instance.
        inst: Instance,
        /// Bytes the instance needs resident.
        need: u64,
        /// Local Store capacity.
        have: u64,
    },
    /// A TSU protocol error.
    Protocol(tflux_core::error::CoreError),
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::LocalStoreOverflow { inst, need, have } => write!(
                f,
                "instance {inst} needs {need} B of Local Store but SPEs have {have} B; \
                 stage the algorithm or shrink the problem size"
            ),
            CellError::Protocol(e) => write!(f, "TSU protocol error: {e}"),
        }
    }
}

impl std::error::Error for CellError {}

/// The simulated Cell/BE machine.
#[derive(Clone, Copy, Debug)]
pub struct CellMachine {
    cfg: CellConfig,
    epochs: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A mailbox message delivering an instance of an epoch to an SPE.
    Mail(u32, Instance, Epoch),
    /// The SPE's import DMA finished; compute starts.
    Imported(u32),
    /// Compute finished; the export DMA starts.
    Export(u32),
    /// An SPE finished executing and its command reaches the PPE. The
    /// epoch token rides the CommandBuffer record (see [`crate::cmd`])
    /// so a command that outlives its pass is rejected, not absorbed.
    Cmd(u32, Instance, Epoch),
    /// A shutdown mail: the SPE exits.
    Bye(u32),
}

struct Spe {
    waiting_since: Option<u64>,
    /// A mailbox message is in flight; do not dispatch again.
    dispatched: bool,
    /// The instance, its epoch token, and the work currently executing
    /// on this SPE.
    cur: Option<(Instance, Epoch, CellWork)>,
    /// Compute cycles of the previously executed instance (double-buffer
    /// overlap budget).
    prev_compute: u64,
    busy: u64,
    dma: u64,
    idle: u64,
    finish: u64,
    done: bool,
}

impl CellMachine {
    /// A machine with the given configuration.
    pub fn new(cfg: CellConfig) -> Self {
        CellMachine { cfg, epochs: 1 }
    }

    /// Stream the program for `epochs` consecutive passes: every epoch
    /// after the first is credited up front (there is no supervisor on
    /// the PPE to bank credits mid-run), so the TSU re-arms the inlet the
    /// moment a pass drains and the SPEs never go idle between passes.
    /// The credit window in [`TsuConfig::window`] must admit `epochs`
    /// simultaneous credits (0 = unwindowed); a tighter window is a
    /// configuration error surfaced as [`CellError::Protocol`].
    pub fn with_epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    fn check_ls(&self, inst: Instance, w: &CellWork) -> Result<(), CellError> {
        if w.ls_bytes > self.cfg.ls_bytes {
            return Err(CellError::LocalStoreOverflow {
                inst,
                need: w.ls_bytes,
                have: self.cfg.ls_bytes,
            });
        }
        Ok(())
    }

    /// Run `program` on the simulated Cell.
    pub fn run(
        &self,
        program: &DdmProgram,
        source: &dyn CellWorkSource,
    ) -> Result<CellReport, CellError> {
        let spes = self.cfg.spes.max(1);
        let mut tsu = CoreTsu::new(program, spes, self.cfg.tsu);
        // the PPE emulator's completion funnel: under a batching flush
        // policy, App commands park here and post-process as one batch
        // (one `ppe_op` charge per flush instead of per command)
        let mut funnel = CompletionFunnel::new(tsu.flush_policy());
        let mut spelist: Vec<Spe> = (0..spes)
            .map(|_| Spe {
                waiting_since: Some(0),
                dispatched: false,
                cur: None,
                prev_compute: 0,
                busy: 0,
                dma: 0,
                idle: 0,
                finish: 0,
                done: false,
            })
            .collect();
        let mut events: EventQueue<Ev> = EventQueue::new();
        let mut bus_free = 0u64;
        let mut ppe_free = 0u64;
        let mut ppe_busy = 0u64;
        let mut commands = 0u64;
        let mut instances = 0usize;
        let mut peak_ls = 0u64;
        let mut ready_buf: Vec<Instance> = Vec::new();

        // Credit every streamed pass beyond the first before the event
        // loop starts; the re-armed inlet then rides the final outlet of
        // each pass and the machine flows continuously.
        for _ in 1..self.epochs {
            tsu.open_epoch_queued(&mut ready_buf)
                .map_err(CellError::Protocol)?;
        }

        // Arm: the first block's inlet, queued inside the TSU, goes out
        // over the mailbox of the first SPE whose fetch reaches it.
        for k in 0..spes {
            if let FetchResult::Thread(inst, ep) =
                tsu.fetch_ready(KernelId(k)).map_err(CellError::Protocol)?
            {
                events.push(self.cfg.mailbox_lat, Ev::Mail(k, inst, ep));
                spelist[k as usize].dispatched = true;
            }
        }

        while let Some((t, ev)) = events.pop() {
            match ev {
                Ev::Mail(spe, inst, epoch) => {
                    let s = &mut spelist[spe as usize];
                    s.dispatched = false;
                    if let Some(since) = s.waiting_since.take() {
                        s.idle += t.saturating_sub(since);
                    }
                    let w = source.work(inst);
                    // double-buffering needs a second import buffer resident
                    let footprint = if self.cfg.double_buffer {
                        CellWork {
                            ls_bytes: w.ls_bytes + w.import_bytes,
                            ..w
                        }
                    } else {
                        w
                    };
                    self.check_ls(inst, &footprint)?;
                    peak_ls = peak_ls.max(footprint.ls_bytes);
                    s.cur = Some((inst, epoch, w));
                    // import DMA (bus arbitration at the current time)
                    if w.import_bytes > 0 {
                        let cost = self.cfg.dma_cycles(w.import_bytes);
                        let start = bus_free.max(t);
                        bus_free = start + cost;
                        // with double-buffering the transfer overlapped the
                        // previous instance's compute; only the residue
                        // stalls the SPE (the bus still carried the full
                        // transfer, charged above)
                        let visible = if self.cfg.double_buffer {
                            ((start - t) + cost).saturating_sub(s.prev_compute)
                        } else {
                            (start - t) + cost
                        };
                        s.dma += visible;
                        events.push(t + visible, Ev::Imported(spe));
                    } else {
                        events.push(t, Ev::Imported(spe));
                    }
                }
                Ev::Imported(spe) => {
                    let s = &mut spelist[spe as usize];
                    let (_, _, w) = s.cur.expect("Imported without current work");
                    let c = self.cfg.scale_compute(w.compute);
                    s.busy += c;
                    s.prev_compute = c;
                    events.push(t + c, Ev::Export(spe));
                }
                Ev::Export(spe) => {
                    let s = &mut spelist[spe as usize];
                    let (inst, epoch, w) = s.cur.take().expect("Export without current work");
                    let mut now = t;
                    if w.export_bytes > 0 {
                        let cost = self.cfg.dma_cycles(w.export_bytes);
                        let start = bus_free.max(now);
                        bus_free = start + cost;
                        s.dma += (start - now) + cost;
                        now = start + cost;
                    }
                    instances += 1;
                    events.push(now + self.cfg.cmd_lat, Ev::Cmd(spe, inst, epoch));
                }
                Ev::Cmd(spe, inst, epoch) => {
                    // PPE picks the command out of the CommandBuffer: the
                    // scan is always charged; the post-processing op is
                    // charged per batch when the funnel defers it
                    let start = ppe_free.max(t);
                    let mut cost = self.cfg.poll_scan;
                    commands += 1;
                    if funnel.batching() && program.thread(inst.thread).kind == ThreadKind::App {
                        if funnel.push(inst, epoch) {
                            cost += self.cfg.ppe_op;
                            funnel
                                .flush(&mut tsu, &mut ready_buf)
                                .map_err(CellError::Protocol)?;
                        }
                    } else {
                        // block transitions post-process directly, after
                        // draining parked completions they may depend on
                        if !funnel.is_empty() {
                            cost += self.cfg.ppe_op;
                            funnel
                                .flush(&mut tsu, &mut ready_buf)
                                .map_err(CellError::Protocol)?;
                        }
                        cost += self.cfg.ppe_op;
                        tsu.complete_queued(inst, epoch, &mut ready_buf)
                            .map_err(CellError::Protocol)?;
                    }
                    let mut done = start + cost;
                    ppe_free = done;
                    ppe_busy += cost;

                    // this SPE is now waiting on its mailbox
                    spelist[spe as usize].waiting_since = Some(t);

                    if tsu.finished() {
                        for (k, s) in spelist.iter().enumerate() {
                            if s.waiting_since.is_some() && !s.done && !s.dispatched {
                                events.push(done + self.cfg.mailbox_lat, Ev::Bye(k as u32));
                            }
                        }
                    } else {
                        loop {
                            // serve every waiting SPE out of the TSU queue
                            // units: its own queue first, then
                            // (LocalityFirst policy) a steal from the
                            // longest other queue
                            for k in 0..spes {
                                let s = &spelist[k as usize];
                                if s.waiting_since.is_none() || s.done || s.dispatched {
                                    continue;
                                }
                                if let FetchResult::Thread(i, ep) =
                                    tsu.fetch_ready(KernelId(k)).map_err(CellError::Protocol)?
                                {
                                    events.push(done + self.cfg.mailbox_lat, Ev::Mail(k, i, ep));
                                    spelist[k as usize].dispatched = true;
                                }
                            }
                            // if every SPE is drained and idle, the parked
                            // decrements are the only remaining work: flush
                            // them now or the machine deadlocks
                            if funnel.is_empty()
                                || spelist.iter().any(|s| s.cur.is_some() || s.dispatched)
                            {
                                break;
                            }
                            ppe_free += self.cfg.ppe_op;
                            ppe_busy += self.cfg.ppe_op;
                            done = ppe_free;
                            funnel
                                .flush(&mut tsu, &mut ready_buf)
                                .map_err(CellError::Protocol)?;
                        }
                    }
                }
                Ev::Bye(spe) => {
                    let s = &mut spelist[spe as usize];
                    if s.done {
                        continue;
                    }
                    if let Some(since) = s.waiting_since.take() {
                        s.idle += t.saturating_sub(since);
                    }
                    s.finish = t;
                    s.done = true;
                }
            }
        }

        assert!(
            tsu.finished() && spelist.iter().all(|s| s.done),
            "TFluxCell simulation deadlocked"
        );

        // Close the ledger: every streamed pass drained, so its credit
        // can be handed back in order.
        let (_, completed, mut retired) = tsu.epoch_ledger();
        while retired < completed {
            tsu.retire_epoch(Epoch(retired))
                .map_err(CellError::Protocol)?;
            retired += 1;
        }

        Ok(CellReport {
            cycles: spelist.iter().map(|s| s.finish).max().unwrap_or(0),
            spe_busy: spelist.iter().map(|s| s.busy).collect(),
            spe_dma: spelist.iter().map(|s| s.dma).collect(),
            spe_idle: spelist.iter().map(|s| s.idle).collect(),
            ppe_busy,
            tsu: tsu.stats(),
            commands,
            cmd_stalls: 0,
            instances,
            peak_ls,
        })
    }

    /// Sequential baseline: one SPE executes every instance in dependency
    /// order with DMA staging but no TSU, mailbox, or CommandBuffer costs.
    pub fn run_sequential(
        &self,
        program: &DdmProgram,
        source: &dyn CellWorkSource,
    ) -> Result<CellReport, CellError> {
        let mut tsu = CoreTsu::new(program, 1, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let mut now = 0u64;
        let mut busy = 0u64;
        let mut dma = 0u64;
        let mut peak_ls = 0u64;
        let mut instances = 0usize;
        for inst in order {
            let w = source.work(inst);
            self.check_ls(inst, &w)?;
            peak_ls = peak_ls.max(w.ls_bytes);
            let d = self.cfg.dma_cycles(w.import_bytes) + self.cfg.dma_cycles(w.export_bytes);
            let c = self.cfg.scale_compute(w.compute);
            dma += d;
            busy += c;
            now += d + c;
            instances += 1;
        }
        Ok(CellReport {
            cycles: now,
            spe_busy: vec![busy],
            spe_dma: vec![dma],
            spe_idle: vec![0],
            ppe_busy: 0,
            tsu: tsu.stats(),
            commands: 0,
            cmd_stalls: 0,
            instances,
            peak_ls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{FnCellWork, UniformCellWork};
    use tflux_core::prelude::*;

    fn fork_join(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    fn app_work(compute: u64, import: u64, export: u64) -> impl CellWorkSource {
        FnCellWork(move |inst: Instance| {
            if inst.thread == ThreadId(0) {
                CellWork {
                    compute,
                    import_bytes: import,
                    export_bytes: export,
                    ls_bytes: 16 * 1024 + import,
                }
            } else {
                CellWork::default()
            }
        })
    }

    #[test]
    fn parallel_speedup_with_coarse_threads() {
        let p = fork_join(96);
        let src = app_work(400_000, 8192, 4096);
        let m6 = CellMachine::new(CellConfig::ps3());
        let seq = m6.run_sequential(&p, &src).unwrap();
        let par = m6.run(&p, &src).unwrap();
        let s = par.speedup_over(&seq);
        assert!(s > 4.5 && s <= 6.01, "speedup {s}");
    }

    #[test]
    fn fine_grain_threads_are_throttled_by_overheads() {
        let p = fork_join(96);
        let src = app_work(2_000, 8192, 4096); // tiny compute, big transfers
        let m6 = CellMachine::new(CellConfig::ps3());
        let seq = m6.run_sequential(&p, &src).unwrap();
        let par = m6.run(&p, &src).unwrap();
        let s = par.speedup_over(&seq);
        assert!(s < 4.0, "fine grain cannot reach near-linear: {s}");
        assert!(par.dma_fraction() > 0.1);
    }

    #[test]
    fn ls_overflow_is_reported() {
        let p = fork_join(4);
        let src = UniformCellWork {
            work: CellWork::compute(100, 512 * 1024),
        };
        let err = CellMachine::new(CellConfig::ps3())
            .run(&p, &src)
            .unwrap_err();
        assert!(matches!(err, CellError::LocalStoreOverflow { .. }));
        let err2 = CellMachine::new(CellConfig::ps3())
            .run_sequential(&p, &src)
            .unwrap_err();
        assert!(matches!(err2, CellError::LocalStoreOverflow { .. }));
    }

    #[test]
    fn all_instances_execute_exactly_once() {
        let p = fork_join(20);
        let src = app_work(1_000, 0, 0);
        let r = CellMachine::new(CellConfig::ps3()).run(&p, &src).unwrap();
        assert_eq!(r.instances, p.total_instances());
        assert_eq!(r.tsu.completions as usize, p.total_instances());
    }

    #[test]
    fn deterministic_runs() {
        let p = fork_join(32);
        let src = app_work(10_000, 2048, 1024);
        let m = CellMachine::new(CellConfig::ps3());
        let a = m.run(&p, &src).unwrap();
        let b = m.run(&p, &src).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.commands, b.commands);
    }

    #[test]
    fn fewer_spes_less_speedup() {
        let p = fork_join(96);
        let src = app_work(300_000, 4096, 2048);
        let seq = CellMachine::new(CellConfig::ps3())
            .run_sequential(&p, &src)
            .unwrap();
        let mut prev = 0.0;
        for spes in [2u32, 4, 6] {
            let r = CellMachine::new(CellConfig::ps3().with_spes(spes))
                .run(&p, &src)
                .unwrap();
            let s = r.speedup_over(&seq);
            assert!(s > prev, "speedup must grow with SPEs: {s} after {prev}");
            prev = s;
        }
    }

    #[test]
    fn dma_fraction_grows_with_transfer_size() {
        let p = fork_join(48);
        let small = app_work(100_000, 1024, 512);
        let big = app_work(100_000, 65_536, 32_768);
        let m = CellMachine::new(CellConfig::ps3());
        let rs = m.run(&p, &small).unwrap();
        let rb = m.run(&p, &big).unwrap();
        assert!(rb.dma_fraction() > rs.dma_fraction());
        assert!(rb.cycles > rs.cycles);
    }

    #[test]
    fn double_buffering_hides_import_latency() {
        // import sized so the XDR bus is NOT saturated (aggregate DMA
        // demand stays under the wall time); the per-instance import
        // stall (~4.4k cycles against 40k compute) is then hideable
        let p = fork_join(96);
        let src = app_work(40_000, 32_768, 1_024);
        let base = CellMachine::new(CellConfig::ps3());
        let db = CellMachine::new(CellConfig::ps3().with_double_buffer(true));
        let r0 = base.run(&p, &src).unwrap();
        let r1 = db.run(&p, &src).unwrap();
        assert!(
            r1.cycles < r0.cycles * 95 / 100,
            "double buffering must hide import latency: {} vs {}",
            r1.cycles,
            r0.cycles
        );
        assert!(r1.dma_fraction() < r0.dma_fraction());
    }

    #[test]
    fn double_buffering_requires_spare_local_store() {
        let p = fork_join(4);
        // footprint + second import buffer exceeds 256K only when doubled
        let src = app_work(1_000, 150 * 1024, 0);
        let base = CellMachine::new(CellConfig::ps3());
        assert!(base.run(&p, &src).is_ok());
        let db = CellMachine::new(CellConfig::ps3().with_double_buffer(true));
        assert!(matches!(
            db.run(&p, &src),
            Err(CellError::LocalStoreOverflow { .. })
        ));
    }

    #[test]
    fn funneled_ppe_batches_post_processing() {
        let p = fork_join(64);
        let src = app_work(10_000, 1024, 512);
        // pin the baseline: the default `FlushPolicy::Auto` would batch
        // this hot-sink program on its own, which is exactly the contrast
        // this test wants to measure
        let direct = CellMachine::new(CellConfig::ps3().with_tsu(TsuConfig {
            flush: FlushPolicy::Direct,
            ..TsuConfig::default()
        }))
        .run(&p, &src)
        .unwrap();
        let batched = CellMachine::new(CellConfig::ps3().with_tsu(TsuConfig {
            flush: FlushPolicy::Batch { size: 8 },
            ..TsuConfig::default()
        }))
        .run(&p, &src)
        .unwrap();
        // identical logical outcome...
        assert_eq!(batched.instances, direct.instances);
        assert_eq!(batched.tsu.completions, direct.tsu.completions);
        assert_eq!(batched.tsu.rc_updates, direct.tsu.rc_updates);
        // ...with fewer physical RMWs and less PPE post-processing time,
        // since up to 8 App commands share one `ppe_op` charge
        assert!(batched.tsu.rc_rmws < direct.tsu.rc_rmws);
        assert!(
            batched.ppe_busy < direct.ppe_busy,
            "batched PPE busy {} !< direct {}",
            batched.ppe_busy,
            direct.ppe_busy
        );
    }

    #[test]
    fn streamed_epochs_replay_on_the_cell() {
        let p = fork_join(24);
        let src = app_work(20_000, 2048, 1024);
        let m = CellMachine::new(CellConfig::ps3());
        let one = m.run(&p, &src).unwrap();
        let streamed = m.with_epochs(3).run(&p, &src).unwrap();
        // three bit-identical passes: every instance executes once per
        // epoch, and the ready counts re-arm cleanly between passes
        assert_eq!(streamed.instances, 3 * p.total_instances());
        assert_eq!(streamed.tsu.completions as usize, 3 * p.total_instances());
        assert_eq!(streamed.tsu.epochs, 3);
        assert_eq!(one.tsu.epochs, 1);
        // streaming is still deterministic, and three passes cost more
        // than two single passes (they share the wind-down of each pass)
        let again = m.with_epochs(3).run(&p, &src).unwrap();
        assert_eq!(streamed.cycles, again.cycles);
        assert!(streamed.cycles > 2 * one.cycles);
    }

    #[test]
    fn streaming_beyond_the_credit_window_is_a_protocol_error() {
        let p = fork_join(8);
        let src = app_work(1_000, 0, 0);
        let m = CellMachine::new(CellConfig::ps3().with_tsu(TsuConfig {
            window: 2,
            ..TsuConfig::default()
        }));
        assert!(m.with_epochs(2).run(&p, &src).is_ok());
        assert!(matches!(
            m.with_epochs(3).run(&p, &src),
            Err(CellError::Protocol(
                tflux_core::error::CoreError::WindowExhausted { .. }
            ))
        ));
    }

    #[test]
    fn multi_block_cell_program_completes() {
        let mut b = ProgramBuilder::new();
        for _ in 0..3 {
            let blk = b.block();
            b.thread(blk, ThreadSpec::new("w", 12));
        }
        let p = b.build().unwrap();
        let src = UniformCellWork {
            work: CellWork::compute(5_000, 1024),
        };
        let r = CellMachine::new(CellConfig::ps3()).run(&p, &src).unwrap();
        assert_eq!(r.instances, p.total_instances());
        assert_eq!(r.tsu.blocks_loaded, 3);
    }
}
