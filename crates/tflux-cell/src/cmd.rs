//! The CommandBuffer wire format.
//!
//! §4.3: each TSU owns a 128-byte CommandBuffer in main memory "which holds
//! the commands sent by the kernels executing on the corresponding SPE",
//! and "the addresses of these two buffers are the only information that a
//! Kernel needs, in order to communicate with its TSU". This module gives
//! that buffer a concrete encoding: fixed 16-byte records in a 128-byte
//! ring, so a buffer holds at most 8 in-flight commands — which is also the
//! back-pressure limit the machine model enforces.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tflux_core::ids::{Context, Epoch, Instance, ThreadId};

/// Size of one CommandBuffer in bytes (fixed by the paper).
pub const COMMAND_BUFFER_BYTES: usize = 128;
/// Size of one encoded command record.
pub const COMMAND_BYTES: usize = 16;
/// Maximum commands resident in one buffer.
pub const COMMAND_CAPACITY: usize = COMMAND_BUFFER_BYTES / COMMAND_BYTES;

/// A command a kernel sends to its TSU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// The given instance of the given epoch finished executing. The
    /// epoch token travels on the wire so the TSU Emulator can reject a
    /// command that arrives after its context slot re-armed for the next
    /// pass: the record's fourth word carries the low 32 bits of the
    /// epoch, which covers the full 30-bit tag space the SyncMemory
    /// state word validates against.
    Complete(Instance, Epoch),
    /// The kernel is idle and asks for work (used at startup).
    RequestWork,
    /// The kernel is shutting down (last block's outlet seen).
    Shutdown,
}

impl Command {
    /// Encode into exactly [`COMMAND_BYTES`] bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(COMMAND_BYTES);
        match self {
            Command::Complete(i, ep) => {
                b.put_u32(1);
                b.put_u32(i.thread.0);
                b.put_u32(i.context.0);
                b.put_u32(ep.0 as u32);
            }
            Command::RequestWork => {
                b.put_u32(2);
                b.put_bytes(0, 12);
            }
            Command::Shutdown => {
                b.put_u32(3);
                b.put_bytes(0, 12);
            }
        }
        debug_assert_eq!(b.len(), COMMAND_BYTES);
        b.freeze()
    }

    /// Decode from a [`COMMAND_BYTES`]-sized record.
    pub fn decode(mut bytes: Bytes) -> Option<Command> {
        if bytes.len() < COMMAND_BYTES {
            return None;
        }
        let tag = bytes.get_u32();
        match tag {
            1 => {
                let t = bytes.get_u32();
                let c = bytes.get_u32();
                let ep = bytes.get_u32();
                Some(Command::Complete(
                    Instance::new(ThreadId(t), Context(c)),
                    Epoch(ep as u64),
                ))
            }
            2 => Some(Command::RequestWork),
            3 => Some(Command::Shutdown),
            _ => None,
        }
    }
}

/// A 128-byte command ring, as allocated (one per TSU) in main memory.
#[derive(Debug, Default)]
pub struct CommandBuffer {
    records: Vec<Command>,
}

impl CommandBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        CommandBuffer {
            records: Vec::with_capacity(COMMAND_CAPACITY),
        }
    }

    /// Try to append a command; fails (back-pressure) when the 128-byte
    /// ring is full — the kernel must stall until the emulator drains.
    pub fn push(&mut self, cmd: Command) -> Result<(), Command> {
        if self.records.len() >= COMMAND_CAPACITY {
            return Err(cmd);
        }
        self.records.push(cmd);
        Ok(())
    }

    /// Drain all commands in arrival order.
    pub fn drain(&mut self) -> Vec<Command> {
        std::mem::take(&mut self.records)
    }

    /// Commands currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the buffer is at its 128-byte capacity.
    pub fn is_full(&self) -> bool {
        self.records.len() >= COMMAND_CAPACITY
    }

    /// Serialize the whole buffer as it would sit in main memory.
    pub fn as_memory(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(COMMAND_BUFFER_BYTES);
        for r in &self.records {
            b.extend_from_slice(&r.encode());
        }
        b.put_bytes(0, COMMAND_BUFFER_BYTES - b.len());
        b.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let cmds = [
            Command::Complete(Instance::new(ThreadId(7), Context(123)), Epoch(0)),
            Command::Complete(Instance::new(ThreadId(2), Context(9)), Epoch(41)),
            Command::RequestWork,
            Command::Shutdown,
        ];
        for c in cmds {
            assert_eq!(Command::decode(c.encode()), Some(c));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Command::decode(Bytes::from_static(&[0u8; 16])), None);
        assert_eq!(Command::decode(Bytes::from_static(&[1u8; 3])), None);
    }

    #[test]
    fn buffer_capacity_is_eight() {
        let mut b = CommandBuffer::new();
        for i in 0..8 {
            b.push(Command::Complete(
                Instance::new(ThreadId(i), Context(0)),
                Epoch(0),
            ))
            .unwrap();
        }
        assert!(b.is_full());
        assert!(b.push(Command::RequestWork).is_err());
        assert_eq!(b.drain().len(), 8);
        assert!(b.is_empty());
        b.push(Command::RequestWork).unwrap();
    }

    #[test]
    fn memory_image_is_exactly_128_bytes() {
        let mut b = CommandBuffer::new();
        b.push(Command::RequestWork).unwrap();
        let img = b.as_memory();
        assert_eq!(img.len(), COMMAND_BUFFER_BYTES);
        // first record decodes back
        assert_eq!(
            Command::decode(img.slice(0..COMMAND_BYTES)),
            Some(Command::RequestWork)
        );
        // rest is zero padding
        assert!(img[COMMAND_BYTES..].iter().all(|&x| x == 0));
    }
}
