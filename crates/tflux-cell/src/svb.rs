//! The SharedVariableBuffer (SVB).
//!
//! §4.3: "one shared buffer (SharedVariableBuffer) is used by all kernels
//! for transferring the values of the shared variables between DThreads.
//! ... the data produced is exported to the sharedVariableBuffer in the TSU
//! Emulator address space in main memory. Later, and before a new DThread
//! that consumes this data starts executing, this data is imported from the
//! sharedVariableBuffer into the SPE Local Store."
//!
//! This module is the allocator and layout of that buffer: every
//! (producer-instance, variable) pair gets a stable, DMA-aligned offset so
//! producers export and consumers import without coordination. The machine
//! model charges the *timing* of the transfers; this is the functional
//! contract the DDMCPP cell back-end's generated code addresses.

use std::collections::HashMap;
use tflux_core::ids::Instance;

/// DMA transfers on the Cell must be 16-byte aligned (and are fastest at
/// 128-byte alignment, which we use).
pub const DMA_ALIGN: u64 = 128;

/// One allocated slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SvbSlot {
    /// Byte offset inside the SVB.
    pub offset: u64,
    /// Allocated bytes (padded to [`DMA_ALIGN`]).
    pub len: u64,
}

/// The SharedVariableBuffer layout: an append-only allocator of aligned
/// slots keyed by (producer instance, variable name).
#[derive(Debug, Default)]
pub struct SharedVariableBuffer {
    slots: HashMap<(Instance, String), SvbSlot>,
    top: u64,
}

impl SharedVariableBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate (or return the existing) slot for `var` produced by `inst`.
    ///
    /// Idempotent: a second allocation for the same key returns the same
    /// slot, so producers and consumers can both resolve it independently.
    pub fn slot(&mut self, inst: Instance, var: &str, bytes: u64) -> SvbSlot {
        if let Some(s) = self.slots.get(&(inst, var.to_string())) {
            return *s;
        }
        let len = bytes.div_ceil(DMA_ALIGN).max(1) * DMA_ALIGN;
        let slot = SvbSlot {
            offset: self.top,
            len,
        };
        self.top += len;
        self.slots.insert((inst, var.to_string()), slot);
        slot
    }

    /// Look up a slot without allocating.
    pub fn find(&self, inst: Instance, var: &str) -> Option<SvbSlot> {
        self.slots.get(&(inst, var.to_string())).copied()
    }

    /// Total bytes the buffer occupies in main memory.
    pub fn size(&self) -> u64 {
        self.top
    }

    /// Number of allocated slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tflux_core::ids::{Context, ThreadId};

    fn inst(t: u32, c: u32) -> Instance {
        Instance::new(ThreadId(t), Context(c))
    }

    #[test]
    fn slots_are_aligned_and_disjoint() {
        let mut svb = SharedVariableBuffer::new();
        let a = svb.slot(inst(1, 0), "x", 100);
        let b = svb.slot(inst(1, 1), "x", 100);
        let c = svb.slot(inst(2, 0), "y", 1);
        for s in [a, b, c] {
            assert_eq!(s.offset % DMA_ALIGN, 0);
            assert_eq!(s.len % DMA_ALIGN, 0);
            assert!(s.len >= DMA_ALIGN);
        }
        // disjoint ranges
        // allocation order is ascending, so each slot must end before the
        // next begins
        let ranges = [(a.offset, a.len), (b.offset, b.len), (c.offset, c.len)];
        for w in ranges.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {ranges:?}");
        }
        assert_eq!(svb.size(), a.len + b.len + c.len);
    }

    #[test]
    fn allocation_is_idempotent() {
        let mut svb = SharedVariableBuffer::new();
        let first = svb.slot(inst(3, 4), "partial", 64);
        let again = svb.slot(inst(3, 4), "partial", 64);
        assert_eq!(first, again);
        assert_eq!(svb.len(), 1);
        assert_eq!(svb.find(inst(3, 4), "partial"), Some(first));
        assert_eq!(svb.find(inst(3, 4), "other"), None);
    }

    #[test]
    fn sizes_round_up_to_dma_granularity() {
        let mut svb = SharedVariableBuffer::new();
        assert_eq!(svb.slot(inst(0, 0), "a", 1).len, DMA_ALIGN);
        assert_eq!(svb.slot(inst(0, 1), "a", 128).len, 128);
        assert_eq!(svb.slot(inst(0, 2), "a", 129).len, 256);
        assert_eq!(svb.slot(inst(0, 3), "a", 0).len, DMA_ALIGN);
    }

    #[test]
    fn producer_consumer_rendezvous() {
        // the producer allocates; the consumer resolves the same slot from
        // the same key — no other coordination
        let mut svb = SharedVariableBuffer::new();
        let producer_view = svb.slot(inst(7, 2), "rows", 4096);
        let consumer_view = svb.find(inst(7, 2), "rows").expect("slot exists");
        assert_eq!(producer_view, consumer_view);
    }
}
