//! Cell/BE machine parameters.

use serde::{Deserialize, Serialize};
use tflux_core::tsu::TsuConfig;

/// Configuration of the simulated Cell/BE.
///
/// All latencies are in 3.2 GHz SPE cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Usable SPEs (the PS3 exposes 6 of 8: one disabled for yield, one
    /// reserved for the hypervisor, §6.3).
    pub spes: u32,
    /// Local Store bytes per SPE.
    pub ls_bytes: u64,
    /// Fixed cost of issuing one DMA transfer (list setup + tag wait).
    pub dma_setup: u64,
    /// DMA bandwidth: bytes moved per cycle once started.
    pub dma_bytes_per_cycle: u64,
    /// Latency of a mailbox message (PPE → SPE notification).
    pub mailbox_lat: u64,
    /// Latency for a kernel's command to land in its CommandBuffer in main
    /// memory (small DMA put).
    pub cmd_lat: u64,
    /// PPE cycles to process one TSU command (emulator software).
    pub ppe_op: u64,
    /// PPE cycles to scan one CommandBuffer during the round-robin poll
    /// loop (charged per command as the average scan cost).
    pub poll_scan: u64,
    /// Overlap each DThread's import DMA with the *previous* DThread's
    /// compute (double-buffering in the Local Store — the standard Cell
    /// optimization the paper's implementation leaves as future work).
    /// Requires spare LS for the second buffer, which the machine checks.
    pub double_buffer: bool,
    /// SPE compute throughput scale: numerator/denominator applied to a
    /// work model's generic compute cycles (SIMD-friendly kernels run
    /// faster per element on an SPE; scalar-heavy code slower).
    pub compute_scale_num: u64,
    /// See [`CellConfig::compute_scale_num`].
    pub compute_scale_den: u64,
    /// Configuration handed to the PPE-side TSU emulator (capacity,
    /// scheduling policy, completion-funnel flush policy).
    #[serde(default)]
    pub tsu: TsuConfig,
}

impl CellConfig {
    /// The paper's PS3 (§6.3): 6 usable SPEs, 256 KB Local Stores,
    /// emulator-on-PPE cost model.
    pub fn ps3() -> Self {
        CellConfig {
            spes: 6,
            ls_bytes: 256 * 1024,
            dma_setup: 300,
            dma_bytes_per_cycle: 8, // ~25.6 GB/s at 3.2 GHz
            mailbox_lat: 200,
            cmd_lat: 250,
            ppe_op: 600,
            poll_scan: 120,
            double_buffer: false,
            compute_scale_num: 1,
            compute_scale_den: 1,
            tsu: TsuConfig::default(),
        }
    }

    /// Override the SPE count (kernel configurations 2/4/6 in Fig. 7).
    pub fn with_spes(mut self, spes: u32) -> Self {
        self.spes = spes;
        self
    }

    /// Enable import/compute double-buffering.
    pub fn with_double_buffer(mut self, on: bool) -> Self {
        self.double_buffer = on;
        self
    }

    /// Override the PPE-side TSU emulator configuration (e.g. to enable
    /// completion funnels with [`tflux_core::tsu::FlushPolicy::Batch`]).
    pub fn with_tsu(mut self, tsu: TsuConfig) -> Self {
        self.tsu = tsu;
        self
    }

    /// Cycles to DMA `bytes` between main memory and a Local Store
    /// (excluding bus arbitration, which the machine adds).
    pub fn dma_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.dma_setup + bytes.div_ceil(self.dma_bytes_per_cycle.max(1))
    }

    /// Scaled SPE compute cycles for a generic compute amount.
    pub fn scale_compute(&self, cycles: u64) -> u64 {
        cycles * self.compute_scale_num / self.compute_scale_den.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps3_matches_paper() {
        let c = CellConfig::ps3();
        assert_eq!(c.spes, 6);
        assert_eq!(c.ls_bytes, 256 * 1024);
    }

    #[test]
    fn dma_costs_setup_plus_bandwidth() {
        let c = CellConfig::ps3();
        assert_eq!(c.dma_cycles(0), 0);
        assert_eq!(c.dma_cycles(8), c.dma_setup + 1);
        assert_eq!(c.dma_cycles(16 * 1024), c.dma_setup + 2048);
    }

    #[test]
    fn spe_override() {
        assert_eq!(CellConfig::ps3().with_spes(2).spes, 2);
    }

    #[test]
    fn compute_scaling() {
        let mut c = CellConfig::ps3();
        c.compute_scale_num = 3;
        c.compute_scale_den = 2;
        assert_eq!(c.scale_compute(100), 150);
    }
}
