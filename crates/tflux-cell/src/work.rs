//! Cell work models: what one DThread instance costs on an SPE.

use tflux_core::ids::Instance;

/// Cost description of one instance on an SPE.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellWork {
    /// Compute cycles executed from the Local Store.
    pub compute: u64,
    /// Bytes imported from the SharedVariableBuffer before starting.
    pub import_bytes: u64,
    /// Bytes exported to the SharedVariableBuffer after completing.
    pub export_bytes: u64,
    /// Peak Local Store footprint: code + buffers + imported data.
    pub ls_bytes: u64,
}

impl CellWork {
    /// Compute-only work with a given footprint.
    pub fn compute(cycles: u64, ls_bytes: u64) -> Self {
        CellWork {
            compute: cycles,
            ls_bytes,
            ..Default::default()
        }
    }
}

/// Produces the Cell cost of every instance of a program. Inlet/outlet
/// instances should be zero-cost.
pub trait CellWorkSource {
    /// The cost of `inst`.
    fn work(&self, inst: Instance) -> CellWork;
}

/// Fixed cost per instance (tests, microbenchmarks).
#[derive(Clone, Copy, Debug)]
pub struct UniformCellWork {
    /// Cost applied to every instance.
    pub work: CellWork,
}

impl CellWorkSource for UniformCellWork {
    fn work(&self, _inst: Instance) -> CellWork {
        self.work
    }
}

/// Closure adapter.
pub struct FnCellWork<F>(pub F);

impl<F: Fn(Instance) -> CellWork> CellWorkSource for FnCellWork<F> {
    fn work(&self, inst: Instance) -> CellWork {
        (self.0)(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tflux_core::ids::{Context, ThreadId};

    #[test]
    fn uniform_source() {
        let s = UniformCellWork {
            work: CellWork::compute(100, 4096),
        };
        let w = s.work(Instance::new(ThreadId(0), Context(1)));
        assert_eq!(w.compute, 100);
        assert_eq!(w.ls_bytes, 4096);
        assert_eq!(w.import_bytes, 0);
    }

    #[test]
    fn fn_source() {
        let s = FnCellWork(|i: Instance| CellWork {
            compute: i.context.0 as u64,
            import_bytes: 64,
            export_bytes: 32,
            ls_bytes: 128,
        });
        assert_eq!(s.work(Instance::new(ThreadId(0), Context(9))).compute, 9);
    }
}
