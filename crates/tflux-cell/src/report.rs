//! TFluxCell execution reports.

use serde::{Deserialize, Serialize};
use tflux_core::tsu::TsuStats;

/// The outcome of one simulated TFluxCell execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellReport {
    /// Total execution time in SPE cycles.
    pub cycles: u64,
    /// Per-SPE cycles spent computing DThread bodies.
    pub spe_busy: Vec<u64>,
    /// Per-SPE cycles spent in DMA import/export.
    pub spe_dma: Vec<u64>,
    /// Per-SPE cycles spent waiting on the mailbox.
    pub spe_idle: Vec<u64>,
    /// PPE cycles spent running the TSU Emulator.
    pub ppe_busy: u64,
    /// TSU state-machine counters.
    pub tsu: TsuStats,
    /// Commands processed by the emulator.
    pub commands: u64,
    /// Times a kernel stalled because its CommandBuffer was full.
    pub cmd_stalls: u64,
    /// DThread instances executed.
    pub instances: usize,
    /// Peak Local Store bytes used by any instance.
    pub peak_ls: u64,
}

impl CellReport {
    /// Speedup over a sequential baseline.
    pub fn speedup_over(&self, seq: &CellReport) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            seq.cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of SPE time spent in DMA.
    pub fn dma_fraction(&self) -> f64 {
        let dma: u64 = self.spe_dma.iter().sum();
        let total: u64 =
            dma + self.spe_busy.iter().sum::<u64>() + self.spe_idle.iter().sum::<u64>();
        if total == 0 {
            0.0
        } else {
            dma as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(cycles: u64, busy: u64, dma: u64, idle: u64) -> CellReport {
        CellReport {
            cycles,
            spe_busy: vec![busy],
            spe_dma: vec![dma],
            spe_idle: vec![idle],
            ppe_busy: 0,
            tsu: TsuStats::default(),
            commands: 0,
            cmd_stalls: 0,
            instances: 0,
            peak_ls: 0,
        }
    }

    #[test]
    fn speedup_and_dma_fraction() {
        let seq = r(1000, 1000, 0, 0);
        let par = r(200, 100, 50, 50);
        assert!((par.speedup_over(&seq) - 5.0).abs() < 1e-12);
        assert!((par.dma_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_no_division_by_zero() {
        let z = r(0, 0, 0, 0);
        assert_eq!(z.speedup_over(&z), 0.0);
        assert_eq!(z.dma_fraction(), 0.0);
    }
}
