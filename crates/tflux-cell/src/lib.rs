//! # tflux-cell — TFluxCell, the simulated Cell/BE platform
//!
//! A deterministic model of §4.3 of the TFlux paper: a Sony PS3-class
//! Cell/BE with one **PPE** running the software TSU Emulator and six
//! usable **SPEs** running kernels out of their 256 KB Local Stores.
//!
//! The Cell-specific mechanisms the paper describes are all modeled:
//!
//! * **CommandBuffer** — a 128-byte per-TSU buffer in main memory where a
//!   kernel "places a command ... whenever a DThread needs to notify its
//!   TSU of any event" ([`cmd::CommandBuffer`] also provides the concrete
//!   wire encoding, exercised by the DDMCPP cell back-end);
//! * **SharedVariableBuffer** — produced data is *exported* to main memory
//!   after a DThread completes and *imported* into the consumer SPE's Local
//!   Store before it starts, via DMA ([`work::CellWork`] carries the byte
//!   counts; the DMA engine charges setup plus bandwidth, serialized over
//!   the element-interconnect bus);
//! * **mailboxes** — the kernel "waits on a mailbox for the information
//!   about the next DThread to be executed"; the PPE-side emulator polls
//!   the CommandBuffers round-robin and answers through them;
//! * **Local Store capacity** — an instance whose footprint exceeds the LS
//!   is a hard error ([`machine::CellError::LocalStoreOverflow`]), which is
//!   exactly why the paper could not run QSORT beyond its Medium size on
//!   the PS3 (§6.3).
//!
//! Scheduling comes from the same [`CoreTsu`](tflux_core::CoreTsu)
//! composition of TSU units as every other TFlux platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmd;
pub mod config;
pub mod machine;
pub mod report;
pub mod svb;
pub mod work;

pub use config::CellConfig;
pub use machine::{CellError, CellMachine};
pub use report::CellReport;
pub use svb::SharedVariableBuffer;
pub use work::{CellWork, CellWorkSource};
