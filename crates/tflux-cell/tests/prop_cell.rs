//! Property tests of the Cell machine: arbitrary layered programs with
//! arbitrary (LS-feasible) costs always complete, deterministically, with
//! consistent accounting.

use proptest::prelude::*;
use tflux_cell::work::{CellWork, FnCellWork};
use tflux_cell::{CellConfig, CellMachine};
use tflux_core::prelude::*;

#[derive(Debug, Clone)]
struct Desc {
    layers: Vec<u32>,
    blocks: u32,
    spes: u32,
    compute: u64,
    import: u64,
    export: u64,
    double_buffer: bool,
}

fn desc() -> impl Strategy<Value = Desc> {
    (
        prop::collection::vec(1u32..8, 1..4),
        1u32..3,
        1u32..7,
        10u64..100_000,
        0u64..32_768,
        0u64..16_384,
        any::<bool>(),
    )
        .prop_map(
            |(layers, blocks, spes, compute, import, export, double_buffer)| Desc {
                layers,
                blocks,
                spes,
                compute,
                import,
                export,
                double_buffer,
            },
        )
}

fn build(d: &Desc) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    for _ in 0..d.blocks {
        let blk = b.block();
        let mut prev: Option<ThreadId> = None;
        for (li, &arity) in d.layers.iter().enumerate() {
            let t = b.thread(blk, ThreadSpec::new(format!("l{li}"), arity));
            if let Some(p) = prev {
                b.arc(p, t, ArcMapping::All).unwrap();
            }
            prev = Some(t);
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cell_machine_completes_and_accounts(d in desc()) {
        let p = build(&d);
        let w = CellWork {
            compute: d.compute,
            import_bytes: d.import,
            export_bytes: d.export,
            ls_bytes: 32 * 1024 + d.import + d.export,
        };
        let src = FnCellWork(move |_: Instance| w);
        let m = CellMachine::new(
            CellConfig::ps3()
                .with_spes(d.spes)
                .with_double_buffer(d.double_buffer),
        );
        let r = m.run(&p, &src).expect("feasible run");
        prop_assert_eq!(r.instances, p.total_instances());
        prop_assert_eq!(r.tsu.completions as usize, p.total_instances());
        prop_assert_eq!(r.commands as usize, p.total_instances());
        // busy time accounting: every instance contributed its compute
        let busy: u64 = r.spe_busy.iter().sum();
        prop_assert_eq!(busy, d.compute * p.total_instances() as u64);
        // and the wall clock cannot beat perfect parallelism of compute
        prop_assert!(r.cycles * d.spes as u64 >= busy);

        // deterministic
        let r2 = m.run(&p, &src).expect("second run");
        prop_assert_eq!(r.cycles, r2.cycles);
    }

    #[test]
    fn double_buffering_never_slows_a_run(
        arity in 4u32..32,
        compute in 1_000u64..100_000,
        import in 0u64..32_768,
    ) {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::new("w", arity));
        let p = b.build().unwrap();
        let w = CellWork {
            compute,
            import_bytes: import,
            export_bytes: 512,
            ls_bytes: 48 * 1024 + import,
        };
        let src = FnCellWork(move |_: Instance| w);
        let plain = CellMachine::new(CellConfig::ps3()).run(&p, &src).unwrap();
        let db = CellMachine::new(CellConfig::ps3().with_double_buffer(true))
            .run(&p, &src)
            .unwrap();
        prop_assert!(
            db.cycles <= plain.cycles,
            "double buffering slowed {} -> {}",
            plain.cycles,
            db.cycles
        );
    }
}
