//! Mathematical property tests of the workload implementations — the
//! algorithms themselves, independent of any platform.

use proptest::prelude::*;
use tflux_workloads::fft::{self, Cpx};
use tflux_workloads::{mmult, qsort, susan, trapez};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT is linear: FFT(a + b) = FFT(a) + FFT(b).
    #[test]
    fn fft_is_linear(
        re_a in prop::collection::vec(-10.0f64..10.0, 16),
        re_b in prop::collection::vec(-10.0f64..10.0, 16),
    ) {
        let a: Vec<Cpx> = re_a.iter().map(|&r| Cpx::new(r, -r * 0.5)).collect();
        let b: Vec<Cpx> = re_b.iter().map(|&r| Cpx::new(r * 0.3, r)).collect();
        let mut sum: Vec<Cpx> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| Cpx::new(x.re + y.re, x.im + y.im))
            .collect();
        let (mut fa, mut fb) = (a, b);
        fft::fft_inplace(&mut fa);
        fft::fft_inplace(&mut fb);
        fft::fft_inplace(&mut sum);
        for k in 0..16 {
            prop_assert!((sum[k].re - (fa[k].re + fb[k].re)).abs() < 1e-9);
            prop_assert!((sum[k].im - (fa[k].im + fb[k].im)).abs() < 1e-9);
        }
    }

    /// Parseval: sum |x|^2 = (1/N) sum |X|^2 for the unnormalized DFT.
    #[test]
    fn fft_satisfies_parseval(
        re in prop::collection::vec(-10.0f64..10.0, 32),
        im in prop::collection::vec(-10.0f64..10.0, 32),
    ) {
        let x: Vec<Cpx> = re.iter().zip(&im).map(|(&r, &i)| Cpx::new(r, i)).collect();
        let time_energy: f64 = x.iter().map(|c| c.re * c.re + c.im * c.im).sum();
        let mut fx = x;
        fft::fft_inplace(&mut fx);
        let freq_energy: f64 =
            fx.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / 32.0;
        prop_assert!(
            (time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy),
            "{} vs {}", time_energy, freq_energy
        );
    }

    /// MMULT with the identity matrix is the identity.
    #[test]
    fn mmult_identity(n in 1usize..24) {
        let (a, _) = mmult::inputs(n);
        let mut id = vec![0.0; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let right = mmult::seq(&a, &id, n);
        let left = mmult::seq(&id, &a, n);
        prop_assert_eq!(right.as_slice(), a.as_slice());
        prop_assert_eq!(left.as_slice(), a.as_slice());
    }

    /// QSORT output is a sorted permutation of the input.
    #[test]
    fn qsort_output_is_sorted_permutation(n in 1usize..2_000) {
        let input = qsort::input(n);
        let out = qsort::seq(n);
        prop_assert_eq!(out.len(), n);
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let mut expect = input;
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    /// TRAPEZ error shrinks ~quadratically when doubling the interval
    /// count (the trapezoid rule is O(h^2)).
    #[test]
    fn trapez_converges_quadratically(k in 8u32..14) {
        let coarse = (trapez::seq(1 << k) - std::f64::consts::PI).abs();
        let fine = (trapez::seq(1 << (k + 1)) - std::f64::consts::PI).abs();
        // allow slack for rounding at very fine grids
        prop_assert!(fine < coarse * 0.3 + 1e-12, "coarse {}, fine {}", coarse, fine);
    }

    /// SUSAN smoothing stays within the input's value range and leaves
    /// borders untouched.
    #[test]
    fn susan_respects_range_and_borders(w in 12usize..40, h in 12usize..32) {
        let lut = susan::brightness_lut();
        let mut img = Vec::with_capacity(w * h);
        for y in 0..h {
            img.extend_from_slice(&susan::gen_row(w, h, y));
        }
        let out = susan::smooth_band(&img, w, h, 0, h, &lut);
        let (min, max) = img.iter().fold((255u8, 0u8), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        for (idx, (&o, &i)) in out.iter().zip(&img).enumerate() {
            let (x, y) = (idx % w, idx / w);
            let border = x < susan::RADIUS
                || x >= w - susan::RADIUS
                || y < susan::RADIUS
                || y >= h - susan::RADIUS;
            if border {
                prop_assert_eq!(o, i, "border pixel changed at ({},{})", x, y);
            } else {
                prop_assert!(o >= min && o <= max, "({},{}): {} outside [{},{}]", x, y, o, min, max);
            }
        }
    }

    /// The 2-D DDM FFT equals row-FFT -> transpose -> row-FFT -> transpose.
    #[test]
    fn fft2d_matches_transpose_formulation(seed in 0u64..100) {
        let n = 16usize;
        let _ = seed;
        let (m, _) = fft::seq(n);
        // transpose formulation on the same input
        let mut t = fft::input(n);
        for r in 0..n {
            fft::fft_inplace(&mut t[r * n..(r + 1) * n]);
        }
        let mut tt = vec![Cpx::default(); n * n];
        for r in 0..n {
            for c in 0..n {
                tt[c * n + r] = t[r * n + c];
            }
        }
        for r in 0..n {
            fft::fft_inplace(&mut tt[r * n..(r + 1) * n]);
        }
        let mut back = vec![Cpx::default(); n * n];
        for r in 0..n {
            for c in 0..n {
                back[c * n + r] = tt[r * n + c];
            }
        }
        for (a, b) in m.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }
}
