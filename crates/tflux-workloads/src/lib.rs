//! # tflux-workloads — the paper's benchmark suite
//!
//! The five benchmarks of Table 1, each implemented three ways:
//!
//! 1. a **sequential reference** (`seq_*` functions) — the real
//!    computation, used as the correctness oracle and as the conceptual
//!    baseline of the speedup figures;
//! 2. a **DDM decomposition for the real runtime** (`run_ddm` functions) —
//!    builds a [`DdmProgram`](tflux_core::DdmProgram) with actual Rust
//!    bodies, runs it on `tflux-runtime`, and returns the computed result
//!    so tests can check it bit-for-bit against the reference. Data moves
//!    between DThreads through explicit
//!    [`SharedVar`](tflux_runtime::SharedVar) slots — the same
//!    produce/export → import/consume discipline TFluxCell uses;
//! 3. **platform cost models** (`sim_*` / `cell_*` functions) — the same
//!    decomposition expressed as cache-line-granular access traces for
//!    `tflux-sim` and DMA/compute costs for `tflux-cell`, which is what the
//!    figure harness sweeps. These model the paper's in-place C
//!    decomposition (workers write results directly into shared arrays).
//!
//! | Benchmark | Source (paper) | Decomposition |
//! |-----------|----------------|---------------|
//! | TRAPEZ | custom kernel \[15\] | chunked quadrature + reduction; near-zero data transfer |
//! | MMULT | custom kernel \[15\] | row-blocked matrix multiply; coherency-miss bound |
//! | QSORT | MiBench | init → partition sorters → two-level merge tree |
//! | SUSAN | MiBench | three independently-parallelized phases (init, smooth, write-out) as three DDM blocks |
//! | FFT | NAS | 2-D FFT: row-FFT phase, column-FFT phase, checksum — phases synchronize through block boundaries |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod fft;
pub mod mmult;
pub mod qsort;
pub mod setup;
pub mod sizes;
pub mod susan;
pub mod trapez;

pub use common::Params;
pub use sizes::{Platform, SizeClass};

/// The five benchmarks, as an enum for harness dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Bench {
    /// Trapezoidal-rule integration.
    Trapez,
    /// Matrix multiply.
    Mmult,
    /// Array sorting (MiBench qsort).
    Qsort,
    /// Image smoothing (MiBench SUSAN).
    Susan,
    /// 2-D FFT on a complex matrix (NAS).
    Fft,
}

impl Bench {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Bench; 5] = [
        Bench::Trapez,
        Bench::Mmult,
        Bench::Qsort,
        Bench::Susan,
        Bench::Fft,
    ];

    /// The benchmarks run on TFluxCell (Fig. 7 omits FFT).
    pub const CELL: [Bench; 4] = [Bench::Trapez, Bench::Mmult, Bench::Qsort, Bench::Susan];

    /// Display name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            Bench::Trapez => "TRAPEZ",
            Bench::Mmult => "MMULT",
            Bench::Qsort => "QSORT",
            Bench::Susan => "SUSAN",
            Bench::Fft => "FFT",
        }
    }
}
