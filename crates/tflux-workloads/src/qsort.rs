//! QSORT: array sorting (MiBench).
//!
//! §6.1.2: "In QSORT each DThread sorts one part of the array. At the end,
//! these sorted sub-arrays are merged to produce the final one. This last
//! phase is the bottleneck ... The current application is written with a
//! two-level tree to do the merging."
//!
//! Decomposition: a scalar **init** DThread fills the array (§6.2.2 — "one
//! CPU initializes the array", whose cache-transfer cost produces the
//! native QSORT anomaly); `P = 2 × kernels` **sorter** DThreads each sort
//! one partition; a first merge level of `P/2` pair-mergers; and a scalar
//! final merge — exactly two tree levels.

use crate::common::{Params, Region};
use crate::sizes::qsort_n;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tflux_cell::work::{CellWork, CellWorkSource};
use tflux_core::prelude::*;
use tflux_runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
use tflux_sim::work::{InstanceWork, WorkSource};

/// Deterministic input array.
pub fn input(n: usize) -> Vec<i32> {
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
}

/// Sequential reference: sort a copy of the input.
pub fn seq(n: usize) -> Vec<i32> {
    let mut v = input(n);
    v.sort_unstable();
    v
}

/// Number of sorter partitions for a kernel count (`P`, always even ≥ 4).
pub fn partitions(kernels: u32) -> u32 {
    (2 * kernels).max(4) & !1
}

/// Thread ids of the QSORT program.
pub struct QsortIds {
    /// Array initialization (scalar).
    pub init: ThreadId,
    /// Partition sorters (arity `P`).
    pub sort: ThreadId,
    /// First merge level (arity `P/2`).
    pub merge1: ThreadId,
    /// Final merge (scalar).
    pub merge2: ThreadId,
}

/// Build the DDM program.
pub fn program(p: &Params) -> (DdmProgram, QsortIds) {
    let parts = partitions(p.kernels);
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let init = b.thread(blk, ThreadSpec::scalar("qsort.init"));
    let sort = b.thread(blk, ThreadSpec::new("qsort.sort", parts));
    let merge1 = b.thread(blk, ThreadSpec::new("qsort.merge1", parts / 2));
    let merge2 = b.thread(blk, ThreadSpec::scalar("qsort.merge2"));
    b.arc(init, sort, ArcMapping::Broadcast).expect("arc");
    b.arc(sort, merge1, ArcMapping::Group { factor: 2 })
        .expect("arc");
    b.arc(merge1, merge2, ArcMapping::Reduction).expect("arc");
    (
        b.build().expect("qsort program"),
        QsortIds {
            init,
            sort,
            merge1,
            merge2,
        },
    )
}

/// Partition bounds of sorter `ctx` over `n` elements in `parts` parts.
fn part_bounds(n: usize, parts: u32, ctx: u32) -> (usize, usize) {
    let per = n.div_ceil(parts as usize);
    let lo = (ctx as usize * per).min(n);
    let hi = (lo + per).min(n);
    (lo, hi)
}

/// Merge two sorted runs.
fn merge2way(a: &[i32], b: &[i32]) -> Vec<i32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Heap-based k-way merge of sorted runs (O(n log k) — the final DThread's
/// algorithm, and the model the trace generator charges).
fn merge_kway(runs: Vec<Vec<i32>>) -> Vec<i32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut heap: BinaryHeap<Reverse<(i32, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(ri, r)| Reverse((r[0], ri, 0)))
        .collect();
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((v, ri, i))) = heap.pop() {
        out.push(v);
        if i + 1 < runs[ri].len() {
            heap.push(Reverse((runs[ri][i + 1], ri, i + 1)));
        }
    }
    out
}

/// Run QSORT on the real runtime; returns the sorted array.
pub fn run_ddm(p: &Params) -> Vec<i32> {
    let n = qsort_n(p.size, p.platform);
    let parts = partitions(p.kernels);
    let (prog, ids) = program(p);

    let data = SharedVar::<Vec<i32>>::scalar();
    let sorted = SharedVar::<Vec<i32>>::new(parts);
    let m1 = SharedVar::<Vec<i32>>::new(parts / 2);
    let fin = SharedVar::<Vec<i32>>::scalar();

    let mut bodies = BodyTable::new(&prog);
    let (dref, sref, m1ref, fref) = (&data, &sorted, &m1, &fin);
    bodies.set(ids.init, move |_| {
        dref.put(Context(0), input(n));
    });
    bodies.set(ids.sort, move |ctx| {
        let (lo, hi) = part_bounds(n, parts, ctx.context.0);
        let mut v = dref.value()[lo..hi].to_vec();
        v.sort_unstable();
        sref.put(ctx.context, v);
    });
    bodies.set(ids.merge1, move |ctx| {
        let g = ctx.context.0;
        let a = sref.get(Context(2 * g));
        let b = sref.get(Context(2 * g + 1));
        m1ref.put(ctx.context, merge2way(a, b));
    });
    bodies.set(ids.merge2, move |_| {
        let runs: Vec<Vec<i32>> = m1ref.iter().cloned().collect();
        fref.put(Context(0), merge_kway(runs));
    });

    Runtime::new(RuntimeConfig::with_kernels(p.kernels))
        .run(&prog, &bodies)
        .expect("qsort run");
    drop(bodies);
    fin.into_values().remove(0).expect("final produced")
}

/// Comparison cost (cycles) per element per quicksort pass. MiBench's
/// qsort benchmarks compare records through a callback (string / 3-D
/// vector distance), so a comparison is tens of cycles, not one.
const CYCLES_PER_CMP: u64 = 45;
/// Cycles per element merged per heap level (adjust + copy; merging
/// compares keys directly, without the record-compare callback).
const CYCLES_PER_MERGE: u64 = 12;
/// Cycles per element initialized (PRNG + store).
const CYCLES_PER_INIT: u64 = 10;

/// Simulator trace model. The array lives at 256 MB; merge scratch at
/// 512 MB; final output at 768 MB.
pub struct QsortModel {
    n: usize,
    parts: u32,
    ids: QsortIds,
    arr: Region,
    scratch: Region,
    fin: Region,
}

/// Build the simulator work source.
pub fn sim_source(p: &Params, ids: QsortIds) -> QsortModel {
    QsortModel {
        n: qsort_n(p.size, p.platform),
        parts: partitions(p.kernels),
        ids,
        arr: Region::new(0x1000_0000, 4),
        scratch: Region::new(0x2000_0000, 4),
        fin: Region::new(0x3000_0000, 4),
    }
}

impl WorkSource for QsortModel {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        let n = self.n as u64;
        if inst.thread == self.ids.init {
            // one core writes the whole array — the §6.2.2 communication
            // trade-off source
            self.arr.scan(out, 0, n, true);
            out.compute = n * CYCLES_PER_INIT;
        } else if inst.thread == self.ids.sort {
            let (lo, hi) = part_bounds(self.n, self.parts, inst.context.0);
            let m = (hi - lo) as u64;
            let passes = (64 - m.leading_zeros() as u64).max(1);
            for _ in 0..passes {
                self.arr.scan(out, lo as u64, hi as u64, false);
                self.arr.scan(out, lo as u64, hi as u64, true);
            }
            // ~1.4 n log n compare-swaps for randomized quicksort
            out.compute = m * passes * CYCLES_PER_CMP * 7 / 5;
        } else if inst.thread == self.ids.merge1 {
            let g = inst.context.0;
            let (lo, _) = part_bounds(self.n, self.parts, 2 * g);
            let (_, hi) = part_bounds(self.n, self.parts, 2 * g + 1);
            self.arr.scan(out, lo as u64, hi as u64, false);
            self.scratch.scan(out, lo as u64, hi as u64, true);
            out.compute = (hi - lo) as u64 * CYCLES_PER_MERGE;
        } else if inst.thread == self.ids.merge2 {
            self.scratch.scan(out, 0, n, false);
            self.fin.scan(out, 0, n, true);
            // heap-based k-way merge: log2(runs) heap levels per element
            let runs = (self.parts as u64 / 2).max(2);
            let log_runs = 64 - (runs - 1).leading_zeros() as u64;
            out.compute = n * CYCLES_PER_MERGE * log_runs.max(1);
        }
    }
}

/// How much slower branchy, pointer-chasing scalar code runs on an SPE
/// than on the PPE: the SPE has no branch predictor and no scalar
/// load/store path, so quicksort-style code pays a heavy penalty (~2x). The
/// sequential baseline runs on the PPE (the paper's baseline uses "the
/// same processor", i.e. the Cell's general-purpose core), which is why
/// the paper's Cell QSORT speedups stay at 1.3–2.1 even on 6 SPEs.
const SPE_SCALAR_PENALTY: u64 = 2;

/// Cell cost model. The final merge must hold the whole array (in + out)
/// in the Local Store — the reason the paper caps Cell QSORT at 12 K
/// elements.
pub struct QsortCellModel {
    n: usize,
    parts: u32,
    ids: QsortIds,
}

/// Build the Cell work source.
pub fn cell_source(p: &Params, ids: QsortIds) -> QsortCellModel {
    QsortCellModel {
        n: qsort_n(p.size, p.platform),
        parts: partitions(p.kernels),
        ids,
    }
}

impl CellWorkSource for QsortCellModel {
    fn work(&self, inst: Instance) -> CellWork {
        let n = self.n as u64;
        if inst.thread == self.ids.init {
            CellWork {
                compute: n * CYCLES_PER_INIT * 2,
                import_bytes: 0,
                export_bytes: n * 4,
                ls_bytes: 32 * 1024 + n * 4,
            }
        } else if inst.thread == self.ids.sort {
            let (lo, hi) = part_bounds(self.n, self.parts, inst.context.0);
            let m = (hi - lo) as u64;
            let passes = (64 - m.leading_zeros() as u64).max(1);
            CellWork {
                compute: m * passes * CYCLES_PER_CMP * 7 / 5 * SPE_SCALAR_PENALTY,
                import_bytes: m * 4,
                export_bytes: m * 4,
                ls_bytes: 32 * 1024 + m * 4,
            }
        } else if inst.thread == self.ids.merge1 {
            let g = inst.context.0;
            let (lo, _) = part_bounds(self.n, self.parts, 2 * g);
            let (_, hi) = part_bounds(self.n, self.parts, 2 * g + 1);
            let m = (hi - lo) as u64;
            CellWork {
                compute: m * CYCLES_PER_MERGE * SPE_SCALAR_PENALTY,
                import_bytes: m * 4,
                export_bytes: m * 4,
                ls_bytes: 32 * 1024 + 2 * m * 4,
            }
        } else if inst.thread == self.ids.merge2 {
            let runs = (self.parts as u64 / 2).max(2);
            let log_runs = (64 - (runs - 1).leading_zeros() as u64).max(1);
            CellWork {
                compute: n * CYCLES_PER_MERGE * log_runs * SPE_SCALAR_PENALTY,
                import_bytes: n * 4,
                export_bytes: n * 4,
                ls_bytes: 32 * 1024 + 2 * n * 4,
            }
        } else {
            CellWork::default()
        }
    }
}

/// Build a QSORT program with a merge tree of configurable depth — the
/// §6.1.2 exploration: "Trees of bigger depth would result in higher
/// parallelism but may not be always beneficial as the number of steps
/// would increase as well." Depth 2 is the paper's shipped configuration
/// ([`program`]); this generalization lets the harness sweep it.
///
/// Level `l` has `P / 2^l` pair-mergers; the final level is a scalar
/// merging the remaining runs. `depth` counts the pair-merge levels (0 =
/// sort then one big k-way merge).
pub fn program_with_depth(p: &Params, depth: u32) -> (DdmProgram, QsortTreeIds) {
    let parts = partitions(p.kernels);
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let init = b.thread(blk, ThreadSpec::scalar("qsort.init"));
    let sort = b.thread(blk, ThreadSpec::new("qsort.sort", parts));
    b.arc(init, sort, ArcMapping::Broadcast).expect("arc");
    let mut levels = Vec::new();
    let mut prev = sort;
    let mut width = parts;
    for l in 0..depth {
        if width < 2 {
            break;
        }
        let next_width = width.div_ceil(2);
        let level = b.thread(
            blk,
            ThreadSpec::new(format!("qsort.merge.l{l}"), next_width),
        );
        b.arc(prev, level, ArcMapping::Group { factor: 2 })
            .expect("arc");
        levels.push(level);
        prev = level;
        width = next_width;
    }
    let fin = b.thread(blk, ThreadSpec::scalar("qsort.final"));
    if width > 1 {
        b.arc(prev, fin, ArcMapping::Reduction).expect("arc");
    } else {
        b.arc(prev, fin, ArcMapping::OneToOne).expect("arc");
    }
    (
        b.build().expect("qsort tree program"),
        QsortTreeIds {
            init,
            sort,
            levels,
            fin,
        },
    )
}

/// Thread ids of a [`program_with_depth`] QSORT program.
pub struct QsortTreeIds {
    /// Array initialization.
    pub init: ThreadId,
    /// Partition sorters.
    pub sort: ThreadId,
    /// Pair-merge levels, outermost first.
    pub levels: Vec<ThreadId>,
    /// Final merge (scalar).
    pub fin: ThreadId,
}

/// Simulator model for the depth-configurable tree.
pub struct QsortTreeModel {
    n: usize,
    parts: u32,
    ids: QsortTreeIds,
    arr: Region,
    scratch: Region,
}

/// Build the tree-model work source.
pub fn tree_sim_source(p: &Params, ids: QsortTreeIds) -> QsortTreeModel {
    QsortTreeModel {
        n: qsort_n(p.size, p.platform),
        parts: partitions(p.kernels),
        ids,
        arr: Region::new(0x1000_0000, 4),
        scratch: Region::new(0x2000_0000, 4),
    }
}

impl WorkSource for QsortTreeModel {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        let n = self.n as u64;
        if inst.thread == self.ids.init {
            self.arr.scan(out, 0, n, true);
            out.compute = n * CYCLES_PER_INIT;
        } else if inst.thread == self.ids.sort {
            let (lo, hi) = part_bounds(self.n, self.parts, inst.context.0);
            let m = (hi - lo) as u64;
            let passes = (64 - m.leading_zeros() as u64).max(1);
            for _ in 0..passes {
                self.arr.scan(out, lo as u64, hi as u64, false);
                self.arr.scan(out, lo as u64, hi as u64, true);
            }
            out.compute = m * passes * CYCLES_PER_CMP * 7 / 5;
        } else if let Some(level) = self.ids.levels.iter().position(|&l| l == inst.thread) {
            // a level-l merger merges 2^(l+1) original partitions
            let span = 1u64 << (level as u64 + 1);
            let per = n.div_ceil(self.parts as u64);
            let lo = inst.context.0 as u64 * span * per;
            let hi = ((inst.context.0 as u64 + 1) * span * per).min(n);
            let m = hi.saturating_sub(lo);
            self.arr.scan(out, lo, hi, false);
            self.scratch.scan(out, lo, hi, true);
            out.compute = m * CYCLES_PER_MERGE;
        } else if inst.thread == self.ids.fin {
            let levels = self.ids.levels.len() as u32;
            let mut runs = self.parts;
            for _ in 0..levels {
                runs = runs.div_ceil(2);
            }
            let runs = runs.max(1) as u64;
            let log_runs = (64 - (runs.max(2) - 1).leading_zeros() as u64).max(1);
            self.scratch.scan(out, 0, n, false);
            self.arr.scan(out, 0, n, true);
            out.compute = n * CYCLES_PER_MERGE * log_runs;
        }
    }
}

/// The *original sequential program* model (the paper's baseline, §5:
/// "the baseline program is the original sequential one"): init plus one
/// full-array quicksort — note this does strictly *less* total work than
/// the DDM decomposition, which adds the merge phases.
pub struct QsortSeqModel {
    n: usize,
    work: ThreadId,
    arr: Region,
}

/// Build the sequential-baseline program (a single scalar thread) and its
/// model.
pub fn seq_sim_program(p: &Params) -> (DdmProgram, QsortSeqModel) {
    let n = qsort_n(p.size, p.platform);
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::scalar("qsort.seq"));
    (
        b.build().expect("qsort seq program"),
        QsortSeqModel {
            n,
            work,
            arr: Region::new(0x1000_0000, 4),
        },
    )
}

impl WorkSource for QsortSeqModel {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        if inst.thread != self.work {
            return;
        }
        let n = self.n as u64;
        // init
        self.arr.scan(out, 0, n, true);
        // full-array quicksort: ~1.4 n log2 n record compares
        let passes = (64 - n.leading_zeros() as u64).max(1);
        for _ in 0..passes {
            self.arr.scan(out, 0, n, false);
            self.arr.scan(out, 0, n, true);
        }
        out.compute = n * CYCLES_PER_INIT + n * passes * CYCLES_PER_CMP * 7 / 5;
    }
}

/// Cell-side sequential baseline: init + full quicksort on one SPE.
pub struct QsortSeqCellModel {
    n: usize,
    work: ThreadId,
}

/// Build the Cell sequential-baseline program and model.
pub fn seq_cell_program(p: &Params) -> (DdmProgram, QsortSeqCellModel) {
    let n = qsort_n(p.size, p.platform);
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::scalar("qsort.seq"));
    (
        b.build().expect("qsort seq cell program"),
        QsortSeqCellModel { n, work },
    )
}

impl CellWorkSource for QsortSeqCellModel {
    fn work(&self, inst: Instance) -> CellWork {
        if inst.thread != self.work {
            return CellWork::default();
        }
        let n = self.n as u64;
        let passes = (64 - n.leading_zeros() as u64).max(1);
        CellWork {
            compute: n * CYCLES_PER_INIT + n * passes * CYCLES_PER_CMP * 7 / 5,
            import_bytes: 0,
            export_bytes: n * 4,
            ls_bytes: 32 * 1024 + n * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::{Platform, SizeClass};

    #[test]
    fn ddm_sorts_correctly() {
        let p = Params::cell(3, 1, SizeClass::Small); // 3K elements: fast
        let result = run_ddm(&p);
        assert_eq!(result, seq(qsort_n(SizeClass::Small, Platform::Cell)));
    }

    #[test]
    fn ddm_matches_for_every_kernel_count() {
        for k in [1u32, 2, 5] {
            let p = Params::cell(k, 1, SizeClass::Small);
            assert_eq!(
                run_ddm(&p),
                seq(qsort_n(SizeClass::Small, Platform::Cell)),
                "kernels={k}"
            );
        }
    }

    #[test]
    fn merge_helpers_are_correct() {
        assert_eq!(merge2way(&[1, 4, 6], &[2, 3, 7]), vec![1, 2, 3, 4, 6, 7]);
        assert_eq!(
            merge_kway(vec![vec![5, 9], vec![1, 6], vec![2, 3]]),
            vec![1, 2, 3, 5, 6, 9]
        );
        assert_eq!(merge2way(&[], &[1]), vec![1]);
    }

    #[test]
    fn partitions_are_even() {
        for k in 1..30 {
            let p = partitions(k);
            assert!(p >= 4 && p.is_multiple_of(2), "k={k} p={p}");
        }
    }

    #[test]
    fn part_bounds_cover_array() {
        let n = 10_007;
        let parts = 8;
        let mut covered = 0;
        for c in 0..parts {
            let (lo, hi) = part_bounds(n, parts, c);
            covered += hi - lo;
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn sim_model_init_writes_whole_array() {
        let p = Params::hard(4, 1, SizeClass::Small);
        let (_, ids) = program(&p);
        let src = sim_source(&p, ids);
        let mut w = InstanceWork::default();
        src.work(Instance::scalar(src.ids.init), &mut w);
        // 10K ints = 40KB = 625 lines
        assert_eq!(w.accesses.len(), 625);
        assert!(w.accesses.iter().all(|a| a.write));
    }

    #[test]
    fn tree_depth_shapes_the_merge_levels() {
        let p = Params::hard(8, 1, SizeClass::Small); // parts = 16
        for depth in 0..5 {
            let (prog, ids) = program_with_depth(&p, depth);
            assert_eq!(ids.levels.len() as u32, depth.min(4));
            // program drains
            let mut tsu = tflux_core::CoreTsu::new(&prog, 4, tflux_core::TsuConfig::default());
            let order = tflux_core::tsu::drain_sequential(&mut tsu);
            assert_eq!(order.len(), prog.total_instances(), "depth {depth}");
        }
        // depth 2 matches the paper's shipped two-level shape
        let (prog2, ids2) = program_with_depth(&p, 2);
        assert_eq!(prog2.thread(ids2.levels[0]).arity, 8);
        assert_eq!(prog2.thread(ids2.levels[1]).arity, 4);
    }

    #[test]
    fn deeper_trees_move_more_memory_but_same_comparisons() {
        // Total comparisons are ~n log P for any tree shape (the heap
        // k-way merge and the pair-merge levels are both log-factor), but
        // every extra level re-streams the whole array through memory —
        // the "number of steps would increase" cost the paper names.
        let p = Params::hard(8, 1, SizeClass::Small);
        let mut accesses = Vec::new();
        for depth in [0u32, 2, 4] {
            let (prog, ids) = program_with_depth(&p, depth);
            let src = tree_sim_source(&p, ids);
            let mut acc = 0usize;
            for t in 0..prog.threads().len() {
                let t = ThreadId(t as u32);
                for c in 0..prog.thread(t).arity {
                    let mut w = InstanceWork::default();
                    src.work(Instance::new(t, Context(c)), &mut w);
                    acc += w.accesses.len();
                }
            }
            accesses.push(acc);
        }
        assert!(accesses[1] > accesses[0], "{accesses:?}");
        assert!(accesses[2] > accesses[1], "{accesses:?}");
    }

    #[test]
    fn cell_large_native_size_overflows_local_store() {
        // what the paper could NOT run: 50K elements through the Cell path
        let p = Params {
            kernels: 6,
            unroll: 1,
            size: SizeClass::Large,
            platform: Platform::Native, // force native size through cell model
        };
        let (_, ids) = program(&p);
        let src = cell_source(&p, ids);
        let w = src.work(Instance::scalar(src.ids.merge2));
        assert!(w.ls_bytes > 256 * 1024, "{}", w.ls_bytes);
        // while the Cell-table sizes fit
        let pc = Params::cell(6, 1, SizeClass::Large);
        let (_, ids) = program(&pc);
        let srcc = cell_source(&pc, ids);
        let wc = srcc.work(Instance::scalar(srcc.ids.merge2));
        assert!(wc.ls_bytes <= 256 * 1024, "{}", wc.ls_bytes);
    }
}
