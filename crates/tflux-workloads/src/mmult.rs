//! MMULT: dense matrix multiply (Numerical Recipes kernel).
//!
//! §6.1.2: "MMULT is an embarrassingly parallel application but suffers
//! from a large number of coherency misses, limiting it from achieving the
//! idealized speedup."
//!
//! Decomposition: `C = A × B` row-blocked — a loop DThread over row chunks
//! (`unroll` rows per instance) with no inter-worker dependencies, plus a
//! scalar sink. Every worker streams all of `B`, which is what generates
//! the coherency/bus traffic that caps MMULT's scaling.

use crate::common::{chunk, Params, Region};
use crate::sizes::mmult_n;
use tflux_cell::work::{CellWork, CellWorkSource};
use tflux_core::prelude::*;
use tflux_core::unroll::Unroll;
use tflux_runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
use tflux_sim::work::{InstanceWork, WorkSource};

/// Deterministic input matrices: `A[i][j] = (i + 2j) % 17`,
/// `B[i][j] = (3i + j) % 13` (integers in f64 keep results exact).
pub fn inputs(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut a = vec![0.0; n * n];
    let mut b = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((i + 2 * j) % 17) as f64;
            b[i * n + j] = ((3 * i + j) % 13) as f64;
        }
    }
    (a, b)
}

/// Sequential reference: ikj-ordered triple loop (the cache-friendly
/// variant both versions model).
pub fn seq(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let (brow, crow) = (&b[k * n..k * n + n], &mut c[i * n..i * n + n]);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    c
}

/// Thread ids of the MMULT program.
pub struct MmultIds {
    /// Row-chunk workers.
    pub work: ThreadId,
    /// Completion sink.
    pub sink: ThreadId,
}

/// Build the DDM program.
pub fn program(p: &Params) -> (DdmProgram, MmultIds) {
    let n = mmult_n(p.size, p.platform) as u64;
    let arity = Unroll::new(n, p.unroll).arity();
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("mmult.work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("mmult.sink"));
    b.arc(work, sink, ArcMapping::Reduction).expect("arc");
    (b.build().expect("mmult program"), MmultIds { work, sink })
}

/// Run MMULT on the real runtime; returns `C`.
pub fn run_ddm(p: &Params) -> Vec<f64> {
    let n = mmult_n(p.size, p.platform);
    let (prog, ids) = program(p);
    let arity = prog.thread(ids.work).arity;
    let (a, b) = inputs(n);

    // each worker produces its row chunk; the rows are assembled afterwards
    let rows = SharedVar::<Vec<f64>>::new(arity);
    let mut bodies = BodyTable::new(&prog);
    let (aref, bref, rref) = (&a, &b, &rows);
    bodies.set(ids.work, move |ctx| {
        let (lo, hi) = chunk(n as u64, p.unroll, ctx.context.0);
        let (lo, hi) = (lo as usize, hi as usize);
        let mut out = vec![0.0; (hi - lo) * n];
        for i in lo..hi {
            for k in 0..n {
                let aik = aref[i * n + k];
                let brow = &bref[k * n..k * n + n];
                let crow = &mut out[(i - lo) * n..(i - lo) * n + n];
                for j in 0..n {
                    crow[j] += aik * brow[j];
                }
            }
        }
        rref.put(ctx.context, out);
    });

    Runtime::new(RuntimeConfig::with_kernels(p.kernels))
        .run(&prog, &bodies)
        .expect("mmult run");
    drop(bodies);

    let mut c = Vec::with_capacity(n * n);
    for chunk_rows in rows.iter() {
        c.extend_from_slice(chunk_rows);
    }
    assert_eq!(c.len(), n * n, "a worker slot was never produced");
    c
}

/// Compute cycles per inner-loop multiply-add (scalar, in-order 2008 core:
/// FP multiply + add + index update, no FMA, no SIMD).
pub const CYCLES_PER_MAC: u64 = 5;

/// Simulator trace model. Address space: `A` at 256 MB, `B` at 512 MB,
/// `C` at 768 MB (all row-major f64).
pub struct MmultModel {
    n: u64,
    unroll: u32,
    ids: MmultIds,
    a: Region,
    b: Region,
    c: Region,
}

/// Build the simulator work source.
pub fn sim_source(p: &Params, ids: MmultIds) -> MmultModel {
    MmultModel {
        n: mmult_n(p.size, p.platform) as u64,
        unroll: p.unroll,
        ids,
        a: Region::new(0x1000_0000, 8),
        b: Region::new(0x2000_0000, 8),
        c: Region::new(0x3000_0000, 8),
    }
}

impl WorkSource for MmultModel {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        if inst.thread != self.ids.work {
            if inst.thread == self.ids.sink {
                out.compute = 100;
            }
            return;
        }
        let n = self.n;
        let (lo, hi) = chunk(n, self.unroll, inst.context.0);
        for i in lo..hi {
            // ikj order: A row once per k, B row streamed, C row streamed
            self.a.scan(out, i * n, (i + 1) * n, false);
            for k in 0..n {
                self.b.scan(out, k * n, (k + 1) * n, false);
                self.c.scan(out, i * n, (i + 1) * n, true);
            }
        }
        out.compute = (hi - lo) * n * n * CYCLES_PER_MAC;
    }
}

/// Cell cost model: each instance imports its `A` rows plus all of `B`
/// (double-buffered streaming in the real port; we charge the transfer),
/// exports its `C` rows.
pub struct MmultCellModel {
    n: u64,
    unroll: u32,
    ids: MmultIds,
}

/// Build the Cell work source.
pub fn cell_source(p: &Params, ids: MmultIds) -> MmultCellModel {
    MmultCellModel {
        n: mmult_n(p.size, p.platform) as u64,
        unroll: p.unroll,
        ids,
    }
}

impl CellWorkSource for MmultCellModel {
    fn work(&self, inst: Instance) -> CellWork {
        if inst.thread != self.ids.work {
            return CellWork::default();
        }
        let n = self.n;
        let (lo, hi) = chunk(n, self.unroll, inst.context.0);
        let rows = hi - lo;
        // A, B and C are all streamed through fixed 16 KB LS tiles (matrix
        // multiply tiles at any size), so the LS footprint is constant while
        // the DMA traffic scales with the data actually moved.
        let a_bytes = rows * n * 8;
        let b_bytes = n * n * 8;
        let c_bytes = rows * n * 8;
        CellWork {
            compute: rows * n * n * CYCLES_PER_MAC,
            import_bytes: a_bytes + b_bytes,
            export_bytes: c_bytes,
            ls_bytes: 32 * 1024 + 3 * 16 * 1024,
        }
    }
}

/// Element-granular MMULT for the §5 unroll study: the *basic loop* is the
/// per-element `C[i][j]` computation (`n` multiply-adds, a few hundred
/// cycles), and the unroll factor groups `unroll` consecutive elements into
/// one DThread. This is the granularity at which the paper's "unrolled
/// from 1 to 64 times" sweep operates — at unroll 1 a DThread is fine
/// enough that per-DThread overhead dominates on the software platforms.
pub struct MmultElem {
    /// n×n matrix dimension.
    pub n: u64,
    /// Elements per DThread.
    pub unroll: u32,
    /// The worker thread.
    pub work: ThreadId,
    a: Region,
    b: Region,
    c: Region,
}

/// Build the element-granular program and simulator model.
pub fn elem_setup(p: &Params) -> (DdmProgram, MmultElem) {
    let n = mmult_n(p.size, p.platform) as u64;
    let elems = n * n;
    let arity = Unroll::new(elems, p.unroll).arity();
    let mut bld = ProgramBuilder::new();
    let blk = bld.block();
    let work = bld.thread(blk, ThreadSpec::new("mmult.elem", arity));
    let sink = bld.thread(blk, ThreadSpec::scalar("mmult.sink"));
    bld.arc(work, sink, ArcMapping::Reduction).expect("arc");
    (
        bld.build().expect("mmult elem program"),
        MmultElem {
            n,
            unroll: p.unroll,
            work,
            a: Region::new(0x1000_0000, 8),
            b: Region::new(0x2000_0000, 8),
            c: Region::new(0x3000_0000, 8),
        },
    )
}

impl WorkSource for MmultElem {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        if inst.thread != self.work {
            return;
        }
        let n = self.n;
        let (lo, hi) = chunk(n * n, self.unroll, inst.context.0);
        for e in lo..hi {
            let (i, j) = (e / n, e % n);
            // ijk element: A row streamed, B column strided, one C store
            self.a.scan(out, i * n, (i + 1) * n, false);
            self.b.strided(out, j, j + n * n, n, false);
            self.c.scan(out, i * n + j, i * n + j + 1, true);
        }
        out.compute = (hi - lo) * n * CYCLES_PER_MAC;
    }
}

impl CellWorkSource for MmultElem {
    fn work(&self, inst: Instance) -> CellWork {
        if inst.thread != self.work {
            return CellWork::default();
        }
        let n = self.n;
        let (lo, hi) = chunk(n * n, self.unroll, inst.context.0);
        let elems = hi - lo;
        CellWork {
            compute: elems * n * CYCLES_PER_MAC,
            // per element: one A row + one B column in, one element out
            import_bytes: elems * 2 * n * 8,
            export_bytes: elems * 8,
            ls_bytes: 48 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::SizeClass;

    #[test]
    fn seq_matches_naive_small() {
        let n = 8;
        let (a, b) = inputs(n);
        let c = seq(&a, &b, n);
        for i in 0..n {
            for j in 0..n {
                let expect: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                assert_eq!(c[i * n + j], expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn ddm_matches_sequential() {
        // Simulated Small is 64x64: quick enough for a real threaded run
        let p = Params::hard(3, 4, SizeClass::Small);
        let n = mmult_n(p.size, p.platform);
        let (a, b) = inputs(n);
        let reference = seq(&a, &b, n);
        let ddm = run_ddm(&p);
        assert_eq!(ddm, reference);
    }

    #[test]
    fn ddm_handles_ragged_chunks() {
        // unroll that does not divide n: 64 rows, 5-row chunks
        let p = Params::hard(2, 5, SizeClass::Small);
        let n = mmult_n(p.size, p.platform);
        let (a, b) = inputs(n);
        assert_eq!(run_ddm(&p), seq(&a, &b, n));
    }

    #[test]
    fn sim_model_access_counts_scale_with_rows() {
        let p = Params::hard(4, 2, SizeClass::Small); // n=64, 2 rows/instance
        let (_, ids) = program(&p);
        let src = sim_source(&p, ids);
        let mut w = InstanceWork::default();
        src.work(Instance::new(src.ids.work, Context(0)), &mut w);
        let n = 64u64;
        // per row: A lines (n/8) + n * (B lines + C lines) = 8 + 64*(8+8)
        let per_row = 8 + n * 16;
        assert_eq!(w.accesses.len() as u64, 2 * per_row);
        assert_eq!(w.compute, 2 * n * n * CYCLES_PER_MAC);
    }

    #[test]
    fn elem_model_covers_all_elements() {
        let p = Params::hard(4, 8, SizeClass::Small); // n=64, 8 elems/thread
        let (prog, src) = elem_setup(&p);
        assert_eq!(prog.thread(src.work).arity, 64 * 64 / 8);
        let mut w = InstanceWork::default();
        tflux_sim::work::WorkSource::work(&src, Instance::new(src.work, Context(0)), &mut w);
        assert_eq!(w.compute, 8 * 64 * CYCLES_PER_MAC);
        // per element: 8 A lines + 64 B lines + 1 C line
        assert_eq!(w.accesses.len(), 8 * (8 + 64 + 1));
    }

    #[test]
    fn cell_large_mmult_needs_big_unroll_to_amortize() {
        let ids = |p: &Params| program(p).1;
        let p1 = Params::cell(6, 1, SizeClass::Small);
        let p64 = Params::cell(6, 64, SizeClass::Small);
        let s1 = cell_source(&p1, ids(&p1));
        let s64 = cell_source(&p64, ids(&p64));
        let w1 = s1.work(Instance::new(s1.ids.work, Context(0)));
        let w64 = s64.work(Instance::new(s64.ids.work, Context(0)));
        // compute per byte transferred is 64x better at unroll 64
        let r1 = w1.compute as f64 / (w1.import_bytes + w1.export_bytes) as f64;
        let r64 = w64.compute as f64 / (w64.import_bytes + w64.export_bytes) as f64;
        assert!(r64 > 10.0 * r1, "r1={r1} r64={r64}");
    }
}
