//! Harness plumbing: build (program, cost model) pairs for any benchmark on
//! any platform, with the per-platform grain (unroll) defaults the paper's
//! methodology arrives at.
//!
//! §5: "we evaluated variations with the basic loops being unrolled from 1
//! to 64 times ... we used the variation that gave the minimum execution
//! time". §6.2.2: TFluxHard peaks with small unroll factors (2–4) while
//! TFluxSoft needs >16; §6.3: TFluxCell needs up to 64 (MMULT). The
//! defaults below encode those findings; the unroll ablation harness sweeps
//! the factor explicitly to *reproduce* them.

use crate::common::Params;
use crate::sizes::Platform;
use crate::{fft, mmult, qsort, susan, trapez, Bench};
use tflux_cell::work::CellWorkSource;
use tflux_core::program::DdmProgram;
use tflux_sim::work::WorkSource;

/// The default unroll factor for a benchmark on a platform.
///
/// TRAPEZ iterates over single quadrature points, so its natural loop is
/// three orders of magnitude finer than MMULT's row loop; the factors keep
/// per-DThread work in the range each platform's per-thread overhead
/// demands (hard: ~10 cycles, soft: ~1 k cycles, cell: ~2 k cycles + DMA).
pub fn default_unroll(bench: Bench, platform: Platform) -> u32 {
    match (bench, platform) {
        (Bench::Trapez, Platform::Simulated) => 512,
        (Bench::Trapez, Platform::Native) => 4_096,
        (Bench::Trapez, Platform::Cell) => 32_768,
        (Bench::Mmult, Platform::Simulated) => 2,
        (Bench::Mmult, Platform::Native) => 16,
        (Bench::Mmult, Platform::Cell) => 64,
        (Bench::Qsort, _) => 1, // QSORT's grain is its partition count
        (Bench::Susan, Platform::Simulated) => 4,
        (Bench::Susan, Platform::Native) => 16,
        (Bench::Susan, Platform::Cell) => 32,
        (Bench::Fft, Platform::Simulated) => 2,
        (Bench::Fft, Platform::Native) => 8,
        (Bench::Fft, Platform::Cell) => 8,
    }
}

/// Fill in the platform-default unroll for a parameter set.
pub fn with_default_unroll(bench: Bench, mut p: Params) -> Params {
    p.unroll = default_unroll(bench, p.platform);
    p
}

/// §5 methodology: "we evaluated variations with the basic loops being
/// unrolled from 1 to 64 times ... we used the variation that gave the
/// minimum execution time." Sweep the given unroll factors on the machine
/// and return `(best_unroll, best_cycles)`.
///
/// Factors are *relative* to the platform default (which encodes each
/// benchmark's natural loop granularity); factor 0 entries are skipped.
pub fn best_unroll(
    bench: Bench,
    machine: &tflux_sim::Machine,
    base: Params,
    factors: &[u32],
) -> (u32, u64) {
    let mut best = (0u32, u64::MAX);
    for &u in factors {
        if u == 0 {
            continue;
        }
        let p = Params { unroll: u, ..base };
        let (prog, src) = sim_setup(bench, &p);
        let cycles = machine
            .run(&prog, src.as_ref())
            .expect("unroll sweep simulation failed")
            .cycles;
        if cycles < best.1 {
            best = (u, cycles);
        }
    }
    best
}

/// Build the DDM program and simulator cost model for a benchmark.
pub fn sim_setup(bench: Bench, p: &Params) -> (DdmProgram, Box<dyn WorkSource + Send + Sync>) {
    match bench {
        Bench::Trapez => {
            let (prog, ids) = trapez::program(p);
            let arity = prog.thread(ids.work).arity;
            let src = trapez::sim_source(p, ids, arity);
            (prog, Box::new(src))
        }
        Bench::Mmult => {
            let (prog, ids) = mmult::program(p);
            let src = mmult::sim_source(p, ids);
            (prog, Box::new(src))
        }
        Bench::Qsort => {
            let (prog, ids) = qsort::program(p);
            let src = qsort::sim_source(p, ids);
            (prog, Box::new(src))
        }
        Bench::Susan => {
            let (prog, ids) = susan::program(p);
            let src = susan::sim_source(p, ids);
            (prog, Box::new(src))
        }
        Bench::Fft => {
            let (prog, ids) = fft::program(p);
            let src = fft::sim_source(p, ids);
            (prog, Box::new(src))
        }
    }
}

/// Build the *sequential baseline* program and model: the original
/// sequential program, per §5 ("the baseline program is the original
/// sequential one, i.e. without any TFlux overheads"). For TRAPEZ, MMULT,
/// SUSAN and FFT the DDM instances executed back-to-back perform exactly
/// the original computation, so the DDM program doubles as the baseline;
/// QSORT's decomposition does *more* work than plain quicksort (it adds the
/// merge tree), so its baseline is a dedicated full-array-quicksort model.
pub fn sim_baseline(bench: Bench, p: &Params) -> (DdmProgram, Box<dyn WorkSource + Send + Sync>) {
    match bench {
        Bench::Qsort => {
            let (prog, src) = qsort::seq_sim_program(p);
            (prog, Box::new(src))
        }
        _ => sim_setup(bench, p),
    }
}

/// The Cell-side sequential baseline (see [`sim_baseline`]).
pub fn cell_baseline(
    bench: Bench,
    p: &Params,
) -> (DdmProgram, Box<dyn CellWorkSource + Send + Sync>) {
    match bench {
        Bench::Qsort => {
            let (prog, src) = qsort::seq_cell_program(p);
            (prog, Box::new(src))
        }
        _ => cell_setup(bench, p),
    }
}

/// Build the DDM program and Cell cost model for a benchmark.
pub fn cell_setup(bench: Bench, p: &Params) -> (DdmProgram, Box<dyn CellWorkSource + Send + Sync>) {
    match bench {
        Bench::Trapez => {
            let (prog, ids) = trapez::program(p);
            let arity = prog.thread(ids.work).arity;
            let src = trapez::cell_source(p, ids, arity);
            (prog, Box::new(src))
        }
        Bench::Mmult => {
            let (prog, ids) = mmult::program(p);
            let src = mmult::cell_source(p, ids);
            (prog, Box::new(src))
        }
        Bench::Qsort => {
            let (prog, ids) = qsort::program(p);
            let src = qsort::cell_source(p, ids);
            (prog, Box::new(src))
        }
        Bench::Susan => {
            let (prog, ids) = susan::program(p);
            let src = susan::cell_source(p, ids);
            (prog, Box::new(src))
        }
        Bench::Fft => {
            let (prog, ids) = fft::program(p);
            let src = fft::cell_source(p, ids);
            (prog, Box::new(src))
        }
    }
}

/// Run a benchmark's DDM decomposition on the real threaded runtime and
/// verify the result against the sequential reference. Returns an error
/// string on mismatch. Used by integration tests and the harness's
/// `verify` command.
pub fn verify_runtime(bench: Bench, p: &Params) -> Result<(), String> {
    match bench {
        Bench::Trapez => {
            let n = crate::sizes::trapez_intervals(p.size);
            let got = trapez::run_ddm(p);
            let want = trapez::seq(n);
            if (got - want).abs() < 1e-9 {
                Ok(())
            } else {
                Err(format!("TRAPEZ: {got} != {want}"))
            }
        }
        Bench::Mmult => {
            let n = crate::sizes::mmult_n(p.size, p.platform);
            let (a, b) = mmult::inputs(n);
            if mmult::run_ddm(p) == mmult::seq(&a, &b, n) {
                Ok(())
            } else {
                Err("MMULT: matrix mismatch".into())
            }
        }
        Bench::Qsort => {
            let n = crate::sizes::qsort_n(p.size, p.platform);
            if qsort::run_ddm(p) == qsort::seq(n) {
                Ok(())
            } else {
                Err("QSORT: order mismatch".into())
            }
        }
        Bench::Susan => {
            let (w, h) = crate::sizes::susan_dims(p.size);
            if susan::run_ddm(p) == susan::seq(w, h) {
                Ok(())
            } else {
                Err("SUSAN: image mismatch".into())
            }
        }
        Bench::Fft => {
            let n = crate::sizes::fft_n(p.size);
            let (m_ddm, _) = fft::run_ddm(p);
            let (m_seq, _) = fft::seq(n);
            let ok = m_ddm
                .iter()
                .zip(&m_seq)
                .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
            if ok {
                Ok(())
            } else {
                Err("FFT: matrix mismatch".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::SizeClass;
    use tflux_sim::{Machine, MachineConfig};

    #[test]
    fn sim_setup_builds_every_benchmark() {
        for bench in Bench::ALL {
            let p = with_default_unroll(bench, Params::hard(4, 0, SizeClass::Small));
            let (prog, src) = sim_setup(bench, &p);
            assert!(prog.total_instances() > 0, "{bench:?}");
            // tiny smoke run
            let r = Machine::new(MachineConfig::bagle(2))
                .run(&prog, src.as_ref())
                .expect("sim run");
            assert_eq!(r.instances, prog.total_instances(), "{bench:?}");
        }
    }

    #[test]
    fn cell_setup_builds_cell_benchmarks() {
        for bench in Bench::CELL {
            let p = with_default_unroll(bench, Params::cell(2, 0, SizeClass::Small));
            let (prog, src) = cell_setup(bench, &p);
            let m = tflux_cell::CellMachine::new(tflux_cell::CellConfig::ps3().with_spes(2));
            let r = m.run(&prog, src.as_ref()).expect("cell run");
            assert_eq!(r.instances, prog.total_instances(), "{bench:?}");
        }
    }

    #[test]
    fn default_unrolls_are_coarser_on_software_platforms() {
        for bench in [Bench::Trapez, Bench::Mmult, Bench::Susan] {
            let h = default_unroll(bench, Platform::Simulated);
            let s = default_unroll(bench, Platform::Native);
            let c = default_unroll(bench, Platform::Cell);
            assert!(s > h, "{bench:?}");
            assert!(c >= s, "{bench:?}");
        }
    }

    #[test]
    fn best_unroll_picks_the_minimum() {
        let m = tflux_sim::Machine::new(tflux_sim::MachineConfig::xeon_x3650(4));
        let base = Params {
            kernels: 4,
            unroll: 0,
            size: SizeClass::Small,
            platform: Platform::Simulated,
        };
        let (u, cycles) = best_unroll(Bench::Mmult, &m, base, &[1, 2, 4, 8, 16, 32]);
        assert!(cycles < u64::MAX);
        // the software platform must not pick the finest grain
        assert!(u > 1, "soft picked unroll {u}");
    }

    #[test]
    fn verify_runtime_small_sizes() {
        // the cheap ones here; full-size verification lives in the
        // integration test suite
        let p = with_default_unroll(Bench::Fft, Params::soft(3, 0, SizeClass::Small));
        verify_runtime(Bench::Fft, &p).unwrap();
        let p = with_default_unroll(Bench::Qsort, Params::cell(3, 0, SizeClass::Small));
        verify_runtime(Bench::Qsort, &p).unwrap();
    }
}
