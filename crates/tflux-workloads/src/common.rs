//! Shared parameter types and trace-model helpers.

use serde::{Deserialize, Serialize};
use tflux_sim::work::{InstanceWork, MemAccess};

/// Parameters of one benchmark execution.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Params {
    /// Kernel (execution node) count.
    pub kernels: u32,
    /// Loop unroll factor (iterations per DThread instance, §5).
    pub unroll: u32,
    /// Problem-size class.
    pub size: crate::sizes::SizeClass,
    /// Target platform (selects Table-1 sizes).
    pub platform: crate::sizes::Platform,
}

impl Params {
    /// Parameters for the simulated TFluxHard machine.
    pub fn hard(kernels: u32, unroll: u32, size: crate::sizes::SizeClass) -> Self {
        Params {
            kernels,
            unroll,
            size,
            platform: crate::sizes::Platform::Simulated,
        }
    }

    /// Parameters for the native/soft platform.
    pub fn soft(kernels: u32, unroll: u32, size: crate::sizes::SizeClass) -> Self {
        Params {
            kernels,
            unroll,
            size,
            platform: crate::sizes::Platform::Native,
        }
    }

    /// Parameters for the Cell platform.
    pub fn cell(kernels: u32, unroll: u32, size: crate::sizes::SizeClass) -> Self {
        Params {
            kernels,
            unroll,
            size,
            platform: crate::sizes::Platform::Cell,
        }
    }
}

/// A typed array region in the simulated address space.
#[derive(Clone, Copy, Debug)]
pub struct Region {
    /// Base byte address.
    pub base: u64,
    /// Element size in bytes.
    pub elem: u64,
}

/// Cache line size assumed by the trace generators (both machine presets
/// use 64-byte L1 lines).
pub const LINE: u64 = 64;

impl Region {
    /// A region starting at `base` with `elem`-byte elements.
    pub const fn new(base: u64, elem: u64) -> Self {
        Region { base, elem }
    }

    /// Byte address of element `idx`.
    #[inline]
    pub fn addr(&self, idx: u64) -> u64 {
        self.base + idx * self.elem
    }

    /// Emit one access per cache line covered by elements `lo..hi`
    /// (a sequential scan at line granularity).
    pub fn scan(&self, out: &mut InstanceWork, lo: u64, hi: u64, write: bool) {
        if hi <= lo {
            return;
        }
        let start = self.addr(lo) / LINE;
        let end = (self.addr(hi - 1)) / LINE;
        for line in start..=end {
            out.accesses.push(MemAccess {
                addr: line * LINE,
                write,
            });
        }
    }

    /// Emit one access per element for a strided walk (each element on its
    /// own line when the stride ≥ line size).
    pub fn strided(&self, out: &mut InstanceWork, lo: u64, hi: u64, stride: u64, write: bool) {
        let mut i = lo;
        while i < hi {
            out.accesses.push(MemAccess {
                addr: self.addr(i),
                write,
            });
            i += stride;
        }
    }

    /// Bytes covered by `n` elements.
    pub fn bytes(&self, n: u64) -> u64 {
        n * self.elem
    }
}

/// Split iterations `0..n` into the contiguous range of instance `ctx`
/// when the loop is unrolled by `unroll` (helper mirroring
/// [`tflux_core::unroll::Unroll`] for u64 sizes).
pub fn chunk(n: u64, unroll: u32, ctx: u32) -> (u64, u64) {
    let u = unroll.max(1) as u64;
    let lo = ctx as u64 * u;
    let hi = (lo + u).min(n);
    (lo.min(n), hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_addresses() {
        let r = Region::new(0x1000, 8);
        assert_eq!(r.addr(0), 0x1000);
        assert_eq!(r.addr(10), 0x1050);
        assert_eq!(r.bytes(16), 128);
    }

    #[test]
    fn scan_emits_one_access_per_line() {
        let r = Region::new(0, 8);
        let mut w = InstanceWork::default();
        r.scan(&mut w, 0, 16, false); // 128 bytes = 2 lines
        assert_eq!(w.accesses.len(), 2);
        assert_eq!(w.accesses[0].addr, 0);
        assert_eq!(w.accesses[1].addr, 64);
        assert!(!w.accesses[0].write);
    }

    #[test]
    fn scan_respects_unaligned_base() {
        let r = Region::new(32, 8);
        let mut w = InstanceWork::default();
        r.scan(&mut w, 0, 8, true); // bytes 32..96 -> lines 0 and 1
        assert_eq!(w.accesses.len(), 2);
        assert!(w.accesses[0].write);
    }

    #[test]
    fn empty_scan_emits_nothing() {
        let r = Region::new(0, 8);
        let mut w = InstanceWork::default();
        r.scan(&mut w, 5, 5, false);
        assert!(w.accesses.is_empty());
    }

    #[test]
    fn strided_walk() {
        let r = Region::new(0, 8);
        let mut w = InstanceWork::default();
        r.strided(&mut w, 0, 32, 8, false);
        assert_eq!(w.accesses.len(), 4);
        assert_eq!(w.accesses[1].addr, 64);
    }

    #[test]
    fn chunking() {
        assert_eq!(chunk(100, 8, 0), (0, 8));
        assert_eq!(chunk(100, 8, 12), (96, 100));
        assert_eq!(chunk(100, 8, 13), (100, 100));
    }
}
