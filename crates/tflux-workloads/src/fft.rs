//! FFT: 2-D FFT on a matrix of complex numbers (NAS FT kernel).
//!
//! §6.1.2: "this benchmark operates on the data in phases, which can only
//! be parallelized independently. The limitation in the speedup comes from
//! the fact that there is an implicit synchronization overhead between the
//! phases."
//!
//! Decomposition: three DDM blocks — row FFTs, column FFTs, and a checksum
//! reduction — with the block boundaries providing exactly the inter-phase
//! synchronization the paper names as the bottleneck. The column phase
//! walks the matrix with row-length strides, so its memory behaviour is far
//! worse than the row phase (each element on its own cache line for the
//! paper's sizes), which the trace model reproduces.

use crate::common::{chunk, Params, Region};
use crate::sizes::fft_n;
use tflux_cell::work::{CellWork, CellWorkSource};
use tflux_core::prelude::*;
use tflux_core::unroll::Unroll;
use tflux_runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
use tflux_sim::work::{InstanceWork, WorkSource};

/// A complex number (kept as a plain pair for determinism and layout
/// control).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cpx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cpx {
    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Cpx { re, im }
    }

    fn add(self, o: Cpx) -> Cpx {
        Cpx::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Cpx) -> Cpx {
        Cpx::new(self.re - o.re, self.im - o.im)
    }

    fn mul(self, o: Cpx) -> Cpx {
        Cpx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT. `n` must be a power of 2.
pub fn fft_inplace(a: &mut [Cpx]) {
    let n = a.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // bit reversal
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    // butterflies
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wl = Cpx::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Cpx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = a[i + k];
                let v = a[i + k + len / 2].mul(w);
                a[i + k] = u.add(v);
                a[i + k + len / 2] = u.sub(v);
                w = w.mul(wl);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Deterministic input matrix (n×n, row-major).
pub fn input(n: usize) -> Vec<Cpx> {
    (0..n * n)
        .map(|i| {
            let x = (i % 251) as f64 / 251.0;
            let y = (i % 127) as f64 / 127.0;
            Cpx::new((x * 6.0).sin() + 0.5 * y, (y * 4.0).cos() - 0.25 * x)
        })
        .collect()
}

/// Sequential 2-D FFT: row FFTs, then column FFTs. Returns the transformed
/// matrix and its checksum.
pub fn seq(n: usize) -> (Vec<Cpx>, Cpx) {
    let mut m = input(n);
    for r in 0..n {
        fft_inplace(&mut m[r * n..(r + 1) * n]);
    }
    for c in 0..n {
        let mut col: Vec<Cpx> = (0..n).map(|r| m[r * n + c]).collect();
        fft_inplace(&mut col);
        for r in 0..n {
            m[r * n + c] = col[r];
        }
    }
    let sum = checksum(&m);
    (m, sum)
}

/// The NAS-style checksum: sum of a deterministic sample of elements.
pub fn checksum(m: &[Cpx]) -> Cpx {
    let mut s = Cpx::default();
    let step = (m.len() / 1024).max(1);
    let mut i = 0;
    while i < m.len() {
        s = s.add(m[i]);
        i += step;
    }
    s
}

/// Thread ids of the FFT program.
pub struct FftIds {
    /// Row-FFT phase.
    pub rows: ThreadId,
    /// Column-FFT phase.
    pub cols: ThreadId,
    /// Checksum reduction.
    pub check: ThreadId,
}

/// Build the three-block DDM program.
pub fn program(p: &Params) -> (DdmProgram, FftIds) {
    let n = fft_n(p.size) as u64;
    let arity = Unroll::new(n, p.unroll).arity();
    let mut b = ProgramBuilder::new();
    let b1 = b.block();
    let rows = b.thread(b1, ThreadSpec::new("fft.rows", arity));
    let b2 = b.block();
    let cols = b.thread(b2, ThreadSpec::new("fft.cols", arity));
    let b3 = b.block();
    let check = b.thread(b3, ThreadSpec::scalar("fft.check"));
    (
        b.build().expect("fft program"),
        FftIds { rows, cols, check },
    )
}

/// Run the 2-D FFT on the real runtime; returns (matrix, checksum).
pub fn run_ddm(p: &Params) -> (Vec<Cpx>, Cpx) {
    let n = fft_n(p.size);
    let (prog, ids) = program(p);
    let arity = prog.thread(ids.rows).arity;
    let data = input(n);

    let row_out = SharedVar::<Vec<Cpx>>::new(arity); // row chunks after phase 1
    let col_out = SharedVar::<Vec<Cpx>>::new(arity); // column chunks after phase 2
    let result = SharedVar::<(Vec<Cpx>, Cpx)>::scalar();

    let mut bodies = BodyTable::new(&prog);
    let (dref, rref, cref, resref) = (&data, &row_out, &col_out, &result);
    let unroll = p.unroll;
    bodies.set(ids.rows, move |ctx| {
        let (lo, hi) = chunk(n as u64, unroll, ctx.context.0);
        let mut out = Vec::with_capacity((hi - lo) as usize * n);
        for r in lo..hi {
            let r = r as usize;
            let mut row = dref[r * n..(r + 1) * n].to_vec();
            fft_inplace(&mut row);
            out.extend_from_slice(&row);
        }
        rref.put(ctx.context, out);
    });
    bodies.set(ids.cols, move |ctx| {
        let (lo, hi) = chunk(n as u64, unroll, ctx.context.0);
        let mut out = Vec::with_capacity((hi - lo) as usize * n);
        for c in lo..hi {
            let c = c as usize;
            // gather column c across the row-phase chunks
            let mut col = Vec::with_capacity(n);
            for r in 0..n {
                let band = r as u64 / unroll.max(1) as u64;
                let (blo, _) = chunk(n as u64, unroll, band as u32);
                let chunk_rows = rref.get(Context(band as u32));
                col.push(chunk_rows[(r - blo as usize) * n + c]);
            }
            fft_inplace(&mut col);
            out.extend_from_slice(&col);
        }
        cref.put(ctx.context, out);
    });
    bodies.set(ids.check, move |_| {
        // reassemble the matrix from column chunks
        let mut m = vec![Cpx::default(); n * n];
        for (band, chunkv) in cref.iter().enumerate() {
            let (lo, hi) = chunk(n as u64, unroll, band as u32);
            for (ci, c) in (lo..hi).enumerate() {
                for r in 0..n {
                    m[r * n + c as usize] = chunkv[ci * n + r];
                }
            }
        }
        let sum = checksum(&m);
        resref.put(Context(0), (m, sum));
    });

    Runtime::new(RuntimeConfig::with_kernels(p.kernels))
        .run(&prog, &bodies)
        .expect("fft run");
    drop(bodies);
    result.into_values().remove(0).expect("result produced")
}

/// Cycles per butterfly (complex multiply = 4 FP muls + 2 adds, plus the
/// add/sub pair and twiddle update, on a scalar in-order core).
const CYCLES_PER_BUTTERFLY: u64 = 24;

/// Simulator trace model: matrix at 256 MB (16-byte complex elements),
/// column-phase scratch at 512 MB.
pub struct FftModel {
    n: u64,
    unroll: u32,
    ids: FftIds,
    m: Region,
    scratch: Region,
}

/// Build the simulator work source.
pub fn sim_source(p: &Params, ids: FftIds) -> FftModel {
    FftModel {
        n: fft_n(p.size) as u64,
        unroll: p.unroll,
        ids,
        m: Region::new(0x1000_0000, 16),
        scratch: Region::new(0x2000_0000, 16),
    }
}

impl WorkSource for FftModel {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        let n = self.n;
        let logn = 64 - (n - 1).leading_zeros() as u64;
        if inst.thread == self.ids.rows {
            let (lo, hi) = chunk(n, self.unroll, inst.context.0);
            for r in lo..hi {
                // log n passes over the row (in cache after the first)
                for _ in 0..logn {
                    self.m.scan(out, r * n, (r + 1) * n, false);
                    self.m.scan(out, r * n, (r + 1) * n, true);
                }
            }
            out.compute = (hi - lo) * (n / 2) * logn * CYCLES_PER_BUTTERFLY;
        } else if inst.thread == self.ids.cols {
            let (lo, hi) = chunk(n, self.unroll, inst.context.0);
            for c in lo..hi {
                // gather: one strided read per row element (stride = row
                // length ⇒ a fresh line each time for the paper's sizes)
                self.m.strided(out, c, c + n * n, n, false);
                // FFT in scratch, then scatter back
                for _ in 0..logn {
                    self.scratch.scan(out, c * n, (c + 1) * n, false);
                    self.scratch.scan(out, c * n, (c + 1) * n, true);
                }
                self.m.strided(out, c, c + n * n, n, true);
            }
            out.compute = (hi - lo) * (n / 2) * logn * CYCLES_PER_BUTTERFLY;
        } else if inst.thread == self.ids.check {
            self.m.scan(out, 0, n * n / 16, false); // sampled walk
            out.compute = n * n / 8;
        }
    }
}

/// Cell cost model (FFT is not part of Fig. 7, but the model exists so the
/// suite is complete on every platform).
pub struct FftCellModel {
    n: u64,
    unroll: u32,
    ids: FftIds,
}

/// Build the Cell work source.
pub fn cell_source(p: &Params, ids: FftIds) -> FftCellModel {
    FftCellModel {
        n: fft_n(p.size) as u64,
        unroll: p.unroll,
        ids,
    }
}

impl CellWorkSource for FftCellModel {
    fn work(&self, inst: Instance) -> CellWork {
        let n = self.n;
        let logn = 64 - (n - 1).leading_zeros() as u64;
        if inst.thread == self.ids.rows || inst.thread == self.ids.cols {
            let (lo, hi) = chunk(n, self.unroll, inst.context.0);
            let lines = (hi - lo) * n * 16;
            CellWork {
                compute: (hi - lo) * (n / 2) * logn * CYCLES_PER_BUTTERFLY,
                import_bytes: lines,
                export_bytes: lines,
                ls_bytes: 32 * 1024 + 2 * lines,
            }
        } else if inst.thread == self.ids.check {
            CellWork {
                compute: n * n / 8,
                import_bytes: n * n,
                export_bytes: 16,
                ls_bytes: 48 * 1024,
            }
        } else {
            CellWork::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::SizeClass;

    /// Naive DFT for validation.
    fn dft(a: &[Cpx]) -> Vec<Cpx> {
        let n = a.len();
        (0..n)
            .map(|k| {
                let mut s = Cpx::default();
                for (j, &x) in a.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    s = s.add(x.mul(Cpx::new(ang.cos(), ang.sin())));
                }
                s
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let mut a: Vec<Cpx> = (0..16)
            .map(|i| Cpx::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let expect = dft(&a);
        fft_inplace(&mut a);
        for (got, want) in a.iter().zip(&expect) {
            assert!((got.re - want.re).abs() < 1e-9, "{got:?} vs {want:?}");
            assert!((got.im - want.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut a = vec![Cpx::default(); 8];
        a[0] = Cpx::new(1.0, 0.0);
        fft_inplace(&mut a);
        for x in &a {
            assert!((x.re - 1.0).abs() < 1e-12 && x.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut a = vec![Cpx::default(); 6];
        fft_inplace(&mut a);
    }

    #[test]
    fn ddm_matches_sequential_bitwise() {
        let p = Params::soft(3, 4, SizeClass::Small); // 32x32
        let (m_ddm, sum_ddm) = run_ddm(&p);
        let (m_seq, sum_seq) = seq(fft_n(SizeClass::Small));
        assert_eq!(m_ddm.len(), m_seq.len());
        for (a, b) in m_ddm.iter().zip(&m_seq) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(sum_ddm.re.to_bits(), sum_seq.re.to_bits());
    }

    #[test]
    fn ddm_matches_with_ragged_unroll() {
        let p = Params::soft(2, 5, SizeClass::Small); // 32 rows / 5
        let (_, sum_ddm) = run_ddm(&p);
        let (_, sum_seq) = seq(fft_n(SizeClass::Small));
        assert_eq!(sum_ddm.re.to_bits(), sum_seq.re.to_bits());
        assert_eq!(sum_ddm.im.to_bits(), sum_seq.im.to_bits());
    }

    #[test]
    fn program_has_three_phases() {
        let p = Params::hard(4, 4, SizeClass::Small);
        let (prog, _) = program(&p);
        assert_eq!(prog.blocks().len(), 3);
    }

    #[test]
    fn column_phase_touches_more_lines_than_row_phase() {
        let p = Params::hard(4, 1, SizeClass::Medium); // n=64
        let (_, ids) = program(&p);
        let src = sim_source(&p, ids);
        let mut wr = InstanceWork::default();
        let mut wc = InstanceWork::default();
        src.work(Instance::new(src.ids.rows, Context(0)), &mut wr);
        src.work(Instance::new(src.ids.cols, Context(0)), &mut wc);
        assert!(wc.accesses.len() > wr.accesses.len());
    }
}
