//! TRAPEZ: trapezoidal-rule integration (Numerical Recipes kernel).
//!
//! §6.1.2: "TRAPEZ can be efficiently parallelized resulting in no DThread
//! dependencies other than a reduction operation that is required at the
//! end. In addition, TRAPEZ has very few data transfers between DThreads
//! which allows it to achieve near optimal speedup."
//!
//! Decomposition: a loop DThread over interval chunks (the §5 unroll factor
//! sets the chunk size) producing one partial sum each, reduced by a scalar
//! sink DThread.

use crate::common::{chunk, Params, Region};
use crate::sizes::trapez_intervals;
use std::sync::atomic::{AtomicU64, Ordering};
use tflux_cell::work::{CellWork, CellWorkSource};
use tflux_core::prelude::*;
use tflux_core::unroll::Unroll;
use tflux_runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
use tflux_sim::work::{InstanceWork, WorkSource};

/// The integrand: `4 / (1 + x²)` over `[0, 1]` integrates to π, giving the
/// tests an exact target.
#[inline]
pub fn f(x: f64) -> f64 {
    4.0 / (1.0 + x * x)
}

/// Sequential reference (the paper's baseline program).
pub fn seq(intervals: u64) -> f64 {
    let h = 1.0 / intervals as f64;
    let mut sum = 0.5 * (f(0.0) + f(1.0));
    for i in 1..intervals {
        sum += f(i as f64 * h);
    }
    sum * h
}

/// Thread ids of the TRAPEZ program.
pub struct TrapezIds {
    /// The chunked quadrature loop thread.
    pub work: ThreadId,
    /// The reduction sink.
    pub sink: ThreadId,
}

/// Build the DDM program for the given parameters.
pub fn program(p: &Params) -> (DdmProgram, TrapezIds) {
    let n = trapez_intervals(p.size);
    let arity = Unroll::new(n, p.unroll).arity();
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("trapez.work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("trapez.sink"));
    b.arc(work, sink, ArcMapping::Reduction).expect("arc");
    (b.build().expect("trapez program"), TrapezIds { work, sink })
}

/// Run TRAPEZ on the real threaded runtime; returns the integral.
pub fn run_ddm(p: &Params) -> f64 {
    let n = trapez_intervals(p.size);
    let (prog, ids) = program(p);
    let arity = prog.thread(ids.work).arity;
    let h = 1.0 / n as f64;

    let partial = SharedVar::<f64>::new(arity);
    let result = AtomicU64::new(0);
    let mut bodies = BodyTable::new(&prog);
    let partial_ref = &partial;
    let result_ref = &result;
    bodies.set(ids.work, move |ctx| {
        let (lo, hi) = chunk(n, p.unroll, ctx.context.0);
        let mut s = 0.0;
        for i in lo..hi {
            // opening end point halved here; the closing one is added by
            // the last chunk below
            let w = if i == 0 { 0.5 } else { 1.0 };
            s += w * f(i as f64 * h);
        }
        // the closing end point belongs to the last chunk
        if hi == n {
            s += 0.5 * f(1.0);
        }
        partial_ref.put(ctx.context, s);
    });
    bodies.set(ids.sink, move |_| {
        let total: f64 = partial_ref.iter().sum::<f64>() * h;
        result_ref.store(total.to_bits(), Ordering::Relaxed);
    });

    Runtime::new(RuntimeConfig::with_kernels(p.kernels))
        .run(&prog, &bodies)
        .expect("trapez run");
    f64::from_bits(result.load(Ordering::Relaxed))
}

/// Cycles one quadrature point costs on the simulated core (divide + 2
/// multiplies + adds).
pub const CYCLES_PER_POINT: u64 = 12;

/// Trace model for the simulator.
pub struct TrapezModel {
    n: u64,
    unroll: u32,
    ids: TrapezIds,
    arity: u32,
    partial: Region,
}

/// Build the simulator work source (pair it with [`program`]'s output).
pub fn sim_source(p: &Params, ids: TrapezIds, arity: u32) -> TrapezModel {
    TrapezModel {
        n: trapez_intervals(p.size),
        unroll: p.unroll,
        ids,
        arity,
        partial: Region::new(0x1000_0000, 8),
    }
}

impl WorkSource for TrapezModel {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        if inst.thread == self.ids.work {
            let (lo, hi) = chunk(self.n, self.unroll, inst.context.0);
            out.compute = (hi - lo) * CYCLES_PER_POINT + 30;
            // one partial-sum store; neighbours share lines (false sharing,
            // a real TRAPEZ artifact the coherence model captures)
            self.partial
                .scan(out, inst.context.0 as u64, inst.context.0 as u64 + 1, true);
        } else if inst.thread == self.ids.sink {
            out.compute = self.arity as u64 * 4;
            self.partial.scan(out, 0, self.arity as u64, false);
        }
    }
}

/// Cell cost model: compute-heavy, 8-byte export per instance.
pub struct TrapezCellModel {
    n: u64,
    unroll: u32,
    ids: TrapezIds,
    arity: u32,
}

/// Build the Cell work source.
pub fn cell_source(p: &Params, ids: TrapezIds, arity: u32) -> TrapezCellModel {
    TrapezCellModel {
        n: trapez_intervals(p.size),
        unroll: p.unroll,
        ids,
        arity,
    }
}

impl CellWorkSource for TrapezCellModel {
    fn work(&self, inst: Instance) -> CellWork {
        if inst.thread == self.ids.work {
            let (lo, hi) = chunk(self.n, self.unroll, inst.context.0);
            CellWork {
                compute: (hi - lo) * CYCLES_PER_POINT + 30,
                import_bytes: 32, // chunk descriptor
                export_bytes: 8,  // the partial sum
                ls_bytes: 8 * 1024,
            }
        } else if inst.thread == self.ids.sink {
            CellWork {
                compute: self.arity as u64 * 4,
                import_bytes: self.arity as u64 * 8,
                export_bytes: 8,
                ls_bytes: 8 * 1024 + self.arity as u64 * 8,
            }
        } else {
            CellWork::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::SizeClass;

    #[test]
    fn sequential_integrates_pi() {
        let v = seq(1 << 16);
        assert!((v - std::f64::consts::PI).abs() < 1e-8, "{v}");
    }

    #[test]
    fn ddm_matches_sequential() {
        // small custom run: shrink by using Small with a big unroll
        let p = Params::soft(3, 4096, SizeClass::Small);
        let ddm = run_ddm(&p);
        let reference = seq(trapez_intervals(SizeClass::Small));
        assert!((ddm - reference).abs() < 1e-9, "ddm={ddm} seq={reference}");
    }

    #[test]
    fn ddm_deterministic_across_kernel_counts() {
        let r2 = run_ddm(&Params::soft(2, 8192, SizeClass::Small));
        let r4 = run_ddm(&Params::soft(4, 8192, SizeClass::Small));
        assert_eq!(r2.to_bits(), r4.to_bits());
    }

    #[test]
    fn program_arity_follows_unroll() {
        let p = Params::hard(4, 1024, SizeClass::Small);
        let (prog, ids) = program(&p);
        assert_eq!(prog.thread(ids.work).arity, (1 << 19) / 1024);
    }

    #[test]
    fn sim_model_charges_points() {
        let p = Params::hard(4, 1024, SizeClass::Small);
        let (prog, ids) = program(&p);
        let arity = prog.thread(ids.work).arity;
        let src = sim_source(&p, ids, arity);
        let mut w = InstanceWork::default();
        src.work(Instance::new(src.ids.work, Context(0)), &mut w);
        assert_eq!(w.compute, 1024 * CYCLES_PER_POINT + 30);
        assert_eq!(w.accesses.len(), 1);
    }

    #[test]
    fn cell_model_exports_partial() {
        let p = Params::cell(4, 2048, SizeClass::Small);
        let (prog, ids) = program(&p);
        let arity = prog.thread(ids.work).arity;
        let src = cell_source(&p, ids, arity);
        let w = src.work(Instance::new(src.ids.work, Context(1)));
        assert_eq!(w.export_bytes, 8);
        assert!(w.ls_bytes < 256 * 1024);
    }
}
