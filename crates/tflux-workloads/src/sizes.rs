//! Table 1: problem sizes per benchmark, size class, and platform.
//!
//! The paper separates problem sizes for the **S**imulated (TFluxHard),
//! **N**ative (TFluxSoft), and **C**ell platforms: TRAPEZ, SUSAN and FFT
//! use the same sizes everywhere; MMULT uses 64–256 when simulated and
//! 256–1024 natively; QSORT uses 10 K–50 K elements except on the Cell,
//! where 3 K–12 K is all that fits the Local Store.

use serde::{Deserialize, Serialize};

/// The paper's Small / Medium / Large size classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Small problem size.
    Small,
    /// Medium problem size.
    Medium,
    /// Large problem size.
    Large,
}

impl SizeClass {
    /// All classes in order.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Short label used in figure rows.
    pub fn label(&self) -> &'static str {
        match self {
            SizeClass::Small => "Small",
            SizeClass::Medium => "Medium",
            SizeClass::Large => "Large",
        }
    }

    /// Index 0/1/2.
    pub fn idx(&self) -> usize {
        match self {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Large => 2,
        }
    }
}

/// The platform a size is selected for (Table 1's S/N/C columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// TFluxHard on the simulated Bagle machine.
    Simulated,
    /// TFluxSoft native on the Xeon server.
    Native,
    /// TFluxCell on the PS3.
    Cell,
}

/// TRAPEZ: number of integration intervals, `2^k` with k = 19/21/23.
pub fn trapez_intervals(size: SizeClass) -> u64 {
    1u64 << [19, 21, 23][size.idx()]
}

/// MMULT: square matrix dimension.
pub fn mmult_n(size: SizeClass, platform: Platform) -> usize {
    match platform {
        Platform::Simulated => [64, 128, 256][size.idx()],
        Platform::Native | Platform::Cell => [256, 512, 1024][size.idx()],
    }
}

/// QSORT: element count.
pub fn qsort_n(size: SizeClass, platform: Platform) -> usize {
    match platform {
        Platform::Simulated | Platform::Native => [10_000, 20_000, 50_000][size.idx()],
        Platform::Cell => [3_000, 6_000, 12_000][size.idx()],
    }
}

/// SUSAN: image dimensions (width, height).
pub fn susan_dims(size: SizeClass) -> (usize, usize) {
    [(256, 288), (512, 576), (1024, 576)][size.idx()]
}

/// FFT: matrix dimension (n×n complex matrix).
pub fn fft_n(size: SizeClass) -> usize {
    [32, 64, 128][size.idx()]
}

/// One row of Table 1, for the harness's `table1` reproduction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Source suite.
    pub source: &'static str,
    /// Description.
    pub description: &'static str,
    /// Small/Medium/Large columns, formatted as the paper prints them.
    pub sizes: [String; 3],
}

/// Regenerate Table 1.
pub fn table1() -> Vec<Table1Row> {
    let fmt_pow = |s: SizeClass| format!("2^{}", [19, 21, 23][s.idx()]);
    let fmt_mm = |s: SizeClass| {
        format!(
            "S:{n0}x{n0} N,C:{n1}x{n1}",
            n0 = mmult_n(s, Platform::Simulated),
            n1 = mmult_n(s, Platform::Native)
        )
    };
    let fmt_qs = |s: SizeClass| {
        format!(
            "S,N:{}K C:{}K",
            qsort_n(s, Platform::Native) / 1000,
            qsort_n(s, Platform::Cell) / 1000
        )
    };
    let fmt_su = |s: SizeClass| {
        let (w, h) = susan_dims(s);
        format!("{w}x{h}")
    };
    let fmt_ff = |s: SizeClass| format!("{}", fft_n(s));
    let row = |benchmark, source, description, f: &dyn Fn(SizeClass) -> String| Table1Row {
        benchmark,
        source,
        description,
        sizes: [
            f(SizeClass::Small),
            f(SizeClass::Medium),
            f(SizeClass::Large),
        ],
    };
    vec![
        row(
            "TRAPEZ",
            "kernel",
            "Trapezoidal rule for integration",
            &fmt_pow,
        ),
        row("MMULT", "kernel", "Matrix multiply", &fmt_mm),
        row("QSORT", "MiBench", "Array sorting", &fmt_qs),
        row("SUSAN", "MiBench", "Image recognition / smoothing", &fmt_su),
        row("FFT", "NAS", "FFT on a matrix of complex numbers", &fmt_ff),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapez_sizes_are_powers_of_two() {
        assert_eq!(trapez_intervals(SizeClass::Small), 1 << 19);
        assert_eq!(trapez_intervals(SizeClass::Large), 1 << 23);
    }

    #[test]
    fn mmult_differs_by_platform() {
        assert_eq!(mmult_n(SizeClass::Large, Platform::Simulated), 256);
        assert_eq!(mmult_n(SizeClass::Large, Platform::Native), 1024);
    }

    #[test]
    fn qsort_cell_sizes_fit_local_store() {
        for s in SizeClass::ALL {
            let bytes = qsort_n(s, Platform::Cell) * 4;
            assert!(bytes <= 64 * 1024, "cell qsort {s:?} = {bytes}B");
        }
        // native Large would NOT fit a 256K LS even before code/buffers
        assert!(qsort_n(SizeClass::Large, Platform::Native) * 4 >= 200_000);
    }

    #[test]
    fn susan_matches_paper() {
        assert_eq!(susan_dims(SizeClass::Small), (256, 288));
        assert_eq!(susan_dims(SizeClass::Large), (1024, 576));
    }

    #[test]
    fn table1_has_five_rows() {
        let t = table1();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].benchmark, "TRAPEZ");
        assert_eq!(t[4].source, "NAS");
        assert!(t[1].sizes[0].contains("64x64"));
    }
}
