//! SUSAN: image smoothing (MiBench, `susan -s`).
//!
//! §6.1.2: "SUSAN has three distinct phases which have been parallelized
//! independently: the initialization phase, the processing phase and the
//! one during which the results are written to a large output array."
//!
//! The three phases become three DDM blocks, each holding one loop DThread
//! over row bands — the block chaining gives exactly the phase barriers the
//! paper describes. Smoothing itself is the USAN-style brightness-weighted
//! 5×5 mask: weight = spatial Gaussian × `exp(-(ΔI/t)²)` via a 512-entry
//! lookup table, as in the MiBench original.

use crate::common::{chunk, Params, Region};
use crate::sizes::susan_dims;
use tflux_cell::work::{CellWork, CellWorkSource};
use tflux_core::prelude::*;
use tflux_core::unroll::Unroll;
use tflux_runtime::{BodyTable, Runtime, RuntimeConfig, SharedVar};
use tflux_sim::work::{InstanceWork, WorkSource};

/// Brightness threshold of the similarity function.
pub const THRESHOLD: f64 = 27.0;
/// Mask radius (5×5 mask).
pub const RADIUS: usize = 2;

/// The brightness LUT the MiBench code builds once: index |ΔI| ∈ 0..512.
pub fn brightness_lut() -> Vec<f64> {
    (0..512)
        .map(|d| {
            let x = d as f64 / THRESHOLD;
            (-(x * x)).exp()
        })
        .collect()
}

/// Deterministic synthetic input: a gradient with an embedded pattern
/// (generated in the *init phase*, so the benchmark is self-contained).
pub fn gen_row(w: usize, _h: usize, y: usize) -> Vec<u8> {
    (0..w)
        .map(|x| {
            let g = (x * 255 / w.max(1)) as u32;
            let p = ((x * 31 + y * 17) % 97) as u32;
            let edge = if (x / 32 + y / 32).is_multiple_of(2) {
                40
            } else {
                0
            };
            ((g + p + edge) % 256) as u8
        })
        .collect()
}

/// Smooth one pixel with the 5×5 USAN mask.
fn smooth_pixel(img: &dyn Fn(isize, isize) -> u8, x: usize, y: usize, lut: &[f64]) -> u8 {
    let center = img(x as isize, y as isize) as i32;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for dy in -(RADIUS as isize)..=(RADIUS as isize) {
        for dx in -(RADIUS as isize)..=(RADIUS as isize) {
            if dx == 0 && dy == 0 {
                continue;
            }
            let v = img(x as isize + dx, y as isize + dy) as i32;
            let spatial = (-((dx * dx + dy * dy) as f64) / 7.5).exp();
            let w = spatial * lut[(v - center).unsigned_abs() as usize];
            num += w * v as f64;
            den += w;
        }
    }
    if den > 1e-12 {
        (num / den).round().clamp(0.0, 255.0) as u8
    } else {
        center as u8
    }
}

/// Smooth rows `lo..hi` of `img` (w×h, row-major), returning the band.
/// Border pixels (within `RADIUS` of the edge) pass through unchanged.
pub fn smooth_band(img: &[u8], w: usize, h: usize, lo: usize, hi: usize, lut: &[f64]) -> Vec<u8> {
    let at = |x: isize, y: isize| -> u8 {
        let xc = x.clamp(0, w as isize - 1) as usize;
        let yc = y.clamp(0, h as isize - 1) as usize;
        img[yc * w + xc]
    };
    let mut out = Vec::with_capacity((hi - lo) * w);
    for y in lo..hi {
        for x in 0..w {
            if x < RADIUS || x >= w - RADIUS || y < RADIUS || y >= h - RADIUS {
                out.push(img[y * w + x]);
            } else {
                out.push(smooth_pixel(&at, x, y, lut));
            }
        }
    }
    out
}

/// Sequential reference: init → smooth → write-out.
pub fn seq(w: usize, h: usize) -> Vec<u8> {
    let lut = brightness_lut();
    let mut img = Vec::with_capacity(w * h);
    for y in 0..h {
        img.extend_from_slice(&gen_row(w, h, y));
    }
    // the write-out phase's copy is the returned Vec itself
    smooth_band(&img, w, h, 0, h, &lut)
}

/// Thread ids of the SUSAN program (one loop thread per phase/block).
pub struct SusanIds {
    /// Phase 1: image initialization.
    pub init: ThreadId,
    /// Phase 2: smoothing.
    pub smooth: ThreadId,
    /// Phase 3: write-out.
    pub writeout: ThreadId,
}

/// Build the three-block DDM program.
pub fn program(p: &Params) -> (DdmProgram, SusanIds) {
    let (_, h) = susan_dims(p.size);
    let arity = Unroll::new(h as u64, p.unroll).arity();
    let mut b = ProgramBuilder::new();
    let b1 = b.block();
    let init = b.thread(b1, ThreadSpec::new("susan.init", arity));
    let b2 = b.block();
    let smooth = b.thread(b2, ThreadSpec::new("susan.smooth", arity));
    let b3 = b.block();
    let writeout = b.thread(b3, ThreadSpec::new("susan.writeout", arity));
    (
        b.build().expect("susan program"),
        SusanIds {
            init,
            smooth,
            writeout,
        },
    )
}

/// Run SUSAN on the real runtime; returns the smoothed image.
pub fn run_ddm(p: &Params) -> Vec<u8> {
    let (w, h) = susan_dims(p.size);
    let (prog, ids) = program(p);
    let arity = prog.thread(ids.init).arity;
    let lut = brightness_lut();

    let img_bands = SharedVar::<Vec<u8>>::new(arity);
    let smooth_bands = SharedVar::<Vec<u8>>::new(arity);
    let out_bands = SharedVar::<Vec<u8>>::new(arity);

    let mut bodies = BodyTable::new(&prog);
    let (iref, sref, oref, lref) = (&img_bands, &smooth_bands, &out_bands, &lut);
    bodies.set(ids.init, move |ctx| {
        let (lo, hi) = chunk(h as u64, p.unroll, ctx.context.0);
        let mut band = Vec::with_capacity((hi - lo) as usize * w);
        for y in lo..hi {
            band.extend_from_slice(&gen_row(w, h, y as usize));
        }
        iref.put(ctx.context, band);
    });
    bodies.set(ids.smooth, move |ctx| {
        // the block barrier guarantees every init band exists; rebuild the
        // halo view from the producer slots
        let (lo, hi) = chunk(h as u64, p.unroll, ctx.context.0);
        let (lo, hi) = (lo as usize, hi as usize);
        let halo_lo = lo.saturating_sub(RADIUS);
        let halo_hi = (hi + RADIUS).min(h);
        let mut halo = Vec::with_capacity((halo_hi - halo_lo) * w);
        for y in halo_lo..halo_hi {
            let band_idx = y as u64 / p.unroll.max(1) as u64;
            let (blo, _) = chunk(h as u64, p.unroll, band_idx as u32);
            let band = iref.get(Context(band_idx as u32));
            let row = y - blo as usize;
            halo.extend_from_slice(&band[row * w..(row + 1) * w]);
        }
        let band = smooth_band(
            &halo,
            w,
            halo_hi - halo_lo,
            lo - halo_lo,
            hi - halo_lo,
            lref,
        );
        sref.put(ctx.context, band);
    });
    bodies.set(ids.writeout, move |ctx| {
        oref.put(ctx.context, sref.get(ctx.context).clone());
    });

    Runtime::new(RuntimeConfig::with_kernels(p.kernels))
        .run(&prog, &bodies)
        .expect("susan run");
    drop(bodies);

    let mut out = Vec::with_capacity(w * h);
    for band in out_bands.iter() {
        out.extend_from_slice(band);
    }
    out
}

/// Cycles per smoothed pixel (24 weighted taps).
const CYCLES_PER_PIXEL: u64 = 180;
/// Cycles per generated pixel.
const CYCLES_PER_GEN: u64 = 8;

/// Simulator trace model: image at 256 MB, smoothed at 512 MB, output
/// array at 768 MB.
pub struct SusanModel {
    w: usize,
    h: usize,
    unroll: u32,
    ids: SusanIds,
    img: Region,
    sm: Region,
    out: Region,
}

/// Build the simulator work source.
pub fn sim_source(p: &Params, ids: SusanIds) -> SusanModel {
    let (w, h) = susan_dims(p.size);
    SusanModel {
        w,
        h,
        unroll: p.unroll,
        ids,
        img: Region::new(0x1000_0000, 1),
        sm: Region::new(0x2000_0000, 1),
        out: Region::new(0x3000_0000, 1),
    }
}

impl WorkSource for SusanModel {
    fn work(&self, inst: Instance, out: &mut InstanceWork) {
        let w = self.w as u64;
        let (lo, hi) = chunk(self.h as u64, self.unroll, inst.context.0);
        let rows = hi - lo;
        if inst.thread == self.ids.init {
            self.img.scan(out, lo * w, hi * w, true);
            out.compute = rows * w * CYCLES_PER_GEN;
        } else if inst.thread == self.ids.smooth {
            let halo_lo = lo.saturating_sub(RADIUS as u64);
            let halo_hi = (hi + RADIUS as u64).min(self.h as u64);
            self.img.scan(out, halo_lo * w, halo_hi * w, false);
            self.sm.scan(out, lo * w, hi * w, true);
            out.compute = rows * w * CYCLES_PER_PIXEL;
        } else if inst.thread == self.ids.writeout {
            self.sm.scan(out, lo * w, hi * w, false);
            self.out.scan(out, lo * w, hi * w, true);
            out.compute = rows * w;
        }
    }
}

/// Cell cost model: bands plus halos move by DMA; LS holds the halo band
/// and the produced band.
pub struct SusanCellModel {
    w: usize,
    h: usize,
    unroll: u32,
    ids: SusanIds,
}

/// Build the Cell work source.
pub fn cell_source(p: &Params, ids: SusanIds) -> SusanCellModel {
    let (w, h) = susan_dims(p.size);
    SusanCellModel {
        w,
        h,
        unroll: p.unroll,
        ids,
    }
}

impl CellWorkSource for SusanCellModel {
    fn work(&self, inst: Instance) -> CellWork {
        let w = self.w as u64;
        let (lo, hi) = chunk(self.h as u64, self.unroll, inst.context.0);
        let rows = hi - lo;
        let band = rows * w;
        if inst.thread == self.ids.init {
            CellWork {
                compute: band * CYCLES_PER_GEN,
                import_bytes: 0,
                export_bytes: band,
                ls_bytes: 32 * 1024 + band,
            }
        } else if inst.thread == self.ids.smooth {
            let halo = (rows + 2 * RADIUS as u64) * w;
            CellWork {
                compute: band * CYCLES_PER_PIXEL,
                import_bytes: halo,
                export_bytes: band,
                ls_bytes: 32 * 1024 + halo + band,
            }
        } else if inst.thread == self.ids.writeout {
            CellWork {
                compute: band,
                import_bytes: band,
                export_bytes: band,
                ls_bytes: 32 * 1024 + 2 * band,
            }
        } else {
            CellWork::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::SizeClass;

    #[test]
    fn lut_is_monotonic_decreasing() {
        let lut = brightness_lut();
        assert_eq!(lut.len(), 512);
        assert!((lut[0] - 1.0).abs() < 1e-12);
        assert!(lut.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn smoothing_preserves_constant_images() {
        let w = 32;
        let h = 16;
        let img = vec![100u8; w * h];
        let lut = brightness_lut();
        let out = smooth_band(&img, w, h, 0, h, &lut);
        assert_eq!(out, img);
    }

    #[test]
    fn smoothing_reduces_noise_variance() {
        let (w, h) = (64, 32);
        let mut img = Vec::new();
        for y in 0..h {
            img.extend_from_slice(&gen_row(w, h, y));
        }
        let lut = brightness_lut();
        let out = smooth_band(&img, w, h, 0, h, &lut);
        let variance = |v: &[u8]| {
            let m = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
            v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len() as f64
        };
        // interior only (borders pass through)
        let inner: Vec<u8> = (RADIUS..h - RADIUS)
            .flat_map(|y| img[y * w + RADIUS..y * w + w - RADIUS].to_vec())
            .collect();
        let inner_out: Vec<u8> = (RADIUS..h - RADIUS)
            .flat_map(|y| out[y * w + RADIUS..y * w + w - RADIUS].to_vec())
            .collect();
        assert!(variance(&inner_out) < variance(&inner));
    }

    #[test]
    fn ddm_matches_sequential() {
        // full Small image on the real runtime
        let p = Params::soft(4, 32, SizeClass::Small);
        let (w, h) = susan_dims(SizeClass::Small);
        assert_eq!(run_ddm(&p), seq(w, h));
    }

    #[test]
    fn ddm_matches_with_odd_band_size() {
        let p = Params::soft(3, 7, SizeClass::Small); // 288 rows / 7 -> ragged
        let (w, h) = susan_dims(SizeClass::Small);
        assert_eq!(run_ddm(&p), seq(w, h));
    }

    #[test]
    fn program_has_three_blocks() {
        let p = Params::hard(4, 16, SizeClass::Small);
        let (prog, _) = program(&p);
        assert_eq!(prog.blocks().len(), 3);
    }

    #[test]
    fn sim_model_smooth_reads_halo() {
        let p = Params::hard(4, 16, SizeClass::Small);
        let (_, ids) = program(&p);
        let src = sim_source(&p, ids);
        let mut w = InstanceWork::default();
        src.work(Instance::new(src.ids.smooth, Context(1)), &mut w);
        let width = 256u64;
        // halo = (16 + 4) rows read + 16 rows written, at 1 byte/pixel
        let read_lines = (20 * width).div_ceil(64);
        let write_lines = (16 * width).div_ceil(64);
        assert_eq!(w.accesses.len() as u64, read_lines + write_lines);
    }
}
