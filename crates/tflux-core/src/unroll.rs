//! Loop unrolling for DThreads.
//!
//! §5 of the paper: *"For both the sequential and the parallelized versions
//! of the benchmarks we evaluated variations with the basic loops being
//! unrolled from 1 to 64 times."* Unrolling a loop DThread by a factor `u`
//! coarsens its grain: the thread's arity shrinks from `n` iterations to
//! `ceil(n / u)` instances, each covering a contiguous iteration range. This
//! is the knob that amortizes per-DThread TSU overheads — TFluxHard
//! saturates at unroll 2–4 while TFluxSoft needs ≥ 16 and TFluxCell up
//! to 64 (MMULT).

use crate::ids::Context;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// An unrolled view of a loop of `iterations` iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Unroll {
    /// Total loop iterations before unrolling.
    pub iterations: u64,
    /// Unroll factor (iterations per DThread instance); must be ≥ 1.
    pub factor: u32,
}

impl Unroll {
    /// Unroll `iterations` by `factor` (clamped to ≥ 1).
    pub fn new(iterations: u64, factor: u32) -> Self {
        Unroll {
            iterations,
            factor: factor.max(1),
        }
    }

    /// No unrolling: one iteration per instance.
    pub fn none(iterations: u64) -> Self {
        Unroll::new(iterations, 1)
    }

    /// The DThread arity after unrolling (`ceil(n / u)`), at least 1.
    pub fn arity(&self) -> u32 {
        let a = self.iterations.div_ceil(self.factor as u64).max(1);
        u32::try_from(a).expect("unrolled arity exceeds u32")
    }

    /// The iteration range covered by instance `ctx`.
    ///
    /// The last instance may cover fewer than `factor` iterations.
    pub fn range(&self, ctx: Context) -> Range<u64> {
        let lo = ctx.0 as u64 * self.factor as u64;
        let hi = (lo + self.factor as u64).min(self.iterations);
        lo..hi
    }

    /// Number of iterations instance `ctx` executes.
    pub fn len(&self, ctx: Context) -> u64 {
        let r = self.range(ctx);
        r.end.saturating_sub(r.start)
    }

    /// True when the loop has no iterations at all.
    pub fn is_empty(&self) -> bool {
        self.iterations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let u = Unroll::new(64, 4);
        assert_eq!(u.arity(), 16);
        assert_eq!(u.range(Context(0)), 0..4);
        assert_eq!(u.range(Context(15)), 60..64);
    }

    #[test]
    fn ragged_tail() {
        let u = Unroll::new(10, 4);
        assert_eq!(u.arity(), 3);
        assert_eq!(u.range(Context(2)), 8..10);
        assert_eq!(u.len(Context(2)), 2);
    }

    #[test]
    fn factor_clamped_to_one() {
        let u = Unroll::new(5, 0);
        assert_eq!(u.factor, 1);
        assert_eq!(u.arity(), 5);
    }

    #[test]
    fn ranges_cover_all_iterations_without_overlap() {
        for n in [1u64, 7, 64, 100, 1000] {
            for f in [1u32, 2, 3, 16, 64, 128] {
                let u = Unroll::new(n, f);
                let mut covered = 0u64;
                let mut expect_next = 0u64;
                for c in 0..u.arity() {
                    let r = u.range(Context(c));
                    assert_eq!(r.start, expect_next, "n={n} f={f} c={c}");
                    covered += r.end - r.start;
                    expect_next = r.end;
                }
                assert_eq!(covered, n, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn empty_loop_has_one_empty_instance() {
        let u = Unroll::new(0, 8);
        assert!(u.is_empty());
        assert_eq!(u.arity(), 1);
        assert_eq!(u.len(Context(0)), 0);
    }
}
