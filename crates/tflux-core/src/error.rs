//! Error types for program construction and TSU operation.

use crate::ids::{BlockId, Epoch, Instance, ThreadId};
use std::fmt;

/// Errors raised while building or executing a DDM program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An arc referenced a thread id that was never declared.
    UnknownThread(ThreadId),
    /// An arc connected threads living in different DDM blocks.
    ///
    /// Cross-block dependencies are expressed by block ordering (the paper's
    /// Inlet/Outlet chaining), not by explicit arcs.
    CrossBlockArc {
        /// The producer side of the offending arc.
        producer: ThreadId,
        /// The consumer side of the offending arc.
        consumer: ThreadId,
    },
    /// An arc mapping is incompatible with the producer/consumer arities.
    ArityMismatch {
        /// The producer side of the offending arc.
        producer: ThreadId,
        /// The consumer side of the offending arc.
        consumer: ThreadId,
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// A thread was declared with arity zero.
    ZeroArity(ThreadId),
    /// The synchronization graph of a block contains a dependency cycle.
    CyclicBlock(BlockId),
    /// A block holds more instances than the TSU capacity allows.
    BlockTooLarge {
        /// The offending block.
        block: BlockId,
        /// Number of instances the block needs loaded at once.
        instances: usize,
        /// The TSU capacity that was exceeded.
        capacity: usize,
    },
    /// The program has no blocks.
    EmptyProgram,
    /// A block has no application threads.
    EmptyBlock(BlockId),
    /// `complete` was called for an instance that is not currently running.
    NotRunning(Instance),
    /// `dispatch` was called for an instance that is not resident in the
    /// Synchronization Memory (its block is not loaded, it already ran, or
    /// it is already running).
    NotResident(Instance),
    /// The Synchronization Memory was poisoned: a kernel died mid-update
    /// (or a protocol invariant was violated mid-flight), so the ready
    /// counts can no longer be trusted. All subsequent operations fail
    /// with this error instead of silently continuing on half-applied
    /// state.
    SmPoisoned,
    /// A duplicate arc was inserted between the same pair of threads.
    DuplicateArc {
        /// The producer side of the offending arc.
        producer: ThreadId,
        /// The consumer side of the offending arc.
        consumer: ThreadId,
    },
    /// An operation carried an epoch token older than the state it touched:
    /// a late completion from a retired epoch raced a re-armed slot, or an
    /// epoch was retired twice. The stale side always loses — exactly one
    /// winner per slot and per retirement.
    StaleEpoch {
        /// The epoch the stale operation belonged to.
        epoch: Epoch,
        /// The epoch the Synchronization Memory is currently running.
        current: Epoch,
    },
    /// `retire_epoch` was called for an epoch that has not finished its
    /// pass yet, or out of order — epochs retire oldest-first.
    EpochNotDrained(Epoch),
    /// `open_epoch` found every credit in the window spoken for: the
    /// feeder must wait for a completion to retire an epoch and return a
    /// credit before streaming another pass.
    WindowExhausted {
        /// The configured credit window (maximum in-flight epochs).
        window: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownThread(t) => write!(f, "unknown thread {t}"),
            CoreError::CrossBlockArc { producer, consumer } => write!(
                f,
                "arc {producer} -> {consumer} crosses DDM block boundaries; \
                 order the blocks instead"
            ),
            CoreError::ArityMismatch {
                producer,
                consumer,
                detail,
            } => write!(f, "arc {producer} -> {consumer}: {detail}"),
            CoreError::ZeroArity(t) => write!(f, "thread {t} declared with arity 0"),
            CoreError::CyclicBlock(b) => {
                write!(f, "block {b:?} contains a dependency cycle")
            }
            CoreError::BlockTooLarge {
                block,
                instances,
                capacity,
            } => write!(
                f,
                "block {block:?} needs {instances} TSU entries but capacity is {capacity}; \
                 split it into more blocks"
            ),
            CoreError::EmptyProgram => write!(f, "program has no DDM blocks"),
            CoreError::EmptyBlock(b) => write!(f, "block {b:?} has no application threads"),
            CoreError::NotRunning(i) => {
                write!(f, "instance {i} completed but was never fetched")
            }
            CoreError::NotResident(i) => {
                write!(f, "instance {i} dispatched but its block is not loaded")
            }
            CoreError::SmPoisoned => write!(
                f,
                "synchronization memory poisoned by a kernel death mid-update; \
                 ready counts are no longer trustworthy"
            ),
            CoreError::DuplicateArc { producer, consumer } => {
                write!(f, "duplicate arc {producer} -> {consumer}")
            }
            CoreError::StaleEpoch { epoch, current } => write!(
                f,
                "stale update from epoch {epoch} rejected; the table is at epoch {current}"
            ),
            CoreError::EpochNotDrained(e) => write!(
                f,
                "epoch {e} cannot retire: it has not drained yet (epochs retire oldest-first)"
            ),
            CoreError::WindowExhausted { window } => write!(
                f,
                "epoch credit window of {window} exhausted; retire a completed epoch first"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::BlockTooLarge {
            block: BlockId(1),
            instances: 100,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("64"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CoreError::EmptyProgram);
    }
}
