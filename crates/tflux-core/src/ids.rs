//! Identifier newtypes for the DDM model.
//!
//! Everything in the model is addressed by small dense integers so that the
//! TSU state machine can use flat arrays instead of hash maps — the paper's
//! hardware TSU does exactly this with its Synchronization Memory.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a DThread *template* (a node of the synchronization graph).
///
/// Thread ids are dense: the `ProgramBuilder` assigns them in creation order
/// across the whole program, so a `ThreadId` can index a `Vec`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

/// Instance index of a loop DThread (the DDM *context*).
///
/// Scalar DThreads have a single instance with context `0`; a loop DThread
/// of arity `n` has contexts `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Context(pub u32);

/// A concrete schedulable unit: a DThread template plus a context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Instance {
    /// The DThread template.
    pub thread: ThreadId,
    /// The instance index within the template.
    pub context: Context,
}

/// Identifier of a DDM block (dense, in program order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Identifier of an execution kernel (one per CPU devoted to DThreads).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KernelId(pub u32);

/// Identifier of an admitted program (a *tenant*) in a multi-program server.
///
/// Program ids are assigned monotonically by the admitting server and are
/// never reused, so a stale id can always be detected after eviction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProgramId(pub u64);

/// One streaming iteration of a program through its dataflow graph.
///
/// Epochs are assigned monotonically per Synchronization Memory: epoch 0 is
/// the one-shot run every program gets at construction, and each
/// `open_epoch` credits one more pass. The full 64-bit id never wraps; the
/// 30-bit tag packed into each slot's lifecycle word is `epoch mod 2^30`,
/// which is ample to reject any late completion a real schedule can produce.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Epoch(pub u64);

impl ThreadId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Context {
    /// The context as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl KernelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl ProgramId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Instance {
    /// Build an instance from raw parts.
    #[inline]
    pub fn new(thread: ThreadId, context: Context) -> Self {
        Instance { thread, context }
    }

    /// The single instance of a scalar thread.
    #[inline]
    pub fn scalar(thread: ThreadId) -> Self {
        Instance::new(thread, Context(0))
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.c{}", self.thread.0, self.context.0)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.c{}", self.thread.0, self.context.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Debug for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

impl fmt::Debug for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_ordering_is_thread_major() {
        let a = Instance::new(ThreadId(1), Context(9));
        let b = Instance::new(ThreadId(2), Context(0));
        assert!(a < b);
    }

    #[test]
    fn debug_formats_are_compact() {
        let i = Instance::new(ThreadId(3), Context(7));
        assert_eq!(format!("{i:?}"), "T3.c7");
        assert_eq!(format!("{:?}", BlockId(2)), "B2");
        assert_eq!(format!("{:?}", KernelId(5)), "K5");
        assert_eq!(format!("{:?}", ProgramId(7)), "P7");
    }

    #[test]
    fn scalar_instance_has_context_zero() {
        assert_eq!(Instance::scalar(ThreadId(4)).context, Context(0));
    }
}
