//! DDM blocks: TSU-sized partitions of a program.
//!
//! A program with an arbitrarily large synchronization graph is split into
//! *DDM blocks* so that only one block's metadata needs to live in the TSU
//! at a time (§2 of the paper). Each block carries two synthetic DThreads:
//! the **Inlet**, whose completion loads the block's metadata into the TSU,
//! and the **Outlet**, which becomes ready once every application DThread of
//! the block has completed and whose completion frees the TSU entries and
//! chains the next block's inlet (or terminates the kernels for the last
//! block).

use crate::ids::{BlockId, ThreadId};
use serde::{Deserialize, Serialize};

/// One DDM block: a subset of the program's DThreads plus its inlet/outlet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DdmBlock {
    /// Dense block id (blocks execute in id order).
    pub id: BlockId,
    /// The application DThreads that belong to this block.
    pub threads: Vec<ThreadId>,
    /// The synthetic inlet DThread.
    pub inlet: ThreadId,
    /// The synthetic outlet DThread.
    pub outlet: ThreadId,
}

impl DdmBlock {
    /// Iterate over every thread of the block including inlet and outlet.
    pub fn all_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        std::iter::once(self.inlet)
            .chain(self.threads.iter().copied())
            .chain(std::iter::once(self.outlet))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_threads_orders_inlet_first_outlet_last() {
        let b = DdmBlock {
            id: BlockId(0),
            threads: vec![ThreadId(1), ThreadId(2)],
            inlet: ThreadId(0),
            outlet: ThreadId(3),
        };
        let v: Vec<_> = b.all_threads().collect();
        assert_eq!(v, vec![ThreadId(0), ThreadId(1), ThreadId(2), ThreadId(3)]);
    }
}
