//! Instance mappings for synchronization-graph arcs.
//!
//! An arc of the synchronization graph connects a producer DThread template
//! to a consumer template. When either side is a loop thread (arity > 1) the
//! arc also needs to say *which instances* depend on which. The paper's
//! benchmarks need one-to-one loop chaining, broadcast from a scalar setup
//! thread, reductions into a scalar sink, and the QSORT two-level merge tree
//! — all covered by the variants here.

use crate::error::CoreError;
use crate::ids::{Context, ThreadId};
use serde::{Deserialize, Serialize};

/// How producer instances map onto consumer instances across an arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArcMapping {
    /// Every producer instance notifies every consumer instance.
    ///
    /// With producer arity 1 this is a *broadcast*; with consumer arity 1 it
    /// is a *reduction*; with both 1 it is a plain scalar dependency.
    All,
    /// Producer context `c` notifies consumer context `c`.
    ///
    /// Requires equal arities.
    OneToOne,
    /// Producer context `c` notifies consumer context `c + k` when in range.
    ///
    /// Used for pipelined/stencil dependencies. Out-of-range targets are
    /// simply dropped (the consumer instance then has one fewer producer).
    Offset(i32),
    /// Producer context `c` notifies consumer context `c / factor`.
    ///
    /// The *merge tree* mapping: `factor` producers feed each consumer.
    /// Requires `consumer_arity == ceil(producer_arity / factor)`.
    Group {
        /// How many producer instances feed each consumer instance.
        factor: u32,
    },
    /// Producer context `c` notifies consumers `c*factor .. (c+1)*factor`.
    ///
    /// The *fork* mapping, inverse of [`ArcMapping::Group`]. Requires
    /// `producer_arity == ceil(consumer_arity / factor)`.
    Expand {
        /// How many consumer instances each producer instance feeds.
        factor: u32,
    },
}

impl ArcMapping {
    /// A broadcast from a scalar producer (alias for [`ArcMapping::All`]).
    #[allow(non_upper_case_globals)]
    pub const Broadcast: ArcMapping = ArcMapping::All;
    /// A reduction into a scalar consumer (alias for [`ArcMapping::All`]).
    #[allow(non_upper_case_globals)]
    pub const Reduction: ArcMapping = ArcMapping::All;
    /// A scalar-to-scalar dependency (alias for [`ArcMapping::All`]).
    #[allow(non_upper_case_globals)]
    pub const Scalar: ArcMapping = ArcMapping::All;

    /// Check that this mapping is compatible with the given arities.
    pub fn validate(
        &self,
        producer: ThreadId,
        consumer: ThreadId,
        prod_arity: u32,
        cons_arity: u32,
    ) -> Result<(), CoreError> {
        let fail = |detail: String| {
            Err(CoreError::ArityMismatch {
                producer,
                consumer,
                detail,
            })
        };
        match *self {
            ArcMapping::All => Ok(()),
            ArcMapping::OneToOne => {
                if prod_arity != cons_arity {
                    fail(format!(
                        "OneToOne needs equal arities, got {prod_arity} -> {cons_arity}"
                    ))
                } else {
                    Ok(())
                }
            }
            ArcMapping::Offset(_) => {
                if prod_arity != cons_arity {
                    fail(format!(
                        "Offset needs equal arities, got {prod_arity} -> {cons_arity}"
                    ))
                } else {
                    Ok(())
                }
            }
            ArcMapping::Group { factor } => {
                if factor == 0 {
                    return fail("Group factor must be non-zero".into());
                }
                let expect = prod_arity.div_ceil(factor);
                if cons_arity != expect {
                    fail(format!(
                        "Group{{{factor}}} over {prod_arity} producers needs consumer \
                         arity {expect}, got {cons_arity}"
                    ))
                } else {
                    Ok(())
                }
            }
            ArcMapping::Expand { factor } => {
                if factor == 0 {
                    return fail("Expand factor must be non-zero".into());
                }
                let expect = cons_arity.div_ceil(factor);
                if prod_arity != expect {
                    fail(format!(
                        "Expand{{{factor}}} into {cons_arity} consumers needs producer \
                         arity {expect}, got {prod_arity}"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The consumer contexts notified when producer context `ctx` completes.
    ///
    /// `prod_arity`/`cons_arity` are the arities of the two templates; the
    /// mapping must already have been [validated](Self::validate).
    pub fn consumers(
        &self,
        ctx: Context,
        prod_arity: u32,
        cons_arity: u32,
    ) -> impl Iterator<Item = Context> + '_ {
        let c = ctx.0;
        debug_assert!(c < prod_arity, "producer context out of range");
        let (lo, hi): (u32, u32) = match *self {
            ArcMapping::All => (0, cons_arity),
            ArcMapping::OneToOne => (c, c + 1),
            ArcMapping::Offset(k) => {
                let t = c as i64 + k as i64;
                if t >= 0 && (t as u32) < cons_arity {
                    (t as u32, t as u32 + 1)
                } else {
                    (0, 0)
                }
            }
            ArcMapping::Group { factor } => {
                let t = c / factor;
                (t, t + 1)
            }
            ArcMapping::Expand { factor } => {
                let lo = c * factor;
                (lo, (lo + factor).min(cons_arity))
            }
        };
        (lo..hi).map(Context)
    }

    /// How many producer completions consumer context `ctx` waits for on
    /// this arc.
    pub fn fan_in(&self, ctx: Context, prod_arity: u32, cons_arity: u32) -> u32 {
        let c = ctx.0;
        debug_assert!(c < cons_arity, "consumer context out of range");
        match *self {
            ArcMapping::All => prod_arity,
            ArcMapping::OneToOne => 1,
            ArcMapping::Offset(k) => {
                // producer context c - k must exist
                let s = c as i64 - k as i64;
                u32::from(s >= 0 && (s as u32) < prod_arity)
            }
            ArcMapping::Group { factor } => {
                let lo = c * factor;
                let hi = (lo + factor).min(prod_arity);
                hi.saturating_sub(lo)
            }
            ArcMapping::Expand { factor } => {
                let p = c / factor;
                u32::from(p < prod_arity)
            }
        }
    }

    /// The largest [`fan_in`](Self::fan_in) any consumer context sees on
    /// this arc — how hot the hottest sink slot gets. Reduction funnels
    /// size themselves from this without walking every context.
    pub fn max_fan_in(&self, prod_arity: u32, cons_arity: u32) -> u32 {
        match *self {
            ArcMapping::All => prod_arity,
            ArcMapping::OneToOne => 1,
            ArcMapping::Offset(k) => {
                // at least one producer context lands in range iff the
                // shifted window overlaps [0, cons_arity)
                let lo = k as i64;
                let hi = (prod_arity as i64 - 1) + k as i64;
                u32::from(hi >= 0 && lo < cons_arity as i64)
            }
            ArcMapping::Group { factor } => factor.min(prod_arity),
            ArcMapping::Expand { .. } => u32::from(prod_arity > 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(m: ArcMapping, ctx: u32, pa: u32, ca: u32) -> Vec<u32> {
        m.consumers(Context(ctx), pa, ca).map(|c| c.0).collect()
    }

    #[test]
    fn all_broadcasts_and_reduces() {
        assert_eq!(collect(ArcMapping::All, 0, 1, 4), vec![0, 1, 2, 3]);
        assert_eq!(collect(ArcMapping::All, 2, 4, 1), vec![0]);
        assert_eq!(ArcMapping::All.fan_in(Context(0), 4, 1), 4);
        assert_eq!(ArcMapping::All.fan_in(Context(3), 1, 4), 1);
    }

    #[test]
    fn one_to_one_maps_identity() {
        assert_eq!(collect(ArcMapping::OneToOne, 2, 4, 4), vec![2]);
        assert_eq!(ArcMapping::OneToOne.fan_in(Context(2), 4, 4), 1);
    }

    #[test]
    fn offset_drops_out_of_range() {
        assert_eq!(collect(ArcMapping::Offset(1), 3, 4, 4), vec![]);
        assert_eq!(collect(ArcMapping::Offset(1), 1, 4, 4), vec![2]);
        assert_eq!(collect(ArcMapping::Offset(-1), 0, 4, 4), vec![]);
        // first consumer of a +1 offset has no producer
        assert_eq!(ArcMapping::Offset(1).fan_in(Context(0), 4, 4), 0);
        assert_eq!(ArcMapping::Offset(1).fan_in(Context(3), 4, 4), 1);
    }

    #[test]
    fn group_builds_merge_tree() {
        // 8 sorters -> 4 mergers, factor 2
        assert_eq!(collect(ArcMapping::Group { factor: 2 }, 5, 8, 4), vec![2]);
        assert_eq!(ArcMapping::Group { factor: 2 }.fan_in(Context(2), 8, 4), 2);
        // ragged tail: 5 producers, factor 2 -> 3 consumers, last gets 1
        assert_eq!(ArcMapping::Group { factor: 2 }.fan_in(Context(2), 5, 3), 1);
    }

    #[test]
    fn expand_forks() {
        assert_eq!(
            collect(ArcMapping::Expand { factor: 3 }, 1, 2, 6),
            vec![3, 4, 5]
        );
        assert_eq!(ArcMapping::Expand { factor: 3 }.fan_in(Context(4), 2, 6), 1);
        // ragged tail
        assert_eq!(
            collect(ArcMapping::Expand { factor: 3 }, 1, 2, 5),
            vec![3, 4]
        );
    }

    #[test]
    fn validate_rejects_bad_arities() {
        let p = ThreadId(0);
        let c = ThreadId(1);
        assert!(ArcMapping::OneToOne.validate(p, c, 4, 5).is_err());
        assert!(ArcMapping::Group { factor: 2 }
            .validate(p, c, 8, 3)
            .is_err());
        assert!(ArcMapping::Group { factor: 2 }.validate(p, c, 8, 4).is_ok());
        assert!(ArcMapping::Group { factor: 0 }
            .validate(p, c, 8, 4)
            .is_err());
        assert!(ArcMapping::Expand { factor: 2 }
            .validate(p, c, 4, 8)
            .is_ok());
        assert!(ArcMapping::Expand { factor: 2 }
            .validate(p, c, 3, 8)
            .is_err());
        assert!(ArcMapping::All.validate(p, c, 3, 8).is_ok());
    }

    #[test]
    fn max_fan_in_bounds_every_context() {
        let cases = [
            (ArcMapping::All, 3, 5),
            (ArcMapping::All, 5, 1),
            (ArcMapping::OneToOne, 6, 6),
            (ArcMapping::Offset(2), 6, 6),
            (ArcMapping::Offset(-3), 6, 6),
            (ArcMapping::Offset(9), 6, 6), // window entirely out of range
            (ArcMapping::Group { factor: 2 }, 7, 4),
            (ArcMapping::Expand { factor: 4 }, 2, 7),
        ];
        for (m, pa, ca) in cases {
            let per_context = (0..ca).map(|c| m.fan_in(Context(c), pa, ca)).max();
            assert_eq!(
                m.max_fan_in(pa, ca),
                per_context.unwrap(),
                "mapping {m:?} (pa={pa}, ca={ca})"
            );
        }
    }

    #[test]
    fn consumers_and_fan_in_are_consistent() {
        // For every mapping and arity pair, the multiset of notifications
        // seen by consumers equals the sum of fan-ins.
        let cases = [
            (ArcMapping::All, 3, 5),
            (ArcMapping::OneToOne, 6, 6),
            (ArcMapping::Offset(2), 6, 6),
            (ArcMapping::Offset(-3), 6, 6),
            (ArcMapping::Group { factor: 2 }, 7, 4),
            (ArcMapping::Expand { factor: 4 }, 2, 7),
        ];
        for (m, pa, ca) in cases {
            let mut got = vec![0u32; ca as usize];
            for p in 0..pa {
                for c in m.consumers(Context(p), pa, ca) {
                    got[c.idx()] += 1;
                }
            }
            for c in 0..ca {
                assert_eq!(
                    got[c as usize],
                    m.fan_in(Context(c), pa, ca),
                    "mapping {m:?} consumer {c} (pa={pa}, ca={ca})"
                );
            }
        }
    }
}
