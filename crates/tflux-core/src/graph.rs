//! Synchronization-graph analysis: work, span, ideal speedup, DOT export.
//!
//! These analyses operate at *instance* granularity so that loop threads and
//! instance mappings are accounted for exactly. They are used by the figure
//! harness to annotate results with the theoretical speedup bound of each
//! DDM decomposition, and by tests that check the bound is respected.

use crate::ids::{Context, Instance, ThreadId};
use crate::program::DdmProgram;
use crate::thread::ThreadKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Result of a work/span analysis of a program.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkSpan {
    /// Total work across all instances (sum of weights).
    pub work: f64,
    /// Critical-path length (longest weighted chain, blocks chained
    /// sequentially through their inlets/outlets).
    pub span: f64,
}

impl WorkSpan {
    /// The ideal speedup `work / span` (Brent's bound with unlimited
    /// kernels).
    pub fn ideal_speedup(&self) -> f64 {
        if self.span == 0.0 {
            1.0
        } else {
            self.work / self.span
        }
    }
}

/// Compute work and span of `program`, weighting each instance with
/// `weight(thread, context)`. Inlet/outlet instances participate (give them
/// zero or small weights to model TSU overheads).
pub fn work_span(
    program: &DdmProgram,
    mut weight: impl FnMut(ThreadId, Context) -> f64,
) -> WorkSpan {
    let mut work = 0.0f64;
    let mut total_span = 0.0f64;

    for block in program.blocks() {
        // Longest path within the block over instances; threads are already
        // topologically ordered by construction order? Not guaranteed —
        // compute a topological order of the block's template graph first.
        let order = block_topo_order(program, block.id);
        // dist maps instance -> longest path *ending at* that instance.
        let mut dist: HashMap<Instance, f64> = HashMap::new();
        let mut block_span = 0.0f64;
        for t in order {
            let spec = program.thread(t);
            let arity = spec.arity;
            for c in 0..arity {
                let inst = Instance::new(t, Context(c));
                let w = weight(t, Context(c));
                work += w;
                let base = dist.get(&inst).copied().unwrap_or(0.0);
                let here = base + w;
                block_span = block_span.max(here);
                for arc in program.consumers(t) {
                    let ca = program.thread(arc.consumer).arity;
                    for cc in arc.mapping.consumers(Context(c), arity, ca) {
                        let e = dist.entry(Instance::new(arc.consumer, cc)).or_insert(0.0);
                        if here > *e {
                            *e = here;
                        }
                    }
                }
            }
        }
        // inlet weight contributes serially before the block
        let inlet_w = weight(block.inlet, Context(0));
        work += inlet_w;
        total_span += inlet_w + block_span;
    }
    WorkSpan {
        work,
        span: total_span,
    }
}

/// Topological order of a block's threads (inlet excluded, outlet last).
fn block_topo_order(program: &DdmProgram, block: crate::ids::BlockId) -> Vec<ThreadId> {
    let blk = &program.blocks()[block.idx()];
    let members: Vec<ThreadId> = blk
        .threads
        .iter()
        .copied()
        .chain(std::iter::once(blk.outlet))
        .collect();
    let mut indeg: HashMap<ThreadId, usize> = members.iter().map(|&t| (t, 0)).collect();
    for &t in &members {
        for arc in program.consumers(t) {
            if let Some(d) = indeg.get_mut(&arc.consumer) {
                *d += 1;
            }
        }
    }
    let mut queue: Vec<ThreadId> = members.iter().copied().filter(|t| indeg[t] == 0).collect();
    let mut order = Vec::with_capacity(members.len());
    while let Some(t) = queue.pop() {
        order.push(t);
        for arc in program.consumers(t) {
            if let Some(d) = indeg.get_mut(&arc.consumer) {
                *d -= 1;
                if *d == 0 {
                    queue.push(arc.consumer);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), members.len(), "block not acyclic");
    order
}

/// Application instances whose initial ready count is at least
/// `min_fan_in` — the hot sinks of the program's reduction arcs, returned
/// with their fan-in (thread-major, context-minor order).
///
/// The Synchronization Memory uses this to decide whether batched flushes
/// should combine through a tree: with `min_fan_in = kernels`, a hit
/// means some slot will absorb updates from (at least) every kernel, so
/// the sink's cache line is worth funneling.
pub fn hot_sinks(program: &DdmProgram, min_fan_in: u32) -> Vec<(Instance, u32)> {
    let mut out = Vec::new();
    for (t, spec) in program.threads().iter().enumerate() {
        if spec.kind != ThreadKind::App {
            continue;
        }
        let t = ThreadId(t as u32);
        for (c, &rc) in program.initial_rcs(t).iter().enumerate() {
            if rc >= min_fan_in {
                out.push((Instance::new(t, Context(c as u32)), rc));
            }
        }
    }
    out
}

/// Render the synchronization graph in Graphviz DOT format.
///
/// Blocks become clusters; arcs are labeled with their mapping. Useful for
/// debugging DDMCPP output and for documentation.
pub fn to_dot(program: &DdmProgram) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph ddm {{");
    let _ = writeln!(s, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];");
    for block in program.blocks() {
        let _ = writeln!(s, "  subgraph cluster_b{} {{", block.id.0);
        let _ = writeln!(s, "    label=\"Block {}\";", block.id.0);
        for t in block.all_threads() {
            let spec = program.thread(t);
            let style = match spec.kind {
                ThreadKind::App => "solid",
                ThreadKind::Inlet | ThreadKind::Outlet => "dashed",
            };
            let _ = writeln!(
                s,
                "    t{} [label=\"{} [{}]\", style={}];",
                t.0, spec.name, spec.arity, style
            );
        }
        let _ = writeln!(s, "  }}");
    }
    for t in 0..program.threads().len() {
        let t = ThreadId(t as u32);
        for arc in program.consumers(t) {
            let _ = writeln!(
                s,
                "  t{} -> t{} [label=\"{:?}\"];",
                arc.producer.0, arc.consumer.0, arc.mapping
            );
        }
    }
    // sequential chaining between blocks
    for w in program.blocks().windows(2) {
        let _ = writeln!(
            s,
            "  t{} -> t{} [style=dotted];",
            w[0].outlet.0, w[1].inlet.0
        );
    }
    let _ = writeln!(s, "}}");
    s
}

/// A static-analysis warning about a DDM program's structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lint {
    /// An `All` arc between two loop threads creates `pa × ca` ready-count
    /// updates — usually a missing `OneToOne`/`Group` mapping.
    QuadraticFanIn {
        /// Producer thread.
        producer: ThreadId,
        /// Consumer thread.
        consumer: ThreadId,
        /// Number of ready-count updates the arc generates.
        updates: u64,
    },
    /// A chain of scalar threads serializes execution.
    SerialChain {
        /// The threads of the chain, in order.
        chain: Vec<ThreadId>,
    },
    /// A block with almost no application instances cannot amortize its
    /// inlet/outlet overhead.
    TinyBlock {
        /// The block.
        block: crate::ids::BlockId,
        /// Application instances it holds.
        instances: usize,
    },
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lint::QuadraticFanIn {
                producer,
                consumer,
                updates,
            } => write!(
                f,
                "arc {producer} -> {consumer} uses an All mapping between loop threads \
                 ({updates} ready-count updates); consider OneToOne or Group"
            ),
            Lint::SerialChain { chain } => write!(
                f,
                "threads {chain:?} form a scalar dependency chain of length {};                  execution serializes through it",
                chain.len()
            ),
            Lint::TinyBlock { block, instances } => write!(
                f,
                "block {block:?} holds only {instances} application instance(s);                  inlet/outlet overhead will dominate"
            ),
        }
    }
}

/// Statically analyze a program for common DDM performance pitfalls.
pub fn lints(program: &DdmProgram) -> Vec<Lint> {
    let mut out = Vec::new();

    // quadratic All arcs between loop threads
    for t in 0..program.threads().len() {
        let t = ThreadId(t as u32);
        let pa = program.thread(t).arity as u64;
        if program.thread(t).kind != ThreadKind::App {
            continue;
        }
        for arc in program.consumers(t) {
            if program.thread(arc.consumer).kind != ThreadKind::App {
                continue;
            }
            let ca = program.thread(arc.consumer).arity as u64;
            if matches!(arc.mapping, crate::mapping::ArcMapping::All) && pa > 1 && ca > 1 {
                out.push(Lint::QuadraticFanIn {
                    producer: t,
                    consumer: arc.consumer,
                    updates: pa * ca,
                });
            }
        }
    }

    // scalar chains: follow unique scalar->scalar app arcs
    let is_scalar_app =
        |t: ThreadId| program.thread(t).arity == 1 && program.thread(t).kind == ThreadKind::App;
    let mut in_chain = vec![false; program.threads().len()];
    for start in 0..program.threads().len() {
        let start = ThreadId(start as u32);
        if !is_scalar_app(start) || in_chain[start.idx()] {
            continue;
        }
        // must be a chain head: no scalar app producer
        if program
            .producers(start)
            .iter()
            .any(|a| is_scalar_app(a.producer))
        {
            continue;
        }
        let mut chain = vec![start];
        let mut cur = start;
        loop {
            let nexts: Vec<ThreadId> = program
                .consumers(cur)
                .iter()
                .map(|a| a.consumer)
                .filter(|&c| is_scalar_app(c))
                .collect();
            if nexts.len() != 1 {
                break;
            }
            cur = nexts[0];
            chain.push(cur);
        }
        if chain.len() >= 4 {
            for &t in &chain {
                in_chain[t.idx()] = true;
            }
            out.push(Lint::SerialChain { chain });
        }
    }

    // tiny blocks
    for block in program.blocks() {
        let instances: usize = block
            .threads
            .iter()
            .map(|&t| program.thread(t).arity as usize)
            .sum();
        if instances < 2 {
            out.push(Lint::TinyBlock {
                block: block.id,
                instances,
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ArcMapping;
    use crate::program::ProgramBuilder;
    use crate::thread::ThreadSpec;

    fn fork_join(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fork_join_work_span() {
        let p = fork_join(10);
        // weight 1 for app threads, 0 for inlet/outlet
        let ws = work_span(&p, |t, _| {
            if p.thread(t).kind == ThreadKind::App {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(ws.work, 12.0);
        assert_eq!(ws.span, 3.0); // src -> work -> sink
        assert!((ws.ideal_speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_span_follows_heavy_path() {
        // src -> {light x4, heavy x1} -> sink
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let light = b.thread(blk, ThreadSpec::new("light", 4));
        let heavy = b.thread(blk, ThreadSpec::scalar("heavy"));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, light, ArcMapping::Broadcast).unwrap();
        b.arc(src, heavy, ArcMapping::Scalar).unwrap();
        b.arc(light, sink, ArcMapping::Reduction).unwrap();
        b.arc(heavy, sink, ArcMapping::Scalar).unwrap();
        let p = b.build().unwrap();
        let ws = work_span(&p, |t, _| match p.thread(t).name.as_str() {
            "heavy" => 10.0,
            n if n.starts_with("inlet") || n.starts_with("outlet") => 0.0,
            _ => 1.0,
        });
        assert_eq!(ws.span, 12.0); // 1 + 10 + 1
        assert_eq!(ws.work, 16.0);
    }

    #[test]
    fn multi_block_spans_add() {
        let mut b = ProgramBuilder::new();
        for _ in 0..2 {
            let blk = b.block();
            b.thread(blk, ThreadSpec::new("w", 4));
        }
        let p = b.build().unwrap();
        let ws = work_span(&p, |t, _| {
            if p.thread(t).kind == ThreadKind::App {
                2.0
            } else {
                0.0
            }
        });
        assert_eq!(ws.work, 16.0);
        assert_eq!(ws.span, 4.0); // two blocks of span 2 each
    }

    #[test]
    fn inlet_weight_is_serial() {
        let p = fork_join(4);
        let ws = work_span(&p, |t, _| match p.thread(t).kind {
            ThreadKind::Inlet => 5.0,
            ThreadKind::Outlet => 0.0,
            ThreadKind::App => 1.0,
        });
        assert_eq!(ws.span, 8.0); // 5 + (1+1+1)
    }

    #[test]
    fn dot_export_mentions_every_thread() {
        let p = fork_join(3);
        let dot = to_dot(&p);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("src"));
        assert!(dot.contains("work [3]"));
        assert!(dot.contains("cluster_b0"));
        assert!(dot.contains("inlet.B0"));
    }

    #[test]
    fn lint_flags_quadratic_all_arc() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let a = b.thread(blk, ThreadSpec::new("a", 10));
        let c = b.thread(blk, ThreadSpec::new("c", 10));
        b.arc(a, c, ArcMapping::All).unwrap();
        let p = b.build().unwrap();
        let l = lints(&p);
        assert!(
            matches!(l.as_slice(), [Lint::QuadraticFanIn { updates: 100, .. }]),
            "{l:?}"
        );
        assert!(l[0].to_string().contains("OneToOne"));
    }

    #[test]
    fn lint_flags_serial_chain() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let mut prev = b.thread(blk, ThreadSpec::scalar("t0"));
        // add a loop thread too so the block is not tiny
        let w = b.thread(blk, ThreadSpec::new("w", 8));
        b.arc(prev, w, ArcMapping::Broadcast).unwrap();
        for i in 1..5 {
            let t = b.thread(blk, ThreadSpec::scalar(format!("t{i}")));
            b.arc(prev, t, ArcMapping::Scalar).unwrap();
            prev = t;
        }
        let p = b.build().unwrap();
        let l = lints(&p);
        assert!(
            l.iter()
                .any(|x| matches!(x, Lint::SerialChain { chain } if chain.len() == 5)),
            "{l:?}"
        );
    }

    #[test]
    fn lint_flags_tiny_block() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::scalar("only"));
        let p = b.build().unwrap();
        assert!(lints(&p)
            .iter()
            .any(|x| matches!(x, Lint::TinyBlock { instances: 1, .. })));
    }

    #[test]
    fn clean_program_has_no_lints() {
        let p = fork_join(16);
        assert!(lints(&p).is_empty(), "{:?}", lints(&p));
    }

    #[test]
    fn hot_sinks_find_the_reduction_target() {
        let p = fork_join(10);
        // the sink absorbs 10 reduction updates; src/work have fan-in <= 1
        let sinks = hot_sinks(&p, 4);
        assert_eq!(sinks.len(), 1);
        let (inst, fan_in) = sinks[0];
        assert_eq!(p.thread(inst.thread).name, "sink");
        assert_eq!(fan_in, 10);
        // a high enough threshold finds nothing; inlets/outlets never count
        assert!(hot_sinks(&p, 11).is_empty());
    }

    #[test]
    fn ideal_speedup_of_empty_span() {
        let ws = WorkSpan {
            work: 0.0,
            span: 0.0,
        };
        assert_eq!(ws.ideal_speedup(), 1.0);
    }
}
