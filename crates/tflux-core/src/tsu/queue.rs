//! The per-kernel Queue Unit and the one fetch-result vocabulary.
//!
//! §3.3/Fig. 4: each processor gets its own queue of ready DThreads, fed by
//! the Synchronization Memory and drained by the kernel. [`QueueUnit`] is
//! that queue for the single-owner platforms (the simulated hardware TSU and
//! the Cell model); the threaded runtime uses a concurrent queue with the
//! same FIFO discipline (`tflux-runtime`'s `ReadyQueue`), and both speak the
//! same [`FetchResult`] vocabulary — the enum that used to exist twice, as
//! `tsu::FetchResult` in core and `Fetched` in the runtime.

use crate::ids::{Epoch, Instance, ProgramId};
use std::collections::VecDeque;

/// Result of a kernel's request for its next DThread.
///
/// Every backend — and every queue, blocking or not — answers a fetch with
/// one of these three words. A fetched instance carries the epoch it was
/// dispatched under; the kernel hands that token back with the completion
/// so a late completion can never corrupt a re-armed slot of a later
/// streaming pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchResult {
    /// Run this instance next; report its completion with this epoch.
    Thread(Instance, Epoch),
    /// No ready DThread right now; the kernel must wait and retry.
    Wait,
    /// The program has finished; the kernel exits.
    Exit,
}

/// One kernel's FIFO queue of ready DThread instances.
///
/// Single-owner (no interior locking): the owning scheduler pushes newly
/// ready instances and pops on fetch. Stealing is a scheduler policy, not a
/// queue feature — the scheduler simply pops from another kernel's unit.
#[derive(Clone, Debug, Default)]
pub struct QueueUnit {
    q: VecDeque<Instance>,
}

impl QueueUnit {
    /// An empty queue unit.
    pub fn new() -> Self {
        QueueUnit::default()
    }

    /// Enqueue a ready instance.
    #[inline]
    pub fn push(&mut self, i: Instance) {
        self.q.push_back(i);
    }

    /// Dequeue the oldest ready instance, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Instance> {
        self.q.pop_front()
    }

    /// Number of queued instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

/// Weighted round-robin service order over admitted programs.
///
/// When one kernel pool serves many co-resident programs (the
/// multi-program server in `tflux-runtime`), fetch attempts must not let
/// one tenant monopolize the pool. The rotor fixes a circular service
/// order over the admitted [`ProgramId`]s and grants each tenant `weight`
/// consecutive turns per round before moving to the next — weight 1 for
/// plain round-robin, higher weights for proportional shares.
///
/// Like [`QueueUnit`], the rotor is single-owner: each kernel keeps its
/// own copy of the admitted set and rotates independently, so no lock is
/// taken on the fetch path.
#[derive(Clone, Debug, Default)]
pub struct ServiceRotor {
    /// `(tenant, weight)` in admission order.
    entries: Vec<(ProgramId, u32)>,
    /// Index of the tenant currently being served.
    cursor: usize,
    /// Turns already granted to the current tenant this round.
    served: u32,
}

impl ServiceRotor {
    /// An empty rotor.
    pub fn new() -> Self {
        ServiceRotor::default()
    }

    /// Add a tenant with the given weight (clamped to at least 1).
    /// Re-admitting an id updates its weight instead of duplicating it.
    pub fn admit(&mut self, id: ProgramId, weight: u32) {
        let weight = weight.max(1);
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == id) {
            e.1 = weight;
        } else {
            self.entries.push((id, weight));
        }
    }

    /// Remove a tenant from the rotation. Unknown ids are ignored.
    pub fn evict(&mut self, id: ProgramId) {
        let Some(idx) = self.entries.iter().position(|e| e.0 == id) else {
            return;
        };
        self.entries.remove(idx);
        if idx < self.cursor {
            self.cursor -= 1;
        } else if idx == self.cursor {
            self.served = 0;
        }
        if self.cursor >= self.entries.len() {
            self.cursor = 0;
        }
    }

    /// Whether a tenant is in the rotation.
    pub fn contains(&self, id: ProgramId) -> bool {
        self.entries.iter().any(|e| e.0 == id)
    }

    /// Number of tenants in the rotation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the rotation is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tenant to serve next. Each call grants one turn; a tenant of
    /// weight `w` receives `w` consecutive turns per round.
    pub fn next(&mut self) -> Option<ProgramId> {
        if self.entries.is_empty() {
            return None;
        }
        if self.cursor >= self.entries.len() {
            self.cursor = 0;
            self.served = 0;
        }
        let (id, weight) = self.entries[self.cursor];
        self.served += 1;
        if self.served >= weight {
            self.cursor = (self.cursor + 1) % self.entries.len();
            self.served = 0;
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Context, ThreadId};

    fn inst(t: u32, c: u32) -> Instance {
        Instance::new(ThreadId(t), Context(c))
    }

    #[test]
    fn queue_unit_is_fifo() {
        let mut q = QueueUnit::new();
        q.push(inst(1, 0));
        q.push(inst(1, 1));
        q.push(inst(2, 0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(inst(1, 0)));
        assert_eq!(q.pop(), Some(inst(1, 1)));
        assert_eq!(q.pop(), Some(inst(2, 0)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn rotor_round_robins_equal_weights() {
        let mut r = ServiceRotor::new();
        r.admit(ProgramId(0), 1);
        r.admit(ProgramId(1), 1);
        r.admit(ProgramId(2), 1);
        let turns: Vec<u64> = (0..6).map(|_| r.next().unwrap().0).collect();
        assert_eq!(turns, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn rotor_grants_weighted_shares() {
        let mut r = ServiceRotor::new();
        r.admit(ProgramId(0), 2);
        r.admit(ProgramId(1), 1);
        let turns: Vec<u64> = (0..6).map(|_| r.next().unwrap().0).collect();
        assert_eq!(turns, vec![0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn rotor_eviction_keeps_rotation_sound() {
        let mut r = ServiceRotor::new();
        for p in 0..3 {
            r.admit(ProgramId(p), 1);
        }
        assert_eq!(r.next(), Some(ProgramId(0)));
        // evict the tenant *before* the cursor and the one *at* it
        r.evict(ProgramId(0));
        r.evict(ProgramId(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.next(), Some(ProgramId(2)));
        assert_eq!(r.next(), Some(ProgramId(2)));
        r.evict(ProgramId(2));
        assert_eq!(r.next(), None);
        assert!(r.is_empty());
        // evicting an unknown id is a no-op
        r.evict(ProgramId(9));
    }

    #[test]
    fn rotor_readmission_updates_weight() {
        let mut r = ServiceRotor::new();
        r.admit(ProgramId(7), 1);
        r.admit(ProgramId(7), 3);
        assert_eq!(r.len(), 1);
        let turns: Vec<u64> = (0..3).map(|_| r.next().unwrap().0).collect();
        assert_eq!(turns, vec![7, 7, 7]);
        // zero weight clamps to one turn per round
        r.admit(ProgramId(8), 0);
        assert!(r.contains(ProgramId(8)));
    }
}
