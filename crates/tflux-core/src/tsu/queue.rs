//! The per-kernel Queue Unit and the one fetch-result vocabulary.
//!
//! §3.3/Fig. 4: each processor gets its own queue of ready DThreads, fed by
//! the Synchronization Memory and drained by the kernel. [`QueueUnit`] is
//! that queue for the single-owner platforms (the simulated hardware TSU and
//! the Cell model); the threaded runtime uses a concurrent queue with the
//! same FIFO discipline (`tflux-runtime`'s `ReadyQueue`), and both speak the
//! same [`FetchResult`] vocabulary — the enum that used to exist twice, as
//! `tsu::FetchResult` in core and `Fetched` in the runtime.

use crate::ids::Instance;
use std::collections::VecDeque;

/// Result of a kernel's request for its next DThread.
///
/// Every backend — and every queue, blocking or not — answers a fetch with
/// one of these three words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchResult {
    /// Run this instance next.
    Thread(Instance),
    /// No ready DThread right now; the kernel must wait and retry.
    Wait,
    /// The program has finished; the kernel exits.
    Exit,
}

/// One kernel's FIFO queue of ready DThread instances.
///
/// Single-owner (no interior locking): the owning scheduler pushes newly
/// ready instances and pops on fetch. Stealing is a scheduler policy, not a
/// queue feature — the scheduler simply pops from another kernel's unit.
#[derive(Clone, Debug, Default)]
pub struct QueueUnit {
    q: VecDeque<Instance>,
}

impl QueueUnit {
    /// An empty queue unit.
    pub fn new() -> Self {
        QueueUnit::default()
    }

    /// Enqueue a ready instance.
    #[inline]
    pub fn push(&mut self, i: Instance) {
        self.q.push_back(i);
    }

    /// Dequeue the oldest ready instance, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Instance> {
        self.q.pop_front()
    }

    /// Number of queued instances.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Context, ThreadId};

    fn inst(t: u32, c: u32) -> Instance {
        Instance::new(ThreadId(t), Context(c))
    }

    #[test]
    fn queue_unit_is_fifo() {
        let mut q = QueueUnit::new();
        q.push(inst(1, 0));
        q.push(inst(1, 1));
        q.push(inst(2, 0));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(inst(1, 0)));
        assert_eq!(q.pop(), Some(inst(1, 1)));
        assert_eq!(q.pop(), Some(inst(2, 0)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
