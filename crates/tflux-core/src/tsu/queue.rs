//! The per-kernel Queue Unit — now a work-stealing deque — and the one
//! fetch-result vocabulary.
//!
//! §3.3/Fig. 4: each processor gets its own queue of ready DThreads, fed by
//! the Synchronization Memory and drained by the kernel. [`StealDeque`] is
//! that queue: a Chase-Lev deque whose owner pushes and pops at the bottom
//! with plain loads/stores plus fences, while idle kernels *steal* the
//! oldest entry by CAS-ing the top — stealing is a queue-native operation,
//! not a scheduler hack layered on a `VecDeque`. Entries are epoch-tagged
//! `(Instance, Epoch)` pairs so streaming tokens ride the steal path
//! unchanged. The threaded runtime builds its blocking `ReadyQueue` on the
//! same deque plus the [`MpmcRing`] inbox (foreign pushes); both speak the
//! shared [`FetchResult`] vocabulary.
//!
//! # Memory ordering
//!
//! The implementation follows the C11 formulation of Chase-Lev (Lê,
//! Pop, Cohen, Zappa Nardelli, *Correct and Efficient Work-Stealing for
//! Weak Memory Models*, PPoPP 2013), with one deliberate deviation: slot
//! data lives in per-slot atomics read/written `Relaxed` instead of raw
//! (racy) loads. A thief may therefore read a slot concurrently with the
//! owner overwriting it — the read value is garbage only in executions
//! where the subsequent `top` CAS fails, so the value is discarded; because
//! the read is atomic the race is defined behavior and ThreadSanitizer
//! stays quiet. The orderings that carry the algorithm:
//!
//! * **push**: slot write, then `Release` fence, then the `bottom` store —
//!   a thief that observes the new `bottom` (via its `Acquire` load) also
//!   observes the slot contents.
//! * **pop**: `bottom` is decremented, then a `SeqCst` fence orders that
//!   store before the `top` load. Paired with the thief's `SeqCst` fence
//!   (between its `top` and `bottom` loads), owner and thief cannot both
//!   miss each other's claim on the last entry; they race through a
//!   `SeqCst` CAS on `top` for it, and exactly one wins.
//! * **steal**: `Acquire` `top`, `SeqCst` fence, `Acquire` `bottom`, slot
//!   read, then the `SeqCst` CAS on `top`. A failed CAS is
//!   [`Steal::Retry`] — somebody else took index `top` — and the read
//!   value is dropped on the floor.
//! * **growth**: the owner initializes the next rung of a geometric
//!   buffer *ladder* (each rung doubles the capacity), copies
//!   `top..bottom` into it and publishes it with a `Release` store of the
//!   rung index. Retired rungs stay initialized for the deque's lifetime,
//!   so a thief still reading through a stale index touches valid memory
//!   holding entries identical at the indices it may reach — which also
//!   keeps the whole structure free of `unsafe`. ABA cannot occur: `top`
//!   is a monotonic counter that never reuses values, regardless of how
//!   often the rung is swapped.

use crate::ids::{Epoch, Instance, ProgramId, ThreadId};
use std::sync::OnceLock;

#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Result of a kernel's request for its next DThread.
///
/// Every backend — and every queue, blocking or not — answers a fetch with
/// one of these three words. A fetched instance carries the epoch it was
/// dispatched under; the kernel hands that token back with the completion
/// so a late completion can never corrupt a re-armed slot of a later
/// streaming pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchResult {
    /// Run this instance next; report its completion with this epoch.
    Thread(Instance, Epoch),
    /// No ready DThread right now; the kernel must wait and retry.
    Wait,
    /// The program has finished; the kernel exits.
    Exit,
}

/// Outcome of one [`StealDeque::steal`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal {
    /// The oldest entry, claimed exactly once.
    Success((Instance, Epoch)),
    /// The deque was observed empty — a clean miss. A victim emptied
    /// between the thief's length probe and the steal lands here, never in
    /// a panic or a double-pop.
    Empty,
    /// Lost the `top` CAS to the owner or another thief; the entry went to
    /// someone else. Retry here or move to another victim.
    Retry,
}

impl Steal {
    /// The stolen entry, if the attempt succeeded.
    pub fn success(self) -> Option<(Instance, Epoch)> {
        match self {
            Steal::Success(e) => Some(e),
            _ => None,
        }
    }
}

/// An `(Instance, Epoch)` entry packed into two per-slot atomics.
///
/// `inst` packs `thread` in the high 32 bits and `context` in the low 32;
/// `epoch` carries the full 64-bit epoch id. The two words are read
/// separately by thieves, and a torn pair (one word old, one new) can only
/// be observed in executions where the claiming CAS fails — the pair is
/// then discarded, so tearing is never visible to a caller.
struct Slot {
    inst: AtomicU64,
    epoch: AtomicU64,
}

#[inline]
fn pack(i: Instance) -> u64 {
    ((i.thread.0 as u64) << 32) | i.context.0 as u64
}

#[inline]
fn unpack(x: u64) -> Instance {
    Instance::new(ThreadId((x >> 32) as u32), crate::ids::Context(x as u32))
}

/// A circular power-of-two buffer of slots, indexed by the unbounded
/// `top`/`bottom` counters modulo its capacity.
struct Buffer {
    mask: i64,
    slots: Box<[Slot]>,
}

impl Buffer {
    fn new(cap: usize) -> Buffer {
        let cap = cap.next_power_of_two().max(2);
        Buffer {
            mask: cap as i64 - 1,
            slots: (0..cap)
                .map(|_| Slot {
                    inst: AtomicU64::new(0),
                    epoch: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn cap(&self) -> i64 {
        self.mask + 1
    }

    #[inline]
    fn read(&self, i: i64) -> (u64, u64) {
        let s = &self.slots[(i & self.mask) as usize];
        (
            s.inst.load(Ordering::Relaxed),
            s.epoch.load(Ordering::Relaxed),
        )
    }

    #[inline]
    fn write(&self, i: i64, inst: u64, epoch: u64) {
        let s = &self.slots[(i & self.mask) as usize];
        s.inst.store(inst, Ordering::Relaxed);
        s.epoch.store(epoch, Ordering::Relaxed);
    }
}

/// One kernel's Queue Unit: a Chase-Lev work-stealing deque of epoch-tagged
/// ready instances.
///
/// The *owner* (the kernel the queue belongs to, or the single scheduler
/// thread in the single-owner platforms) calls [`push`](Self::push) and
/// [`pop`](Self::pop); any other thread calls [`steal`](Self::steal). The
/// owner works LIFO at the bottom — the entry it just made ready is the one
/// most likely to be warm in its cache — while thieves take the *oldest*
/// entry at the top, preserving the paper's FIFO service order for
/// migrated work.
///
/// Owner operations take `&self` (all state is atomic, so misuse cannot
/// cause undefined behavior) but must come from one thread at a time:
/// concurrent owner calls may lose or duplicate entries. The concurrent
/// runtime upholds this by routing foreign pushes through its inbox ring
/// and shared (multi-consumer) queues through the steal path only.
pub struct StealDeque {
    bottom: AtomicI64,
    top: AtomicI64,
    /// Index of the live rung in `ladder`.
    cur: AtomicUsize,
    /// Geometric buffer ladder: rung `i` holds `base << i` slots, where
    /// `base` is rung 0's capacity. Growth initializes the next rung,
    /// copies the live window and publishes the new index; retired rungs
    /// stay initialized for the deque's lifetime so a thief holding a
    /// stale index always reads valid memory.
    ladder: Box<[OnceLock<Buffer>]>,
}

impl Default for StealDeque {
    fn default() -> Self {
        StealDeque::new()
    }
}

impl StealDeque {
    /// An empty deque with the default initial capacity (it grows).
    pub fn new() -> Self {
        StealDeque::with_capacity(64)
    }

    /// An empty deque whose initial buffer holds `cap` entries (rounded up
    /// to a power of two). The buffer doubles when full, so this is a
    /// sizing hint, not a limit.
    pub fn with_capacity(cap: usize) -> Self {
        let base = Buffer::new(cap);
        // enough rungs to double from `base` up to 2^62 entries — far past
        // any reachable occupancy, so growth can never fall off the ladder
        let rungs = 63 - (base.cap() as u64).ilog2() as usize;
        let ladder: Box<[OnceLock<Buffer>]> = (0..rungs).map(|_| OnceLock::new()).collect();
        let _ = ladder[0].set(base);
        StealDeque {
            bottom: AtomicI64::new(0),
            top: AtomicI64::new(0),
            cur: AtomicUsize::new(0),
            ladder,
        }
    }

    #[inline]
    fn rung(&self, i: usize) -> &Buffer {
        self.ladder[i].get().expect("published rung is initialized")
    }

    /// Enqueue a ready instance at the bottom (owner side).
    pub fn push(&self, inst: Instance, epoch: Epoch) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.rung(self.cur.load(Ordering::Relaxed));
        if b - t >= buf.cap() {
            buf = self.grow(t, b);
        }
        buf.write(b, pack(inst), epoch.0);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Climb one rung: initialize the doubled buffer, copy the live
    /// window, publish the new index (owner-only slow path).
    fn grow(&self, t: i64, b: i64) -> &Buffer {
        let cur = self.cur.load(Ordering::Relaxed);
        let old = self.rung(cur);
        let base = self.rung(0).cap() as usize;
        let new = self.ladder[cur + 1].get_or_init(|| Buffer::new(base << (cur + 1)));
        for i in t..b {
            let (x, e) = old.read(i);
            new.write(i, x, e);
        }
        self.cur.store(cur + 1, Ordering::Release);
        new
    }

    /// Dequeue the *newest* entry from the bottom (owner side). On the
    /// last entry the owner races the thieves through the `top` CAS;
    /// losing is a clean `None`, never a double-pop.
    pub fn pop(&self) -> Option<(Instance, Epoch)> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.rung(self.cur.load(Ordering::Relaxed));
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let (x, e) = buf.read(b);
            if t == b {
                // last entry: claim it against concurrent thieves
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            Some((unpack(x), Epoch(e)))
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steal the *oldest* entry from the top (any thread). One attempt:
    /// [`Steal::Retry`] reports a lost CAS, [`Steal::Empty`] an empty (or
    /// concurrently emptied) victim.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.rung(self.cur.load(Ordering::Acquire));
        let (x, e) = buf.read(t);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Success((unpack(x), Epoch(e)))
    }

    /// Entries currently queued (a racy snapshot under concurrency; exact
    /// when quiescent).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A bounded lock-free MPMC ring of epoch-tagged instances (Vyukov's
/// sequence-numbered design): the *inbox* the threaded runtime pairs with
/// each kernel's [`StealDeque`].
///
/// Chase-Lev pushes are owner-only, but in the threaded runtime any
/// completing kernel may make an instance ready on *another* kernel's
/// queue. Those foreign pushes land here; the owner drains the inbox into
/// its deque when it next pops, and thieves may pop the inbox directly —
/// so work pushed at a kernel that never runs is still stealable.
///
/// Each slot carries a sequence number: producers CAS `tail` and publish
/// the slot with `seq = pos + 1` (`Release`), consumers CAS `head` after
/// observing that sequence (`Acquire`) and recycle the slot with
/// `seq = pos + cap`. `push` returns `false` when full — callers keep an
/// overflow valve — and all data lives in atomics, so the ring is exactly
/// as ThreadSanitizer-clean as the deque.
pub struct MpmcRing {
    head: AtomicUsize,
    tail: AtomicUsize,
    mask: usize,
    slots: Box<[RingSlot]>,
}

struct RingSlot {
    seq: AtomicUsize,
    inst: AtomicU64,
    epoch: AtomicU64,
}

impl MpmcRing {
    /// A ring holding up to `cap` entries (rounded up to a power of two).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        MpmcRing {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            mask: cap - 1,
            slots: (0..cap)
                .map(|i| RingSlot {
                    seq: AtomicUsize::new(i),
                    inst: AtomicU64::new(0),
                    epoch: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Enqueue from any thread; `false` means the ring is full and the
    /// caller must take its overflow path.
    pub fn push(&self, inst: Instance, epoch: Epoch) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            match dif {
                0 => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            slot.inst.store(pack(inst), Ordering::Relaxed);
                            slot.epoch.store(epoch.0, Ordering::Relaxed);
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return true;
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => return false, // full
                _ => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Dequeue from any thread; `None` when empty.
    pub fn pop(&self) -> Option<(Instance, Epoch)> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            match dif {
                0 => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let x = slot.inst.load(Ordering::Relaxed);
                            let e = slot.epoch.load(Ordering::Relaxed);
                            slot.seq
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            return Some((unpack(x), Epoch(e)));
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.head.load(Ordering::Relaxed),
            }
        }
    }

    /// Entries currently queued (a racy snapshot under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head).min(self.capacity())
    }

    /// Whether the ring is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Weighted round-robin service order over admitted programs.
///
/// When one kernel pool serves many co-resident programs (the
/// multi-program server in `tflux-runtime`), fetch attempts must not let
/// one tenant monopolize the pool. The rotor fixes a circular service
/// order over the admitted [`ProgramId`]s and grants each tenant `weight`
/// consecutive turns per round before moving to the next — weight 1 for
/// plain round-robin, higher weights for proportional shares.
///
/// Unlike the queues, the rotor is single-owner: each kernel keeps its
/// own copy of the admitted set and rotates independently, so no lock is
/// taken on the fetch path.
#[derive(Clone, Debug, Default)]
pub struct ServiceRotor {
    /// `(tenant, weight)` in admission order.
    entries: Vec<(ProgramId, u32)>,
    /// Index of the tenant currently being served.
    cursor: usize,
    /// Turns already granted to the current tenant this round.
    served: u32,
}

impl ServiceRotor {
    /// An empty rotor.
    pub fn new() -> Self {
        ServiceRotor::default()
    }

    /// Add a tenant with the given weight (clamped to at least 1).
    /// Re-admitting an id updates its weight instead of duplicating it.
    pub fn admit(&mut self, id: ProgramId, weight: u32) {
        let weight = weight.max(1);
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == id) {
            e.1 = weight;
        } else {
            self.entries.push((id, weight));
        }
    }

    /// Remove a tenant from the rotation. Unknown ids are ignored.
    pub fn evict(&mut self, id: ProgramId) {
        let Some(idx) = self.entries.iter().position(|e| e.0 == id) else {
            return;
        };
        self.entries.remove(idx);
        if idx < self.cursor {
            self.cursor -= 1;
        } else if idx == self.cursor {
            self.served = 0;
        }
        if self.cursor >= self.entries.len() {
            self.cursor = 0;
        }
    }

    /// Whether a tenant is in the rotation.
    pub fn contains(&self, id: ProgramId) -> bool {
        self.entries.iter().any(|e| e.0 == id)
    }

    /// Number of tenants in the rotation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the rotation is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tenant to serve next. Each call grants one turn; a tenant of
    /// weight `w` receives `w` consecutive turns per round.
    pub fn next(&mut self) -> Option<ProgramId> {
        if self.entries.is_empty() {
            return None;
        }
        if self.cursor >= self.entries.len() {
            self.cursor = 0;
            self.served = 0;
        }
        let (id, weight) = self.entries[self.cursor];
        self.served += 1;
        if self.served >= weight {
            self.cursor = (self.cursor + 1) % self.entries.len();
            self.served = 0;
        }
        Some(id)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::ids::{Context, ThreadId};
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn inst(t: u32, c: u32) -> Instance {
        Instance::new(ThreadId(t), Context(c))
    }

    const E0: Epoch = Epoch(0);

    #[test]
    fn owner_pops_newest_thieves_steal_oldest() {
        let q = StealDeque::new();
        q.push(inst(1, 0), E0);
        q.push(inst(1, 1), E0);
        q.push(inst(2, 0), E0);
        assert_eq!(q.len(), 3);
        // thief side is FIFO: the oldest entry migrates first
        assert_eq!(q.steal(), Steal::Success((inst(1, 0), E0)));
        // owner side is LIFO: the newest (cache-warm) entry runs first
        assert_eq!(q.pop(), Some((inst(2, 0), E0)));
        assert_eq!(q.pop(), Some((inst(1, 1), E0)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal(), Steal::Empty);
        assert!(q.is_empty());
    }

    #[test]
    fn epoch_tags_ride_the_steal_path() {
        let q = StealDeque::new();
        q.push(inst(3, 0), Epoch(7));
        q.push(inst(3, 1), Epoch(8));
        assert_eq!(q.steal(), Steal::Success((inst(3, 0), Epoch(7))));
        assert_eq!(q.pop(), Some((inst(3, 1), Epoch(8))));
    }

    #[test]
    fn growth_preserves_every_entry() {
        // push far past the initial capacity with interleaved steals so
        // the live window straddles several growths
        let q = StealDeque::with_capacity(2);
        let mut expect = HashSet::new();
        for i in 0..500u32 {
            q.push(inst(9, i), Epoch(i as u64));
            expect.insert(i);
            if i % 3 == 0 {
                if let Steal::Success((s, ep)) = q.steal() {
                    assert_eq!(ep.0, s.context.0 as u64, "epoch must ride its entry");
                    assert!(expect.remove(&s.context.0));
                }
            }
        }
        while let Some((s, ep)) = q.pop() {
            assert_eq!(ep.0, s.context.0 as u64);
            assert!(expect.remove(&s.context.0), "duplicate {s}");
        }
        assert!(expect.is_empty(), "lost entries: {expect:?}");
    }

    #[test]
    fn racing_thieves_claim_each_entry_exactly_once() {
        // two thief threads race the owner popping: every entry must be
        // claimed exactly once across the three parties
        use std::sync::atomic::{AtomicBool, Ordering as O};
        let n = 10_000u32;
        let q = StealDeque::with_capacity(4);
        let done = AtomicBool::new(false);
        let taken: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    while !done.load(O::Relaxed) {
                        if let Steal::Success((i, _)) = q.steal() {
                            mine.push(i.context.0);
                        }
                    }
                    // final sweep after the owner finishes
                    loop {
                        match q.steal() {
                            Steal::Success((i, _)) => mine.push(i.context.0),
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                    taken.lock().unwrap().extend(mine);
                });
            }
            let mut mine = Vec::new();
            for i in 0..n {
                q.push(inst(1, i), E0);
                if i % 2 == 0 {
                    if let Some((p, _)) = q.pop() {
                        mine.push(p.context.0);
                    }
                }
            }
            while let Some((p, _)) = q.pop() {
                mine.push(p.context.0);
            }
            done.store(true, O::Relaxed);
            taken.lock().unwrap().extend(mine);
        });
        let mut all = taken.into_inner().unwrap();
        assert_eq!(all.len(), n as usize, "lost or duplicated entries");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n as usize, "duplicate claims");
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let r = MpmcRing::with_capacity(4);
        assert_eq!(r.capacity(), 4);
        assert!(r.push(inst(1, 0), E0));
        assert!(r.push(inst(1, 1), Epoch(5)));
        assert!(r.push(inst(1, 2), E0));
        assert!(r.push(inst(1, 3), E0));
        assert!(!r.push(inst(1, 4), E0), "full ring must refuse");
        assert_eq!(r.len(), 4);
        assert_eq!(r.pop(), Some((inst(1, 0), E0)));
        assert_eq!(r.pop(), Some((inst(1, 1), Epoch(5))));
        assert!(r.push(inst(1, 4), E0), "slots recycle");
        assert_eq!(r.pop(), Some((inst(1, 2), E0)));
        assert_eq!(r.pop(), Some((inst(1, 3), E0)));
        assert_eq!(r.pop(), Some((inst(1, 4), E0)));
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn ring_survives_concurrent_producers_and_consumers() {
        let r = MpmcRing::with_capacity(64);
        let n = 4_000u32;
        let got: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..2u32 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..n {
                        while !r.push(inst(p, i), Epoch(p as u64)) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let (r, got) = (&r, &got);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    while mine.len() < n as usize {
                        if let Some((i, ep)) = r.pop() {
                            assert_eq!(ep.0, i.thread.0 as u64, "epoch rides its entry");
                            mine.push(i.thread.0 * n + i.context.0);
                        }
                    }
                    got.lock().unwrap().extend(mine);
                });
            }
        });
        let mut all = got.into_inner().unwrap();
        assert_eq!(all.len(), 2 * n as usize);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 2 * n as usize, "duplicate or lost entries");
    }

    #[test]
    fn rotor_round_robins_equal_weights() {
        let mut r = ServiceRotor::new();
        r.admit(ProgramId(0), 1);
        r.admit(ProgramId(1), 1);
        r.admit(ProgramId(2), 1);
        let turns: Vec<u64> = (0..6).map(|_| r.next().unwrap().0).collect();
        assert_eq!(turns, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn rotor_grants_weighted_shares() {
        let mut r = ServiceRotor::new();
        r.admit(ProgramId(0), 2);
        r.admit(ProgramId(1), 1);
        let turns: Vec<u64> = (0..6).map(|_| r.next().unwrap().0).collect();
        assert_eq!(turns, vec![0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn rotor_eviction_keeps_rotation_sound() {
        let mut r = ServiceRotor::new();
        for p in 0..3 {
            r.admit(ProgramId(p), 1);
        }
        assert_eq!(r.next(), Some(ProgramId(0)));
        // evict the tenant *before* the cursor and the one *at* it
        r.evict(ProgramId(0));
        r.evict(ProgramId(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.next(), Some(ProgramId(2)));
        assert_eq!(r.next(), Some(ProgramId(2)));
        r.evict(ProgramId(2));
        assert_eq!(r.next(), None);
        assert!(r.is_empty());
        // evicting an unknown id is a no-op
        r.evict(ProgramId(9));
    }

    #[test]
    fn rotor_readmission_updates_weight() {
        let mut r = ServiceRotor::new();
        r.admit(ProgramId(7), 1);
        r.admit(ProgramId(7), 3);
        assert_eq!(r.len(), 1);
        let turns: Vec<u64> = (0..3).map(|_| r.next().unwrap().0).collect();
        assert_eq!(turns, vec![7, 7, 7]);
        // zero weight clamps to one turn per round
        r.admit(ProgramId(8), 0);
        assert!(r.contains(ProgramId(8)));
    }
}
