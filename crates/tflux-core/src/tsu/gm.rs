//! Graph Memory: the read-only program view inside the TSU.
//!
//! §3.3/Fig. 4 of the paper draw the TSU as separate units; the Graph
//! Memory holds what never changes during a run — the DThread templates,
//! their consumer lists, the DDM-block structure and the thread→kernel
//! placement function. Because it is immutable it is freely shareable by
//! `&` (and is `Copy`): every kernel thread can resolve consumer lists and
//! instance ownership without any synchronization.

use crate::ids::{BlockId, Instance, KernelId, ThreadId};
use crate::program::{Arc, DdmProgram};
use crate::thread::ThreadKind;

/// A cloneable handle to a [`DdmProgram`].
///
/// The TSU units are generic over *how* the program is held so the same
/// code serves both the single-run drivers (which borrow the caller's
/// program: `P = &DdmProgram`, making the units `Copy` as before) and a
/// long-lived multi-program server (which needs `'static` arenas:
/// `P = std::sync::Arc<DdmProgram>`).
pub trait ProgramHandle: Clone {
    /// Borrow the underlying program.
    fn get(&self) -> &DdmProgram;
}

impl ProgramHandle for &DdmProgram {
    #[inline]
    fn get(&self) -> &DdmProgram {
        self
    }
}

impl ProgramHandle for std::sync::Arc<DdmProgram> {
    #[inline]
    fn get(&self) -> &DdmProgram {
        self
    }
}

/// The immutable program view shared by every TSU unit.
///
/// A `GraphMemory` is a cheap handle (`Copy` when the program handle is,
/// i.e. for borrowed programs): it holds the program and carries the kernel
/// count, which together determine the *owning kernel* of every instance
/// ([`owner_of`](Self::owner_of)) — the key the Synchronization Memory
/// shards by and the queue units index by.
#[derive(Clone, Copy)]
pub struct GraphMemory<P: ProgramHandle> {
    program: P,
    kernels: u32,
}

impl<P: ProgramHandle> GraphMemory<P> {
    /// View `program` as executed by `kernels` kernels.
    pub fn new(program: P, kernels: u32) -> Self {
        assert!(kernels > 0, "need at least one kernel");
        GraphMemory { program, kernels }
    }

    /// The underlying program.
    #[inline]
    pub fn program(&self) -> &DdmProgram {
        self.program.get()
    }

    /// Number of kernels the placement function maps onto.
    #[inline]
    pub fn kernels(&self) -> u32 {
        self.kernels
    }

    /// The kernel an instance is placed on (its affinity resolved against
    /// the kernel count). This is both the locality hint for queueing and
    /// the Synchronization Memory shard key.
    #[inline]
    pub fn owner_of(&self, i: Instance) -> KernelId {
        self.program.get().kernel_of(i, self.kernels)
    }

    /// The kind (App / Inlet / Outlet) of a thread.
    #[inline]
    pub fn kind(&self, t: ThreadId) -> ThreadKind {
        self.program.get().thread(t).kind
    }

    /// The consumer list of a thread — the Graph Memory rows walked during
    /// the Post-Processing Phase.
    #[inline]
    pub fn consumers(&self, t: ThreadId) -> &[Arc] {
        self.program.get().consumers(t)
    }

    /// The block a thread belongs to.
    #[inline]
    pub fn block_of(&self, t: ThreadId) -> BlockId {
        self.program.get().block_of(t)
    }

    /// Residency cost of a block in Synchronization Memory entries.
    #[inline]
    pub fn block_instances(&self, b: BlockId) -> usize {
        self.program.get().block_instances(b)
    }

    /// The inlet instance of the first block — what arms a fresh TSU.
    #[inline]
    pub fn first_inlet(&self) -> Instance {
        Instance::scalar(self.program.get().blocks()[0].inlet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ArcMapping;
    use crate::program::ProgramBuilder;
    use crate::thread::{Affinity, ThreadSpec};

    #[test]
    fn owner_respects_fixed_affinity() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let t = b.thread(
            blk,
            ThreadSpec::new("w", 4).with_affinity(Affinity::Fixed(KernelId(2))),
        );
        let p = b.build().unwrap();
        let gm = GraphMemory::new(&p, 4);
        for c in 0..4 {
            assert_eq!(
                gm.owner_of(Instance::new(t, crate::ids::Context(c))),
                KernelId(2)
            );
        }
    }

    #[test]
    fn first_inlet_is_block_zero_inlet() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let snk = b.thread(blk, ThreadSpec::scalar("snk"));
        b.arc(src, snk, ArcMapping::All).unwrap();
        let p = b.build().unwrap();
        let gm = GraphMemory::new(&p, 2);
        assert_eq!(gm.first_inlet(), Instance::scalar(p.blocks()[0].inlet));
        assert_eq!(gm.kind(gm.first_inlet().thread), ThreadKind::Inlet);
    }
}
