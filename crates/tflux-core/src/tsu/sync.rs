//! Synchronization Memory: sharded ready counts and the Post-Processing
//! Phase.
//!
//! §3.3/Fig. 4: the Synchronization Memory holds the per-instance *Ready
//! Counts* of the loaded DDM block. Here it is sharded **by the owning
//! kernel of the consumer instance** (the same placement function the
//! queue units use), so two kernels completing producers whose consumers
//! live on different kernels touch disjoint locks and never contend. This
//! is what lets the TFluxSoft kernels run completions *directly*, instead
//! of serializing every completion through one emulator thread.
//!
//! The crate still spawns no threads: `SyncMemory` only uses `std::sync`
//! primitives so that the platforms that *do* have threads
//! (`tflux-runtime`) can share it by `&`, while the single-owner platforms
//! (`tflux-sim`, `tflux-cell`) pay nothing but an uncontended lock.

use crate::error::CoreError;
use crate::ids::{BlockId, Instance, ThreadId};
use crate::program::DdmProgram;
use crate::thread::ThreadKind;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, TryLockError};

use super::backend::{ShardStats, TsuStats, WaitingInstance};
use super::gm::GraphMemory;

/// Ready counts and in-flight markers owned by one shard.
#[derive(Debug, Default)]
struct ShardInner {
    /// Ready counts of resident instances owned by this shard's kernel.
    /// Entries stay present (at 0) until their thread is unloaded, so the
    /// residency invariants of the monolithic TSU are preserved exactly.
    rc: HashMap<Instance, u32>,
    /// Instances dispatched to a kernel but not yet completed.
    running: HashSet<Instance>,
}

/// One Synchronization Memory shard: the lock plus its observability
/// counters (updated outside the lock, so reading stats never contends).
#[derive(Debug, Default)]
struct Shard {
    inner: Mutex<ShardInner>,
    rc_updates: AtomicU64,
    contended: AtomicU64,
}

/// Block residency bookkeeping — serialized because Inlet/Outlet
/// completions are serialized by the program structure anyway (a block
/// loads only after the previous outlet completed).
#[derive(Debug, Default)]
struct BlockState {
    loaded: Option<BlockId>,
    resident: usize,
    max_resident: usize,
    blocks_loaded: u64,
}

/// The Synchronization Memory for one program execution, sharded by the
/// owning kernel of each instance.
///
/// All operations take `&self`: kernels on different threads may call
/// [`dispatch`](Self::dispatch) and [`complete`](Self::complete)
/// concurrently. Lock order is block state before shard, one shard at a
/// time, so the unit is deadlock-free by construction.
pub struct SyncMemory<'p> {
    gm: GraphMemory<'p>,
    capacity: usize,
    shards: Vec<Shard>,
    fetches: AtomicU64,
    completions: AtomicU64,
    finished: AtomicBool,
    block: Mutex<BlockState>,
}

impl<'p> SyncMemory<'p> {
    /// Create the Synchronization Memory for `program` sharded over
    /// `kernels` kernels, and arm it: the first block's inlet is made
    /// resident (but not dispatched). `capacity` bounds resident instances
    /// (`0` = unlimited).
    pub fn new(program: &'p DdmProgram, kernels: u32, capacity: usize) -> Self {
        let gm = GraphMemory::new(program, kernels);
        let sm = SyncMemory {
            gm,
            capacity,
            shards: (0..kernels).map(|_| Shard::default()).collect(),
            fetches: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            block: Mutex::new(BlockState::default()),
        };
        let mut guard = sm.lock_block();
        sm.mark_resident(gm.first_inlet().thread, &mut guard);
        drop(guard);
        sm
    }

    /// The Graph Memory view this SM was built against.
    pub fn graph(&self) -> GraphMemory<'p> {
        self.gm
    }

    /// The armed first-block inlet — resident and ready (ready count 0)
    /// from construction, waiting to be dispatched by a scheduler.
    pub fn armed_inlet(&self) -> Instance {
        self.gm.first_inlet()
    }

    /// Whether the last block's outlet has completed.
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// The currently loaded block, if any.
    pub fn loaded_block(&self) -> Option<BlockId> {
        self.lock_block().loaded
    }

    /// Completions processed so far — the progress probe watchdogs poll.
    pub fn completions(&self) -> u64 {
        self.completions.load(Ordering::Relaxed)
    }

    #[inline]
    fn shard_of(&self, i: Instance) -> &Shard {
        &self.shards[self.gm.owner_of(i).idx()]
    }

    /// Lock a shard, counting acquisitions that found it already held.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardInner> {
        match shard.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                shard.contended.fetch_add(1, Ordering::Relaxed);
                shard.inner.lock().unwrap_or_else(PoisonError::into_inner)
            }
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    fn lock_block(&self) -> MutexGuard<'_, BlockState> {
        self.block.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mark every instance of `t` resident with its initial ready counts.
    /// Caller holds the block lock (passed as `guard`).
    fn mark_resident(&self, t: ThreadId, guard: &mut MutexGuard<'_, BlockState>) {
        let arity = self.gm.program().thread(t).arity;
        let rcs = self.gm.program().initial_rcs(t);
        for c in 0..arity {
            let i = Instance::new(t, crate::ids::Context(c));
            self.lock_shard(self.shard_of(i))
                .rc
                .insert(i, rcs[c as usize]);
        }
        guard.resident += arity as usize;
        guard.max_resident = guard.max_resident.max(guard.resident);
    }

    /// Drop every instance of `t` from the SM ("the purpose of the
    /// [Outlet] is to clear the allocated resources").
    fn unload_thread(&self, t: ThreadId, guard: &mut MutexGuard<'_, BlockState>) {
        let arity = self.gm.program().thread(t).arity;
        for c in 0..arity {
            let i = Instance::new(t, crate::ids::Context(c));
            let mut inner = self.lock_shard(self.shard_of(i));
            inner.rc.remove(&i);
            inner.running.remove(&i);
        }
        guard.resident -= arity as usize;
    }

    /// Mark `inst` as dispatched to a kernel. Pairs with a later
    /// [`complete`](Self::complete).
    pub fn dispatch(&self, inst: Instance) {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        self.lock_shard(self.shard_of(inst)).running.insert(inst);
    }

    /// Load a DDM block: make its instances resident and append the
    /// initially-ready ones (ready count 0) to `out`.
    pub fn load_block(&self, b: BlockId, out: &mut Vec<Instance>) -> Result<(), CoreError> {
        let instances = self.gm.block_instances(b);
        let mut guard = self.lock_block();
        if self.capacity != 0 && guard.resident + instances > self.capacity {
            return Err(CoreError::BlockTooLarge {
                block: b,
                instances,
                capacity: self.capacity,
            });
        }
        guard.blocks_loaded += 1;
        let block = &self.gm.program().blocks()[b.idx()];
        for &t in &block.threads {
            self.mark_resident(t, &mut guard);
            for (c, &rc) in self.gm.program().initial_rcs(t).iter().enumerate() {
                if rc == 0 {
                    out.push(Instance::new(t, crate::ids::Context(c as u32)));
                }
            }
        }
        self.mark_resident(block.outlet, &mut guard);
        guard.loaded = Some(b);
        Ok(())
    }

    /// The Post-Processing Phase: record completion of `inst`, decrement
    /// its consumers' ready counts through their shards, and append
    /// newly-ready instances to `out` (cleared first).
    ///
    /// Inlet completions load their block (appending every initially-ready
    /// application instance); outlet completions unload the block and
    /// append the next block's inlet, or mark the program finished.
    pub fn complete(&self, inst: Instance, out: &mut Vec<Instance>) -> Result<(), CoreError> {
        out.clear();
        let t = inst.thread;
        if !self.lock_shard(self.shard_of(inst)).running.remove(&inst) {
            return Err(CoreError::NotRunning(inst));
        }
        self.completions.fetch_add(1, Ordering::Relaxed);

        match self.gm.kind(t) {
            ThreadKind::Inlet => {
                let mut guard = self.lock_block();
                self.unload_thread(t, &mut guard);
                drop(guard);
                self.load_block(self.gm.block_of(t), out)?;
            }
            ThreadKind::Outlet => {
                let block = self.gm.block_of(t);
                let mut guard = self.lock_block();
                let app_threads = self.gm.program().blocks()[block.idx()].threads.clone();
                for at in app_threads {
                    self.unload_thread(at, &mut guard);
                }
                self.unload_thread(t, &mut guard);
                guard.loaded = None;
                let next = BlockId(block.0 + 1);
                if next.idx() < self.gm.program().blocks().len() {
                    let inlet = Instance::scalar(self.gm.program().blocks()[next.idx()].inlet);
                    self.mark_resident(inlet.thread, &mut guard);
                    out.push(inlet);
                } else {
                    self.finished.store(true, Ordering::Release);
                }
            }
            ThreadKind::App => self.post_process(inst, out),
        }
        Ok(())
    }

    fn post_process(&self, inst: Instance, out: &mut Vec<Instance>) {
        let t = inst.thread;
        let pa = self.gm.program().thread(t).arity;
        // Consumer lists live in Graph Memory; each decrement goes through
        // the consumer instance's own shard.
        for arc in self.gm.consumers(t) {
            let ca = self.gm.program().thread(arc.consumer).arity;
            for c in arc.mapping.consumers(inst.context, pa, ca) {
                let ci = Instance::new(arc.consumer, c);
                let shard = self.shard_of(ci);
                shard.rc_updates.fetch_add(1, Ordering::Relaxed);
                let mut inner = self.lock_shard(shard);
                let rc = inner
                    .rc
                    .get_mut(&ci)
                    .unwrap_or_else(|| panic!("consumer {ci:?} not resident"));
                debug_assert!(*rc > 0, "ready count underflow at {ci:?}");
                *rc -= 1;
                if *rc == 0 {
                    out.push(ci);
                }
            }
        }
    }

    /// Stall forensics: every resident instance whose ready count is still
    /// above zero. Ordered thread-major, context-minor.
    pub fn waiting_instances(&self) -> Vec<WaitingInstance> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let inner = self.lock_shard(shard);
            out.extend(inner.rc.iter().filter(|&(_, &rc)| rc > 0).map(
                |(&instance, &remaining)| WaitingInstance {
                    instance,
                    remaining,
                },
            ));
        }
        out.sort_unstable_by_key(|w| w.instance);
        out
    }

    /// Stall forensics: every instance dispatched to a kernel but not yet
    /// completed. Ordered thread-major, context-minor.
    pub fn running_instances(&self) -> Vec<Instance> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(self.lock_shard(shard).running.iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Aggregate operation counters. `waits` and `steals` are scheduler
    /// concerns and are reported as 0 here; schedulers fold their own in.
    pub fn stats(&self) -> TsuStats {
        let guard = self.lock_block();
        TsuStats {
            fetches: self.fetches.load(Ordering::Relaxed),
            waits: 0,
            completions: self.completions.load(Ordering::Relaxed),
            rc_updates: self
                .shards
                .iter()
                .map(|s| s.rc_updates.load(Ordering::Relaxed))
                .sum(),
            steals: 0,
            blocks_loaded: guard.blocks_loaded,
            max_resident: guard.max_resident,
            sm_contended: self
                .shards
                .iter()
                .map(|s| s.contended.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Per-shard counters, indexed by owning kernel.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                rc_updates: s.rc_updates.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ArcMapping;
    use crate::program::ProgramBuilder;
    use crate::thread::ThreadSpec;

    fn fork_join() -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", 4));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shared_reference_drives_a_full_block() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 2, 0);
        let sm = &sm; // everything below goes through &SyncMemory
        let mut ready = Vec::new();
        let mut queue = vec![sm.armed_inlet()];
        let mut done = 0usize;
        while let Some(i) = queue.pop() {
            sm.dispatch(i);
            sm.complete(i, &mut ready).unwrap();
            done += 1;
            queue.extend(ready.drain(..));
        }
        assert_eq!(done, p.total_instances());
        assert!(sm.finished());
        let s = sm.stats();
        assert_eq!(s.completions as usize, p.total_instances());
        assert_eq!(s.fetches, s.completions);
        assert_eq!(s.blocks_loaded, 1);
    }

    #[test]
    fn rc_updates_land_on_the_consumers_shard() {
        // pin the whole program onto kernel 1 of 2: every decrement must be
        // counted on shard 1, none on shard 0
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(
            blk,
            ThreadSpec::scalar("src")
                .with_affinity(crate::thread::Affinity::Fixed(crate::ids::KernelId(1))),
        );
        let work = b.thread(
            blk,
            ThreadSpec::new("w", 4)
                .with_affinity(crate::thread::Affinity::Fixed(crate::ids::KernelId(1))),
        );
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        let p = b.build().unwrap();
        let sm = SyncMemory::new(&p, 2, 0);
        let mut ready = Vec::new();
        let mut queue = vec![sm.armed_inlet()];
        while let Some(i) = queue.pop() {
            sm.dispatch(i);
            sm.complete(i, &mut ready).unwrap();
            queue.extend(ready.drain(..));
        }
        let shards = sm.shard_stats();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].rc_updates + shards[1].rc_updates, sm.stats().rc_updates);
        // the 4 broadcast decrements hit shard 1 (outlet updates go to the
        // outlet's own shard, kernel 0, so shard 0 is not exactly zero)
        assert!(shards[1].rc_updates >= 4, "{shards:?}");
    }

    #[test]
    fn completion_without_dispatch_is_a_protocol_error() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 1, 0);
        let mut ready = Vec::new();
        let err = sm.complete(sm.armed_inlet(), &mut ready).unwrap_err();
        assert!(matches!(err, CoreError::NotRunning(_)));
    }

    #[test]
    fn concurrent_completions_from_many_threads_are_exact() {
        // a wide fan-in: many producers all decrementing one consumer's
        // ready count from different threads; the count must come out exact
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let work = b.thread(blk, ThreadSpec::new("w", 64));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        let p = b.build().unwrap();

        let sm = SyncMemory::new(&p, 4, 0);
        let mut ready = Vec::new();
        let inlet = sm.armed_inlet();
        sm.dispatch(inlet);
        sm.complete(inlet, &mut ready).unwrap();
        assert_eq!(ready.len(), 64);

        let newly: Mutex<Vec<Instance>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for chunk in ready.chunks(16) {
                s.spawn(|| {
                    let mut local = Vec::new();
                    for &i in chunk {
                        sm.dispatch(i);
                        sm.complete(i, &mut local).unwrap();
                        newly.lock().unwrap().extend(local.drain(..));
                    }
                });
            }
        });
        let newly = newly.into_inner().unwrap();
        // exactly one instance (the sink) became ready, exactly once
        assert_eq!(newly, vec![Instance::scalar(sink)]);
        // 64 reduction decrements on the sink + 64 implicit All decrements
        // on the outlet (the sink itself never completes in this test)
        assert_eq!(sm.stats().rc_updates, 64 + 64);
    }
}
