//! Synchronization Memory: a lock-free ready-count table and the
//! Post-Processing Phase.
//!
//! §3.3/Fig. 4: the Synchronization Memory holds the per-instance *Ready
//! Counts* of the loaded DDM block. The paper's hardware TSU performs
//! ready-count decrements as independent memory-mapped updates with no
//! global lock; this software SM matches that with a dense slab of atomic
//! slots, one per `(ThreadId, Context)` pair, laid out once from the Graph
//! Memory at construction (ThreadIds and arities are static, so each
//! thread gets a fixed base offset into the slab).
//!
//! Each slot carries two words:
//!
//! * an `AtomicU32` **ready count**, decremented with `fetch_sub` during
//!   the Post-Processing Phase — the producer that observes the 1→0
//!   transition (and only that producer) publishes the consumer as ready;
//! * an `AtomicU32` **state word** cycling `Vacant → Resident → Running →
//!   Done → Vacant`, advanced by CAS so dispatch/complete protocol errors
//!   (double dispatch, completion without fetch, non-resident dispatch)
//!   are still caught exactly, without any lock on the hot path.
//!
//! Only the block-transition slow path (Inlet/Outlet completions, already
//! serialized by program structure) takes the `block` mutex. Per-kernel
//! observability counters survive from the sharded design: `rc_updates`
//! still counts *logical* decrements landing on each kernel's instances
//! (`rc_rmws` counts the physical RMWs, which batching makes smaller),
//! and `contended` counts weak-CAS retries on state transitions plus
//! cross-kernel ready-count line transfers (a decrement arriving from a
//! different kernel than the slot's previous one) instead of `try_lock`
//! misses.
//!
//! [`complete_batch`](SyncMemory::complete_batch) is the reduction-funnel
//! flush path: a kernel's accumulated App completions arrive as one call,
//! their decrements are combined locally (one `fetch_sub(n)` per slot)
//! and, when several kernels share a hot sink, carried up a combining
//! tree that merges concurrent flushes so K flushers issue O(log K) RMWs
//! on the contended line. The 1→0 publication rule generalizes to `n→0`:
//! exactly one flusher observes zero and enqueues the consumer.
//!
//! A kernel that dies mid-update (or any unwind out of a mutating
//! section) **poisons** the SM: the `poisoned` flag latches, and every
//! subsequent `dispatch`/`complete`/`load_block` fails with
//! [`CoreError::SmPoisoned`] instead of silently trusting half-applied
//! ready counts.
//!
//! # Streaming epochs
//!
//! The slot lifecycle *wraps around*: the table is not consumed by one
//! program pass but re-armed for the next. Each pass is an [`Epoch`]. The
//! state word packs a 30-bit epoch tag above the 2-bit phase, so a `Done`
//! slot of epoch *e* re-arms to `tag(e+1)|Vacant → tag(e+1)|Resident` and a
//! late completion still holding an epoch-*e* token fails its CAS on the
//! tag bits — rejected as [`CoreError::StaleEpoch`] instead of corrupting
//! epoch *e+1*'s ready counts. This extends the 1→0 / n→0 publication
//! ownership to time: exactly one completion wins each slot *per epoch*.
//!
//! Flow control is a credit window ([`SyncMemory::with_window`]):
//! [`open_epoch`](SyncMemory::open_epoch) takes a credit (failing with
//! [`CoreError::WindowExhausted`] when `opened - retired` hits the window)
//! and [`retire_epoch`](SyncMemory::retire_epoch) returns one, oldest
//! epoch first, exactly once. At most one epoch *executes* at a time —
//! epochs are sequential passes of the same graph, the window only bounds
//! how far the feeder may run ahead of the retirement acknowledgments.

use crate::error::CoreError;
use crate::ids::{BlockId, Context, Epoch, Instance, KernelId, ThreadId};
use crate::thread::ThreadKind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use super::backend::{ShardStats, TsuStats, WaitingInstance};
use super::gm::{GraphMemory, ProgramHandle};

/// Slot state machine: the lifecycle *phase* of one instance in the SM,
/// stored in the low 2 bits of the state word.
const VACANT: u32 = 0;
/// Resident: its block is loaded; the ready count is live.
const RESIDENT: u32 = 1;
/// Dispatched to a kernel, awaiting `complete`.
const RUNNING: u32 = 2;
/// Completed; stays `Done` until its thread is unloaded.
const DONE: u32 = 3;

/// Low bits of the state word holding the phase.
const PHASE_MASK: u32 = 0b11;
/// Bits of the state word holding the epoch tag (`epoch mod 2^30`).
const TAG_BITS: u32 = 30;
/// Mask for the (unshifted) epoch tag.
const TAG_MASK: u32 = (1 << TAG_BITS) - 1;

/// Pack an epoch tag and a phase into one state word.
#[inline]
const fn word(tag: u32, phase: u32) -> u32 {
    (tag << 2) | phase
}

/// The lifecycle phase of a state word.
#[inline]
const fn phase(word: u32) -> u32 {
    word & PHASE_MASK
}

/// The epoch tag of a state word.
#[inline]
const fn word_tag(word: u32) -> u32 {
    word >> 2
}

/// The 30-bit tag of a full 64-bit epoch id.
#[inline]
const fn tag_of(epoch: u64) -> u32 {
    (epoch as u32) & TAG_MASK
}

/// Sentinel for [`Slot::updater`]: no kernel has decremented this slot's
/// ready count since it became resident.
const NO_UPDATER: u32 = u32::MAX;

/// One entry of the ready-count table.
#[derive(Debug)]
struct Slot {
    /// Remaining producer completions before this instance is ready.
    rc: AtomicU32,
    /// Lifecycle word: `VACANT`/`RESIDENT`/`RUNNING`/`DONE`.
    state: AtomicU32,
    /// The kernel whose update last touched this ready count. A decrement
    /// arriving from a *different* kernel would, on real hardware, pull
    /// the slot's cache line across cores — counted as a contention event
    /// so the measure is deterministic even on a single-core host.
    updater: AtomicU32,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            rc: AtomicU32::new(0),
            state: AtomicU32::new(VACANT),
            updater: AtomicU32::new(NO_UPDATER),
        }
    }
}

/// Per-kernel observability counters. The table itself is not sharded —
/// these only attribute traffic to the owning kernel of each instance,
/// preserving the `RunReport.sm_shards` view from the locked design.
#[derive(Debug, Default)]
struct ShardCounters {
    /// Logical ready-count decrements (invariant under batching).
    rc_updates: AtomicU64,
    /// Physical `fetch_sub` RMWs (one per combined flush entry).
    rc_rmws: AtomicU64,
    /// Weak-CAS retries on state transitions plus cross-kernel
    /// ready-count line transfers (the locked design counted `try_lock`
    /// misses here).
    contended: AtomicU64,
}

/// One node of the combining tree: deposits parked by flushers that found
/// the node claimed, waiting for the claimant to carry them to the table.
#[derive(Debug, Default)]
struct TreeNode {
    pending: BTreeMap<Instance, u32>,
    claimed: bool,
}

/// Block residency bookkeeping — serialized because Inlet/Outlet
/// completions are serialized by the program structure anyway (a block
/// loads only after the previous outlet completed).
#[derive(Debug, Default)]
struct BlockState {
    loaded: Option<BlockId>,
    resident: usize,
    max_resident: usize,
    blocks_loaded: u64,
    /// Epochs credited so far (epoch 0 is implicitly opened at
    /// construction, so a fresh table starts at 1).
    opened: u64,
    /// Epochs whose final outlet has completed.
    completed: u64,
    /// Epochs acknowledged by `retire_epoch` — credits returned to the
    /// window. Always `retired <= completed <= opened`.
    retired: u64,
}

/// Sets the poisoned flag if dropped while armed — armed around every
/// mutating section so an unwind (kernel panic mid-`post_process`,
/// protocol-invariant violation) cannot leave half-applied state that
/// later operations silently trust.
struct PoisonGuard<'a> {
    flag: &'a AtomicBool,
    armed: bool,
}

impl<'a> PoisonGuard<'a> {
    fn arm(flag: &'a AtomicBool) -> Self {
        PoisonGuard { flag, armed: true }
    }

    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flag.store(true, Ordering::Release);
        }
    }
}

/// The Synchronization Memory for one program execution: a dense slab of
/// atomic ready-count slots indexed by `(ThreadId, Context)`.
///
/// All operations take `&self`: kernels on different threads may call
/// [`dispatch`](Self::dispatch) and [`complete`](Self::complete)
/// concurrently, and App completions never take a lock. The single
/// `block` mutex only guards block transitions.
pub struct SyncMemory<P: ProgramHandle> {
    gm: GraphMemory<P>,
    capacity: usize,
    /// Credit window: maximum `opened - retired` epochs in flight
    /// (`0` = unbounded).
    window: usize,
    /// The epoch currently executing (full 64-bit id; its low 30 bits are
    /// the tag packed into every live state word).
    epoch: AtomicU64,
    /// `base[t]` is the slab offset of `(t, Context(0))`; contexts are
    /// contiguous, so slot lookup is one add and one index.
    base: Vec<u32>,
    slots: Vec<Slot>,
    shards: Vec<ShardCounters>,
    /// Combining tree for batched flushes (heap-indexed, entry 0 unused;
    /// kernel `k`'s leaf hangs under internal node `(P + k) / 2`). Empty
    /// when a single kernel runs or the program has no hot sink — then
    /// every flush goes straight to the table.
    tree: Vec<Mutex<TreeNode>>,
    fetches: AtomicU64,
    completions: AtomicU64,
    finished: AtomicBool,
    poisoned: AtomicBool,
    block: Mutex<BlockState>,
}

impl<P: ProgramHandle> SyncMemory<P> {
    /// Create the Synchronization Memory for `program` executed by
    /// `kernels` kernels, and arm it: the first block's inlet is made
    /// resident (but not dispatched). `capacity` bounds resident instances
    /// (`0` = unlimited). The epoch credit window is unbounded — the
    /// one-shot shape; see [`with_window`](Self::with_window) for streams.
    pub fn new(program: P, kernels: u32, capacity: usize) -> Self {
        Self::with_window(program, kernels, capacity, 0)
    }

    /// Like [`new`](Self::new), but bounding in-flight epochs to `window`
    /// credits (`0` = unbounded). The slot layout is computed here, once,
    /// from the Graph Memory — arities are static, so the table never
    /// reallocates, no matter how many epochs stream through it.
    pub fn with_window(program: P, kernels: u32, capacity: usize, window: usize) -> Self {
        let gm = GraphMemory::new(program, kernels);
        let mut base = Vec::with_capacity(gm.program().threads().len());
        let mut next = 0u32;
        for spec in gm.program().threads() {
            base.push(next);
            next += spec.arity;
        }
        let slots = (0..next).map(|_| Slot::default()).collect();
        // The combining tree only pays when several kernels funnel into a
        // hot sink: its internal nodes (heap layout, `P = kernels` padded
        // to a power of two) exist iff the precomputed reduction fan-in
        // says such a sink exists.
        let tree = if kernels > 1 && !crate::graph::hot_sinks(gm.program(), kernels).is_empty() {
            let p = (kernels as usize).next_power_of_two();
            (0..p).map(|_| Mutex::new(TreeNode::default())).collect()
        } else {
            Vec::new()
        };
        let sm = SyncMemory {
            gm,
            capacity,
            window,
            epoch: AtomicU64::new(0),
            base,
            slots,
            shards: (0..kernels).map(|_| ShardCounters::default()).collect(),
            tree,
            fetches: AtomicU64::new(0),
            completions: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            block: Mutex::new(BlockState {
                // epoch 0 is opened by construction: the armed inlet below
                // is its first instance
                opened: 1,
                ..BlockState::default()
            }),
        };
        let mut guard = sm.block.lock().expect("fresh mutex");
        sm.mark_resident(sm.gm.first_inlet().thread, &mut guard);
        drop(guard);
        sm
    }

    /// The Graph Memory view this SM was built against.
    pub fn graph(&self) -> GraphMemory<P> {
        self.gm.clone()
    }

    /// The armed first-block inlet — resident and ready (ready count 0)
    /// from construction, waiting to be dispatched by a scheduler.
    pub fn armed_inlet(&self) -> Instance {
        self.gm.first_inlet()
    }

    /// Whether the last block's outlet has completed.
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// Whether the SM is poisoned (a kernel died mid-update, or a
    /// protocol invariant was violated mid-flight). Once set, every
    /// `dispatch`/`complete`/`load_block` fails with
    /// [`CoreError::SmPoisoned`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Poison the SM explicitly — the runtime calls this when a kernel
    /// unwinds out of a completion, before the kernel thread dies.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn check_poisoned(&self) -> Result<(), CoreError> {
        if self.is_poisoned() {
            Err(CoreError::SmPoisoned)
        } else {
            Ok(())
        }
    }

    /// The currently loaded block, if any.
    pub fn loaded_block(&self) -> Option<BlockId> {
        self.block_forensics().loaded
    }

    /// Completions processed so far — the progress probe watchdogs poll.
    pub fn completions(&self) -> u64 {
        self.completions.load(Ordering::Relaxed)
    }

    #[inline]
    fn slot(&self, i: Instance) -> &Slot {
        &self.slots[self.base[i.thread.idx()] as usize + i.context.idx()]
    }

    /// Advance `inst`'s state word `from → to` by CAS. Spurious weak-CAS
    /// failures retry and are counted as contention on the owning kernel's
    /// shard counters; a genuine mismatch returns the observed state.
    fn transition(&self, inst: Instance, from: u32, to: u32) -> Result<(), u32> {
        let slot = self.slot(inst);
        loop {
            match slot
                .state
                .compare_exchange_weak(from, to, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(()),
                Err(actual) if actual == from => {
                    self.shards[self.gm.owner_of(inst).idx()]
                        .contended
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(actual) => return Err(actual),
            }
        }
    }

    /// Take the block mutex, surfacing OS-level poisoning as
    /// [`CoreError::SmPoisoned`] instead of swallowing it: a thread that
    /// panicked while holding this lock left the residency bookkeeping in
    /// an unknown state.
    fn lock_block(&self) -> Result<MutexGuard<'_, BlockState>, CoreError> {
        match self.block.lock() {
            Ok(g) => Ok(g),
            Err(_) => {
                self.poison();
                Err(CoreError::SmPoisoned)
            }
        }
    }

    /// Forensic view of the block state for stats and stall reports —
    /// never fails, but still latches the poisoned flag so the *next*
    /// operation reports the corruption.
    fn block_forensics(&self) -> MutexGuard<'_, BlockState> {
        self.block.lock().unwrap_or_else(|p: PoisonError<_>| {
            self.poison();
            p.into_inner()
        })
    }

    /// Mark every instance of `t` resident with its initial ready counts,
    /// fresh from Graph Memory, tagged with the current epoch. Caller
    /// holds the block lock (passed as `guard`).
    fn mark_resident(&self, t: ThreadId, guard: &mut MutexGuard<'_, BlockState>) {
        let tag = tag_of(self.epoch.load(Ordering::Relaxed));
        let arity = self.gm.program().thread(t).arity;
        let rcs = self.gm.program().initial_rcs(t);
        for c in 0..arity {
            let slot = self.slot(Instance::new(t, Context(c)));
            debug_assert_eq!(
                phase(slot.state.load(Ordering::Relaxed)),
                VACANT,
                "thread {t} loaded while still resident"
            );
            slot.rc.store(rcs[c as usize], Ordering::Relaxed);
            slot.updater.store(NO_UPDATER, Ordering::Relaxed);
            // Release: a consumer decrementing this rc after seeing the
            // instance resident must see the initial count. The store also
            // overwrites the stale tag a previous epoch left in the word.
            slot.state.store(word(tag, RESIDENT), Ordering::Release);
        }
        guard.resident += arity as usize;
        guard.max_resident = guard.max_resident.max(guard.resident);
    }

    /// Drop every instance of `t` from the SM ("the purpose of the
    /// [Outlet] is to clear the allocated resources").
    fn unload_thread(&self, t: ThreadId, guard: &mut MutexGuard<'_, BlockState>) {
        let tag = tag_of(self.epoch.load(Ordering::Relaxed));
        let arity = self.gm.program().thread(t).arity;
        for c in 0..arity {
            let slot = self.slot(Instance::new(t, Context(c)));
            slot.rc.store(0, Ordering::Relaxed);
            slot.updater.store(NO_UPDATER, Ordering::Relaxed);
            slot.state.store(word(tag, VACANT), Ordering::Release);
        }
        guard.resident -= arity as usize;
    }

    /// Mark `inst` as dispatched to a kernel and return the epoch it runs
    /// in — the token a later [`complete`](Self::complete) must present.
    /// Fails with [`CoreError::NotResident`] if `inst`'s block is not
    /// loaded or the instance already ran (or is running) — a scheduler
    /// bug surfaces here instead of corrupting consumer counts later.
    ///
    /// Only the current epoch ever holds `Resident` slots (an epoch cannot
    /// advance while any of its instances is in flight — the outlet's
    /// ready count sees to that), so the epoch read here always matches
    /// the tag the CAS observed.
    pub fn dispatch(&self, inst: Instance) -> Result<Epoch, CoreError> {
        self.check_poisoned()?;
        let epoch = self.epoch.load(Ordering::Acquire);
        let tag = tag_of(epoch);
        self.transition(inst, word(tag, RESIDENT), word(tag, RUNNING))
            .map_err(|_| CoreError::NotResident(inst))?;
        self.fetches.fetch_add(1, Ordering::Relaxed);
        Ok(Epoch(epoch))
    }

    /// Classify a failed `Running → Done` CAS: a tag mismatch means the
    /// completion's epoch token is stale (the slot was re-armed for a
    /// later epoch — the exactly-one-winner rule across the wrap-around),
    /// a phase mismatch within the same epoch is the classic
    /// completion-without-dispatch protocol error.
    fn classify(&self, inst: Instance, epoch: Epoch, observed: u32) -> CoreError {
        if word_tag(observed) != tag_of(epoch.0) {
            CoreError::StaleEpoch {
                epoch,
                current: Epoch(self.epoch.load(Ordering::Acquire)),
            }
        } else {
            CoreError::NotRunning(inst)
        }
    }

    /// Load a DDM block: make its instances resident and append the
    /// initially-ready ones (ready count 0) to `out`.
    pub fn load_block(&self, b: BlockId, out: &mut Vec<Instance>) -> Result<(), CoreError> {
        self.check_poisoned()?;
        let mut guard = self.lock_block()?;
        let instances = self.gm.block_instances(b);
        if self.capacity != 0 && guard.resident + instances > self.capacity {
            return Err(CoreError::BlockTooLarge {
                block: b,
                instances,
                capacity: self.capacity,
            });
        }
        let sentinel = PoisonGuard::arm(&self.poisoned);
        self.load_block_locked(b, out, &mut guard);
        sentinel.disarm();
        Ok(())
    }

    /// The load itself, after capacity validation. Caller holds the block
    /// lock and has armed a poison guard.
    fn load_block_locked(
        &self,
        b: BlockId,
        out: &mut Vec<Instance>,
        guard: &mut MutexGuard<'_, BlockState>,
    ) {
        guard.blocks_loaded += 1;
        let block = &self.gm.program().blocks()[b.idx()];
        for &t in &block.threads {
            self.mark_resident(t, guard);
            for (c, &rc) in self.gm.program().initial_rcs(t).iter().enumerate() {
                if rc == 0 {
                    out.push(Instance::new(t, Context(c as u32)));
                }
            }
        }
        self.mark_resident(block.outlet, guard);
        guard.loaded = Some(b);
    }

    /// The Post-Processing Phase: record completion of `inst`, decrement
    /// its consumers' ready counts, and append newly-ready instances to
    /// `out` (cleared first).
    ///
    /// Inlet completions load their block (appending every initially-ready
    /// application instance); outlet completions unload the block and
    /// append the next block's inlet, or mark the program finished.
    ///
    /// Inlet completion is transactional: the next block's capacity is
    /// validated *before* anything mutates, so a failing load leaves the
    /// inlet running and every counter untouched — a retried completion
    /// (PR 1's `RetryPolicy`) observes the same state it started from.
    ///
    /// `epoch` is the token the matching [`dispatch`](Self::dispatch)
    /// returned. A completion whose epoch is older than the slot's current
    /// tag is rejected with [`CoreError::StaleEpoch`]: a late duplicate
    /// from a finished pass must not touch a re-armed table.
    pub fn complete(
        &self,
        inst: Instance,
        epoch: Epoch,
        out: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        out.clear();
        self.check_poisoned()?;
        let t = inst.thread;
        let tag = tag_of(epoch.0);
        match self.gm.kind(t) {
            ThreadKind::Inlet => {
                let mut guard = self.lock_block()?;
                let b = self.gm.block_of(t);
                let observed = self.slot(inst).state.load(Ordering::Acquire);
                if observed != word(tag, RUNNING) {
                    return Err(self.classify(inst, epoch, observed));
                }
                let instances = self.gm.block_instances(b);
                // `- 1`: the inlet itself unloads as part of this
                // completion, freeing its own entry for the block.
                if self.capacity != 0 && guard.resident - 1 + instances > self.capacity {
                    return Err(CoreError::BlockTooLarge {
                        block: b,
                        instances,
                        capacity: self.capacity,
                    });
                }
                self.transition(inst, word(tag, RUNNING), word(tag, DONE))
                    .map_err(|w| self.classify(inst, epoch, w))?;
                self.completions.fetch_add(1, Ordering::Relaxed);
                let sentinel = PoisonGuard::arm(&self.poisoned);
                self.unload_thread(t, &mut guard);
                self.load_block_locked(b, out, &mut guard);
                sentinel.disarm();
            }
            ThreadKind::Outlet => {
                let mut guard = self.lock_block()?;
                self.transition(inst, word(tag, RUNNING), word(tag, DONE))
                    .map_err(|w| self.classify(inst, epoch, w))?;
                self.completions.fetch_add(1, Ordering::Relaxed);
                let sentinel = PoisonGuard::arm(&self.poisoned);
                let block = self.gm.block_of(t);
                let app_threads = self.gm.program().blocks()[block.idx()].threads.clone();
                for at in app_threads {
                    self.unload_thread(at, &mut guard);
                }
                self.unload_thread(t, &mut guard);
                guard.loaded = None;
                let next = BlockId(block.0 + 1);
                if next.idx() < self.gm.program().blocks().len() {
                    let inlet = Instance::scalar(self.gm.program().blocks()[next.idx()].inlet);
                    self.mark_resident(inlet.thread, &mut guard);
                    out.push(inlet);
                } else {
                    // the last block's outlet closes one epoch: either a
                    // further epoch was already credited — wrap the table
                    // around and stream on — or the pass drains
                    guard.completed += 1;
                    if guard.completed < guard.opened {
                        self.advance_epoch(&mut guard, out);
                    } else {
                        self.finished.store(true, Ordering::Release);
                    }
                }
                sentinel.disarm();
            }
            ThreadKind::App => {
                // The hot path: no lock anywhere.
                self.transition(inst, word(tag, RUNNING), word(tag, DONE))
                    .map_err(|w| self.classify(inst, epoch, w))?;
                self.completions.fetch_add(1, Ordering::Relaxed);
                let sentinel = PoisonGuard::arm(&self.poisoned);
                self.post_process(inst, out);
                sentinel.disarm();
            }
        }
        Ok(())
    }

    /// Re-arm the table for the next epoch: bump the epoch counter, mark
    /// the first block's inlet resident under the *new* tag, and publish
    /// it so the scheduler restarts the dataflow. Caller holds the block
    /// lock; every slot is vacant at this point (the closing outlet just
    /// unloaded the last block).
    fn advance_epoch(&self, guard: &mut MutexGuard<'_, BlockState>, out: &mut Vec<Instance>) {
        debug_assert_eq!(guard.resident, 0, "advance with instances resident");
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        // Release: the re-armed inlet's dispatcher must observe the new
        // epoch id after seeing the inlet published.
        self.epoch.store(next, Ordering::Release);
        let inlet = self.gm.first_inlet();
        self.mark_resident(inlet.thread, guard);
        out.push(inlet);
    }

    /// Credit one more streaming pass. Returns the epoch id the credit
    /// pays for; ids are dense and monotonic, with epoch 0 the implicit
    /// one-shot pass of construction. Fails with
    /// [`CoreError::WindowExhausted`] when the credit window is full — the
    /// feeder must wait for [`retire_epoch`](Self::retire_epoch).
    ///
    /// If the stream had already drained (the last credited epoch
    /// finished and [`finished`](Self::finished) latched), the table
    /// re-arms here and the newly resident first inlet is appended to
    /// `out` — the caller must hand it to its scheduler exactly like an
    /// instance published by a completion. Otherwise the wrap-around
    /// happens on the closing outlet's completion and `out` stays empty.
    pub fn open_epoch(&self, out: &mut Vec<Instance>) -> Result<Epoch, CoreError> {
        out.clear();
        self.check_poisoned()?;
        let mut guard = self.lock_block()?;
        if self.window != 0 && (guard.opened - guard.retired) as usize >= self.window {
            return Err(CoreError::WindowExhausted {
                window: self.window,
            });
        }
        let id = guard.opened;
        guard.opened += 1;
        if self.finished.swap(false, Ordering::AcqRel) {
            let sentinel = PoisonGuard::arm(&self.poisoned);
            self.advance_epoch(&mut guard, out);
            sentinel.disarm();
        }
        Ok(Epoch(id))
    }

    /// Acknowledge a completed epoch and return its credit to the window.
    /// Epochs retire oldest-first and exactly once: a second retirement of
    /// the same epoch loses with [`CoreError::StaleEpoch`] (one winner,
    /// same rule as slot completions), an out-of-order or premature one
    /// with [`CoreError::EpochNotDrained`].
    pub fn retire_epoch(&self, epoch: Epoch) -> Result<(), CoreError> {
        self.check_poisoned()?;
        let mut guard = self.lock_block()?;
        if epoch.0 < guard.retired {
            return Err(CoreError::StaleEpoch {
                epoch,
                current: Epoch(self.epoch.load(Ordering::Acquire)),
            });
        }
        if epoch.0 != guard.retired || epoch.0 >= guard.completed {
            return Err(CoreError::EpochNotDrained(epoch));
        }
        guard.retired += 1;
        Ok(())
    }

    /// The epoch currently executing.
    pub fn current_epoch(&self) -> Epoch {
        Epoch(self.epoch.load(Ordering::Acquire))
    }

    /// The epoch ledger `(opened, completed, retired)` — the streaming
    /// bookkeeping invariant `retired <= completed <= opened` that stress
    /// tests assert between chaos rounds.
    pub fn epoch_ledger(&self) -> (u64, u64, u64) {
        let guard = self.block_forensics();
        (guard.opened, guard.completed, guard.retired)
    }

    fn post_process(&self, inst: Instance, out: &mut Vec<Instance>) {
        let t = inst.thread;
        let pa = self.gm.program().thread(t).arity;
        let updater = self.gm.owner_of(inst);
        // Consumer lists live in Graph Memory; each decrement is one
        // `fetch_sub` on the consumer's slot. The producer that observes
        // the 1→0 edge — exactly one, by atomicity — publishes it.
        for arc in self.gm.consumers(t) {
            let ca = self.gm.program().thread(arc.consumer).arity;
            for c in arc.mapping.consumers(inst.context, pa, ca) {
                self.apply_rc_sub(Instance::new(arc.consumer, c), 1, updater, out);
            }
        }
    }

    /// One physical ready-count RMW covering `n` logical decrements of
    /// `ci`. The flusher that observes the `n→0` edge — exactly one, by
    /// atomicity of `fetch_sub` — publishes the consumer into `out`; this
    /// generalizes the direct path's 1→0 ownership rule. An update whose
    /// `updater` kernel differs from the slot's previous updater counts
    /// one contention event on the consumer-owner's shard (the line would
    /// migrate between cores on real hardware).
    fn apply_rc_sub(&self, ci: Instance, n: u32, updater: KernelId, out: &mut Vec<Instance>) {
        let shard = &self.shards[self.gm.owner_of(ci).idx()];
        shard.rc_updates.fetch_add(n as u64, Ordering::Relaxed);
        shard.rc_rmws.fetch_add(1, Ordering::Relaxed);
        let slot = self.slot(ci);
        assert_ne!(
            phase(slot.state.load(Ordering::Acquire)),
            VACANT,
            "consumer {ci:?} not resident"
        );
        let prev_updater = slot.updater.swap(updater.0, Ordering::Relaxed);
        if prev_updater != NO_UPDATER && prev_updater != updater.0 {
            shard.contended.fetch_add(1, Ordering::Relaxed);
        }
        let prev = slot.rc.fetch_sub(n, Ordering::AcqRel);
        assert!(prev >= n, "ready count underflow at {ci:?}");
        if prev == n {
            out.push(ci);
        }
    }

    /// Record a batch of *application* completions — the funnel flush
    /// path. The batch's decrements are first combined locally (one entry
    /// per consumer slot, so K completions hitting one Reduction sink
    /// become a single `fetch_sub(K)`), then carried to the table through
    /// the combining tree when one is built, merging with concurrent
    /// flushes from other kernels on the way up.
    ///
    /// Unlike [`complete`](Self::complete), a protocol error inside a
    /// batch (an instance that was never dispatched, a non-App instance)
    /// poisons the SM: earlier instances of the batch have already
    /// retired, so there is no state to roll back to.
    pub fn complete_batch(
        &self,
        done: &[Instance],
        epoch: Epoch,
        out: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        out.clear();
        self.check_poisoned()?;
        let Some(&first) = done.first() else {
            return Ok(());
        };
        let tag = tag_of(epoch.0);
        let updater = self.gm.owner_of(first);
        let sentinel = PoisonGuard::arm(&self.poisoned);
        let mut combined: BTreeMap<Instance, u32> = BTreeMap::new();
        for &inst in done {
            assert_eq!(
                self.gm.kind(inst.thread),
                ThreadKind::App,
                "only App completions may be funneled: {inst:?}"
            );
            self.transition(inst, word(tag, RUNNING), word(tag, DONE))
                .map_err(|w| self.classify(inst, epoch, w))?;
            self.completions.fetch_add(1, Ordering::Relaxed);
            let pa = self.gm.program().thread(inst.thread).arity;
            for arc in self.gm.consumers(inst.thread) {
                let ca = self.gm.program().thread(arc.consumer).arity;
                for c in arc.mapping.consumers(inst.context, pa, ca) {
                    *combined.entry(Instance::new(arc.consumer, c)).or_insert(0) += 1;
                }
            }
        }
        if self.tree.is_empty() {
            self.apply_combined(&combined, updater, out);
        } else {
            self.tree_flush(updater, combined, out);
        }
        sentinel.disarm();
        Ok(())
    }

    /// Apply a combined decrement map to the table, one RMW per slot.
    fn apply_combined(
        &self,
        combined: &BTreeMap<Instance, u32>,
        updater: KernelId,
        out: &mut Vec<Instance>,
    ) {
        for (&ci, &n) in combined {
            self.apply_rc_sub(ci, n, updater, out);
        }
    }

    /// Lock one combining-tree node, latching OS-level poison like
    /// [`lock_block`](Self::lock_block) does (but non-failing: the flush
    /// proceeds and the *next* operation reports the corruption).
    fn lock_tree(&self, idx: usize) -> MutexGuard<'_, TreeNode> {
        self.tree[idx].lock().unwrap_or_else(|p: PoisonError<_>| {
            self.poison();
            p.into_inner()
        })
    }

    /// Carry a combined batch up the combining tree. Climbing from the
    /// flusher's leaf toward the root, each node is either *claimed* (we
    /// own the path above and absorb anything parked there) or already
    /// claimed by a concurrent flusher — then we deposit our map and
    /// leave; the claimant carries it the rest of the way. K concurrent
    /// flushers therefore issue O(log K) RMWs on a shared sink line: at
    /// most one flusher per tree level reaches the table with the merged
    /// update.
    fn tree_flush(
        &self,
        updater: KernelId,
        mut mine: BTreeMap<Instance, u32>,
        out: &mut Vec<Instance>,
    ) {
        let p = self.tree.len();
        let mut idx = (p + (updater.idx() & (p - 1))) / 2;
        let mut claimed: Vec<usize> = Vec::new();
        while idx >= 1 {
            let mut node = self.lock_tree(idx);
            if node.claimed {
                for (ci, n) in mine {
                    *node.pending.entry(ci).or_insert(0) += n;
                }
                drop(node);
                self.unwind_claims(&claimed, updater, out);
                return;
            }
            node.claimed = true;
            for (ci, n) in std::mem::take(&mut node.pending) {
                *mine.entry(ci).or_insert(0) += n;
            }
            drop(node);
            claimed.push(idx);
            idx /= 2;
        }
        self.apply_combined(&mine, updater, out);
        self.unwind_claims(&claimed, updater, out);
    }

    /// Release the tree nodes this flusher claimed, root-most first. A
    /// node is unclaimed only after its pending map is observed empty
    /// under the lock; anything deposited while we were busy is applied
    /// here, so no decrement is ever stranded at a claimed node.
    fn unwind_claims(&self, claimed: &[usize], updater: KernelId, out: &mut Vec<Instance>) {
        for &idx in claimed.iter().rev() {
            loop {
                let mut node = self.lock_tree(idx);
                if node.pending.is_empty() {
                    node.claimed = false;
                    break;
                }
                let pending = std::mem::take(&mut node.pending);
                drop(node);
                self.apply_combined(&pending, updater, out);
            }
        }
    }

    /// Stall forensics: every resident instance whose ready count is still
    /// above zero. Ordered thread-major, context-minor.
    pub fn waiting_instances(&self) -> Vec<WaitingInstance> {
        let mut out = Vec::new();
        for (t, spec) in self.gm.program().threads().iter().enumerate() {
            for c in 0..spec.arity {
                let instance = Instance::new(ThreadId(t as u32), Context(c));
                let slot = self.slot(instance);
                if phase(slot.state.load(Ordering::Acquire)) != RESIDENT {
                    continue;
                }
                let remaining = slot.rc.load(Ordering::Acquire);
                if remaining > 0 {
                    out.push(WaitingInstance {
                        instance,
                        remaining,
                    });
                }
            }
        }
        out
    }

    /// Stall forensics: every instance dispatched to a kernel but not yet
    /// completed. Ordered thread-major, context-minor.
    pub fn running_instances(&self) -> Vec<Instance> {
        let mut out = Vec::new();
        for (t, spec) in self.gm.program().threads().iter().enumerate() {
            for c in 0..spec.arity {
                let instance = Instance::new(ThreadId(t as u32), Context(c));
                if phase(self.slot(instance).state.load(Ordering::Acquire)) == RUNNING {
                    out.push(instance);
                }
            }
        }
        out
    }

    /// Aggregate operation counters. `waits` and `steals` are scheduler
    /// concerns and are reported as 0 here; schedulers fold their own in.
    pub fn stats(&self) -> TsuStats {
        let guard = self.block_forensics();
        TsuStats {
            fetches: self.fetches.load(Ordering::Relaxed),
            waits: 0,
            completions: self.completions.load(Ordering::Relaxed),
            rc_updates: self
                .shards
                .iter()
                .map(|s| s.rc_updates.load(Ordering::Relaxed))
                .sum(),
            rc_rmws: self
                .shards
                .iter()
                .map(|s| s.rc_rmws.load(Ordering::Relaxed))
                .sum(),
            steals: 0,
            steal_misses: 0,
            steal_races: 0,
            steal_skips: 0,
            blocks_loaded: guard.blocks_loaded,
            max_resident: guard.max_resident,
            epochs: guard.completed,
            sm_contended: self
                .shards
                .iter()
                .map(|s| s.contended.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Per-kernel counters, indexed by owning kernel.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                rc_updates: s.rc_updates.load(Ordering::Relaxed),
                rc_rmws: s.rc_rmws.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ArcMapping;
    use crate::program::{DdmProgram, ProgramBuilder};
    use crate::thread::ThreadSpec;

    fn fork_join() -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", 4));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shared_reference_drives_a_full_block() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 2, 0);
        let sm = &sm; // everything below goes through &SyncMemory
        let mut ready = Vec::new();
        let mut queue = vec![sm.armed_inlet()];
        let mut done = 0usize;
        while let Some(i) = queue.pop() {
            let ep = sm.dispatch(i).unwrap();
            sm.complete(i, ep, &mut ready).unwrap();
            done += 1;
            queue.append(&mut ready);
        }
        assert_eq!(done, p.total_instances());
        assert!(sm.finished());
        let s = sm.stats();
        assert_eq!(s.completions as usize, p.total_instances());
        assert_eq!(s.fetches, s.completions);
        assert_eq!(s.blocks_loaded, 1);
    }

    #[test]
    fn rc_updates_land_on_the_consumers_shard() {
        // pin the whole program onto kernel 1 of 2: every decrement must be
        // counted on shard 1, none on shard 0
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(
            blk,
            ThreadSpec::scalar("src")
                .with_affinity(crate::thread::Affinity::Fixed(crate::ids::KernelId(1))),
        );
        let work = b.thread(
            blk,
            ThreadSpec::new("w", 4)
                .with_affinity(crate::thread::Affinity::Fixed(crate::ids::KernelId(1))),
        );
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        let p = b.build().unwrap();
        let sm = SyncMemory::new(&p, 2, 0);
        let mut ready = Vec::new();
        let mut queue = vec![sm.armed_inlet()];
        while let Some(i) = queue.pop() {
            let ep = sm.dispatch(i).unwrap();
            sm.complete(i, ep, &mut ready).unwrap();
            queue.append(&mut ready);
        }
        let shards = sm.shard_stats();
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards[0].rc_updates + shards[1].rc_updates,
            sm.stats().rc_updates
        );
        // the 4 broadcast decrements hit shard 1 (outlet updates go to the
        // outlet's own shard, kernel 0, so shard 0 is not exactly zero)
        assert!(shards[1].rc_updates >= 4, "{shards:?}");
    }

    #[test]
    fn completion_without_dispatch_is_a_protocol_error() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 1, 0);
        let mut ready = Vec::new();
        let err = sm
            .complete(sm.armed_inlet(), sm.current_epoch(), &mut ready)
            .unwrap_err();
        assert!(matches!(err, CoreError::NotRunning(_)));
    }

    #[test]
    fn dispatch_of_non_resident_instance_is_rejected() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 1, 0);
        // the block is not loaded yet: dispatching an application instance
        // must fail instead of silently marking it running
        let work = Instance::new(ThreadId(1), Context(0));
        assert_eq!(sm.dispatch(work), Err(CoreError::NotResident(work)));
        // double dispatch of the armed inlet is rejected too
        let inlet = sm.armed_inlet();
        sm.dispatch(inlet).unwrap();
        assert_eq!(sm.dispatch(inlet), Err(CoreError::NotResident(inlet)));
        // only the successful dispatch was counted
        assert_eq!(sm.stats().fetches, 1);
    }

    #[test]
    fn failed_block_load_leaves_inlet_completion_untouched() {
        // fork_join's block needs 7 entries (4+1+1 apps + outlet); with
        // capacity 6 the inlet (1 entry) fits but its block does not. The
        // completion must fail *transactionally*: no counter advanced, the
        // inlet still running, so PR 1's RetryPolicy replay is idempotent.
        let p = fork_join();
        let sm = SyncMemory::new(&p, 1, 6);
        let inlet = sm.armed_inlet();
        let ep = sm.dispatch(inlet).unwrap();
        let mut ready = Vec::new();
        let err = sm.complete(inlet, ep, &mut ready).unwrap_err();
        assert!(matches!(err, CoreError::BlockTooLarge { .. }), "{err:?}");
        // nothing mutated: progress counters untouched, inlet still in
        // flight, no block loaded
        assert_eq!(sm.completions(), 0);
        assert_eq!(sm.running_instances(), vec![inlet]);
        assert_eq!(sm.loaded_block(), None);
        assert_eq!(sm.stats().blocks_loaded, 0);
        // replaying the completion observes the same state and the same
        // error — not a protocol error about a missing instance
        let again = sm.complete(inlet, ep, &mut ready).unwrap_err();
        assert_eq!(err, again);
    }

    #[test]
    fn poisoned_sm_surfaces_from_next_operation() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 1, 0);
        let inlet = sm.armed_inlet();
        let ep = sm.dispatch(inlet).unwrap();
        // a kernel dies while holding the block mutex: the OS-level poison
        // must latch and surface, not be swallowed by into_inner
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = sm.block.lock().unwrap();
            panic!("kernel death mid-transition");
        }));
        assert!(result.is_err());
        let mut ready = Vec::new();
        assert_eq!(
            sm.complete(inlet, ep, &mut ready),
            Err(CoreError::SmPoisoned)
        );
        assert!(sm.is_poisoned());
        // every subsequent operation keeps failing loudly
        assert_eq!(sm.dispatch(inlet), Err(CoreError::SmPoisoned));
        assert_eq!(
            sm.load_block(BlockId(0), &mut ready),
            Err(CoreError::SmPoisoned)
        );
        // forensics still work on a poisoned SM
        assert_eq!(sm.running_instances(), vec![inlet]);
    }

    #[test]
    fn protocol_violation_mid_post_process_poisons_the_table() {
        // completing an App instance whose consumer is not resident is a
        // protocol-invariant violation: the panic must leave the SM
        // poisoned so nothing trusts the half-applied decrements
        let p = fork_join();
        let sm = SyncMemory::new(&p, 1, 0);
        let mut ready = Vec::new();
        let inlet = sm.armed_inlet();
        let ep = sm.dispatch(inlet).unwrap();
        sm.complete(inlet, ep, &mut ready).unwrap();
        let src = Instance::new(ThreadId(0), Context(0));
        let ep = sm.dispatch(src).unwrap();
        // fake a corrupted table: vacate the consumer behind the SM's back
        let work0 = Instance::new(ThreadId(1), Context(0));
        sm.slot(work0).state.store(VACANT, Ordering::Release);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Vec::new();
            let _ = sm.complete(src, ep, &mut out);
        }));
        assert!(result.is_err(), "vacant consumer must still panic");
        assert!(sm.is_poisoned());
        assert_eq!(sm.dispatch(work0), Err(CoreError::SmPoisoned));
    }

    #[test]
    fn concurrent_completions_from_many_threads_are_exact() {
        // a wide fan-in: many producers all decrementing one consumer's
        // ready count from different threads; the count must come out exact
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let work = b.thread(blk, ThreadSpec::new("w", 64));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        let p = b.build().unwrap();

        let sm = SyncMemory::new(&p, 4, 0);
        let mut ready = Vec::new();
        let inlet = sm.armed_inlet();
        let ep = sm.dispatch(inlet).unwrap();
        sm.complete(inlet, ep, &mut ready).unwrap();
        assert_eq!(ready.len(), 64);

        let newly: Mutex<Vec<Instance>> = Mutex::new(Vec::new());
        let (sm, newly_ref) = (&sm, &newly);
        std::thread::scope(|s| {
            for chunk in ready.chunks(16) {
                s.spawn(move || {
                    let mut local = Vec::new();
                    for &i in chunk {
                        let ep = sm.dispatch(i).unwrap();
                        sm.complete(i, ep, &mut local).unwrap();
                        newly_ref.lock().unwrap().extend(local.drain(..));
                    }
                });
            }
        });
        let newly = newly.into_inner().unwrap();
        // exactly one instance (the sink) became ready, exactly once
        assert_eq!(newly, vec![Instance::scalar(sink)]);
        // 64 reduction decrements on the sink + 64 implicit All decrements
        // on the outlet (the sink itself never completes in this test)
        assert_eq!(sm.stats().rc_updates, 64 + 64);
    }

    /// Wide reduction used by the funnel tests: `work[arity] -> sink`.
    fn wide_reduction(arity: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let work = b.thread(blk, ThreadSpec::new("w", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    /// Load the first block and dispatch every initially-ready instance.
    fn armed_block(sm: &SyncMemory<&DdmProgram>) -> Vec<Instance> {
        let mut ready = Vec::new();
        let inlet = sm.armed_inlet();
        let ep = sm.dispatch(inlet).unwrap();
        sm.complete(inlet, ep, &mut ready).unwrap();
        for &i in &ready {
            sm.dispatch(i).unwrap();
        }
        ready
    }

    #[test]
    fn batched_completion_matches_direct_path() {
        let p = wide_reduction(16);

        // direct: one decrement per completion
        let direct = SyncMemory::new(&p, 2, 0);
        let work = armed_block(&direct);
        let ep = direct.current_epoch();
        let mut direct_ready = Vec::new();
        let mut scratch = Vec::new();
        for &i in &work {
            direct.complete(i, ep, &mut scratch).unwrap();
            direct_ready.extend_from_slice(&scratch);
        }

        // batched: the same 16 completions in two flushes of 8
        let batched = SyncMemory::new(&p, 2, 0);
        let work = armed_block(&batched);
        let ep = batched.current_epoch();
        let mut batched_ready = Vec::new();
        for half in work.chunks(8) {
            batched.complete_batch(half, ep, &mut scratch).unwrap();
            batched_ready.extend_from_slice(&scratch);
        }

        // same published set, same logical decrements (conservation)...
        assert_eq!(direct_ready, batched_ready);
        let (d, b) = (direct.stats(), batched.stats());
        assert_eq!(d.rc_updates, b.rc_updates);
        assert_eq!(d.completions, b.completions);
        // ...but far fewer physical RMWs: 2 flushes × 2 slots (sink +
        // implicit outlet) vs 16 completions × 2 slots
        assert_eq!(d.rc_rmws, 32);
        assert_eq!(b.rc_rmws, 4);
    }

    #[test]
    fn batch_publishes_the_n_to_zero_edge_exactly_once() {
        let p = wide_reduction(8);
        let sink = ThreadId(1);
        let sm = SyncMemory::new(&p, 2, 0);
        let work = armed_block(&sm);
        let ep = sm.current_epoch();
        let mut out = Vec::new();
        // first 7 as one batch: sink not yet ready
        sm.complete_batch(&work[..7], ep, &mut out).unwrap();
        assert!(out.is_empty(), "{out:?}");
        // the final completion crosses 1→0 and publishes the sink once
        sm.complete_batch(&work[7..], ep, &mut out).unwrap();
        assert_eq!(out, vec![Instance::scalar(sink)]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let p = wide_reduction(4);
        let sm = SyncMemory::new(&p, 2, 0);
        let mut out = vec![Instance::scalar(ThreadId(0))];
        sm.complete_batch(&[], sm.current_epoch(), &mut out)
            .unwrap();
        assert!(out.is_empty());
        assert_eq!(sm.completions(), 0);
    }

    #[test]
    fn batch_protocol_error_poisons_the_table() {
        // a batch holding a never-dispatched instance cannot roll back the
        // instances that already retired, so it must poison
        let p = wide_reduction(4);
        let sm = SyncMemory::new(&p, 2, 0);
        let work = armed_block(&sm);
        let ep = sm.current_epoch();
        let bogus = Instance::new(ThreadId(0), Context(3));
        let batch = [work[0], work[1], bogus];
        // `bogus` is dispatched... but completed twice within one batch
        sm.complete(bogus, ep, &mut Vec::new()).unwrap();
        let mut out = Vec::new();
        let err = sm.complete_batch(&batch, ep, &mut out).unwrap_err();
        assert_eq!(err, CoreError::NotRunning(bogus));
        assert!(sm.is_poisoned());
        assert_eq!(
            sm.complete_batch(&[work[2]], ep, &mut out),
            Err(CoreError::SmPoisoned)
        );
    }

    #[test]
    fn single_kernel_updates_never_count_as_contended() {
        let p = wide_reduction(32);
        let sm = SyncMemory::new(&p, 1, 0);
        let work = armed_block(&sm);
        let ep = sm.current_epoch();
        let mut scratch = Vec::new();
        for &i in &work {
            sm.complete(i, ep, &mut scratch).unwrap();
        }
        assert_eq!(sm.stats().sm_contended, 0);
    }

    #[test]
    fn cross_kernel_updates_count_line_transfers() {
        // 2 kernels alternate decrements of the same sink slot: every RMW
        // after the first arrives from "the other" kernel, so the line
        // ping-pongs — with 2 kernels the owner split is contexts 0..16
        // on K0 and 16..32 on K1, so the single K0→K1 handover plus the
        // outlet slot's transfer are the deterministic floor
        let p = wide_reduction(32);
        let sm = SyncMemory::new(&p, 2, 0);
        let work = armed_block(&sm);
        let ep = sm.current_epoch();
        let mut scratch = Vec::new();
        // interleave kernels: K0 owns first half, K1 second half
        for pair in work[..16].iter().zip(work[16..].iter()) {
            sm.complete(*pair.0, ep, &mut scratch).unwrap();
            sm.complete(*pair.1, ep, &mut scratch).unwrap();
        }
        let contended = sm.stats().sm_contended;
        // 32 alternating updates on the sink slot → 31 transfers, plus 31
        // on the implicit outlet slot
        assert_eq!(contended, 62);

        // funneled: each kernel flushes its half as one batch → the sink
        // line changes hands once (and the outlet line once)
        let sm2 = SyncMemory::new(&p, 2, 0);
        let work = armed_block(&sm2);
        let ep = sm2.current_epoch();
        sm2.complete_batch(&work[..16], ep, &mut scratch).unwrap();
        sm2.complete_batch(&work[16..], ep, &mut scratch).unwrap();
        assert_eq!(sm2.stats().sm_contended, 2);
    }

    /// Drain the table from `seed` until nothing is ready. Streams across
    /// epoch boundaries: a closing outlet that wraps the table around
    /// publishes the re-armed inlet, which lands back on the queue.
    fn drain_from(sm: &SyncMemory<&DdmProgram>, seed: Vec<Instance>) -> usize {
        let mut ready = Vec::new();
        let mut queue = seed;
        let mut done = 0usize;
        while let Some(i) = queue.pop() {
            let ep = sm.dispatch(i).unwrap();
            sm.complete(i, ep, &mut ready).unwrap();
            done += 1;
            queue.append(&mut ready);
        }
        done
    }

    #[test]
    fn streaming_epochs_rearm_and_replay() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 2, 0);
        let mut out = Vec::new();
        // credit two more passes up front; epoch 0 is still running, so
        // nothing re-arms yet and the drain streams through all three
        assert_eq!(sm.open_epoch(&mut out).unwrap(), Epoch(1));
        assert!(out.is_empty());
        assert_eq!(sm.open_epoch(&mut out).unwrap(), Epoch(2));
        let done = drain_from(&sm, vec![sm.armed_inlet()]);
        assert_eq!(done, 3 * p.total_instances());
        assert!(sm.finished());
        assert_eq!(sm.current_epoch(), Epoch(2));
        assert_eq!(sm.epoch_ledger(), (3, 3, 0));
        let s = sm.stats();
        assert_eq!(s.epochs, 3);
        assert_eq!(s.completions as usize, 3 * p.total_instances());
        assert_eq!(s.blocks_loaded, 3);
        // a fourth pass after the drain: this open re-arms immediately and
        // hands the caller the resident inlet to schedule
        assert_eq!(sm.open_epoch(&mut out).unwrap(), Epoch(3));
        assert_eq!(out, vec![sm.armed_inlet()]);
        assert!(!sm.finished());
        assert_eq!(drain_from(&sm, out.clone()), p.total_instances());
        assert!(sm.finished());
    }

    #[test]
    fn stale_completion_from_a_finished_epoch_is_rejected() {
        let p = wide_reduction(4);
        let sm = SyncMemory::new(&p, 1, 0);
        let mut out = Vec::new();
        sm.open_epoch(&mut out).unwrap();
        let work = armed_block(&sm);
        let e0 = sm.current_epoch();
        let mut ready = Vec::new();
        let mut queue: Vec<Instance> = Vec::new();
        for &i in &work {
            sm.complete(i, e0, &mut ready).unwrap();
            queue.append(&mut ready);
        }
        // sink, then the outlet whose completion wraps into epoch 1
        while let Some(i) = queue.pop() {
            let ep = sm.dispatch(i).unwrap();
            sm.complete(i, ep, &mut ready).unwrap();
            if sm.current_epoch() != e0 {
                break;
            }
            queue.append(&mut ready);
        }
        assert_eq!(sm.current_epoch(), Epoch(1));
        let inlet = sm.armed_inlet();
        let e1 = sm.dispatch(inlet).unwrap();
        assert_eq!(e1, Epoch(1));
        sm.complete(inlet, e1, &mut ready).unwrap();
        // a late duplicate still holding its epoch-0 token loses on the
        // tag bits — the re-armed slot is untouched
        assert_eq!(
            sm.complete(work[0], e0, &mut ready),
            Err(CoreError::StaleEpoch {
                epoch: Epoch(0),
                current: Epoch(1),
            })
        );
        // a same-epoch protocol error still classifies as NotRunning
        assert_eq!(
            sm.complete(work[0], e1, &mut ready),
            Err(CoreError::NotRunning(work[0]))
        );
        // and the instance runs epoch 1 normally afterwards
        let ep = sm.dispatch(work[0]).unwrap();
        assert_eq!(ep, Epoch(1));
        sm.complete(work[0], ep, &mut ready).unwrap();
    }

    #[test]
    fn credit_window_bounds_in_flight_epochs() {
        let p = fork_join();
        let sm = SyncMemory::with_window(&p, 1, 0, 2);
        let mut out = Vec::new();
        // epoch 0 holds one credit from construction; one more fits
        assert_eq!(sm.open_epoch(&mut out).unwrap(), Epoch(1));
        assert_eq!(
            sm.open_epoch(&mut out),
            Err(CoreError::WindowExhausted { window: 2 })
        );
        // run both epochs and retire the first: a credit frees up
        let done = drain_from(&sm, vec![sm.armed_inlet()]);
        assert_eq!(done, 2 * p.total_instances());
        sm.retire_epoch(Epoch(0)).unwrap();
        assert_eq!(sm.open_epoch(&mut out).unwrap(), Epoch(2));
        assert_eq!(out, vec![sm.armed_inlet()]);
    }

    #[test]
    fn epochs_retire_oldest_first_exactly_once() {
        let p = fork_join();
        let sm = SyncMemory::new(&p, 1, 0);
        let mut out = Vec::new();
        sm.open_epoch(&mut out).unwrap();
        // nothing has completed yet: retiring is premature
        assert_eq!(
            sm.retire_epoch(Epoch(0)),
            Err(CoreError::EpochNotDrained(Epoch(0)))
        );
        drain_from(&sm, vec![sm.armed_inlet()]);
        // out of order: epoch 1 cannot retire before epoch 0
        assert_eq!(
            sm.retire_epoch(Epoch(1)),
            Err(CoreError::EpochNotDrained(Epoch(1)))
        );
        sm.retire_epoch(Epoch(0)).unwrap();
        // exactly one winner: a duplicate retirement is stale
        assert_eq!(
            sm.retire_epoch(Epoch(0)),
            Err(CoreError::StaleEpoch {
                epoch: Epoch(0),
                current: Epoch(1),
            })
        );
        sm.retire_epoch(Epoch(1)).unwrap();
        assert_eq!(sm.epoch_ledger(), (2, 2, 2));
    }
}
