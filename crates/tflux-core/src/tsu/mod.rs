//! The Thread Synchronization Unit, decomposed into the paper's units.
//!
//! §3.3/Fig. 4 of the paper describe the TSU as distinct components, and
//! this module mirrors that structure one type per unit:
//!
//! * [`GraphMemory`] — the immutable program view: DThread templates,
//!   consumer lists, block structure, instance placement. Shareable by `&`.
//! * [`SyncMemory`] — per-instance *Ready Counts* and the Post-Processing
//!   Phase, held in a lock-free table of atomic slots so concurrent
//!   completions never contend on a lock (only block transitions are
//!   serialized).
//! * [`StealDeque`] — one Chase-Lev work-stealing deque of ready
//!   instances per kernel, speaking the shared [`FetchResult`]
//!   vocabulary; idle kernels steal the oldest entry of a sibling.
//!
//! [`CoreTsu`] composes the three into the single-owner TSU used by the
//! deterministic platforms and the reference executor
//! ([`drain_sequential`]); the threaded runtime composes the same units
//! with concurrent queues instead. Every platform drives its composition
//! through the [`TsuBackend`] trait, which is what keeps TFluxSoft,
//! TFluxHard and TFluxCell directly comparable.

mod backend;
mod funnel;
mod gm;
mod queue;
mod sync;

pub use backend::{
    FlushPolicy, ShardStats, TsuBackend, TsuConfig, TsuStats, WaitingInstance, AUTO_BATCH_SIZE,
};
pub use funnel::CompletionFunnel;
pub use gm::{GraphMemory, ProgramHandle};
pub use queue::{FetchResult, MpmcRing, ServiceRotor, Steal, StealDeque};
pub use sync::SyncMemory;

use crate::error::CoreError;
use crate::ids::{BlockId, Epoch, Instance, KernelId};
use crate::policy::{SchedulingPolicy, StealPolicy};
use crate::program::DdmProgram;

/// The single-owner TSU: Graph Memory + Synchronization Memory + one
/// [`StealDeque`] per kernel, driven by one caller.
///
/// This is the composition used by the simulated hardware TSU
/// (`tflux-sim`), the Cell machine (`tflux-cell`) and the sequential
/// reference executor. The threaded runtime builds its own composition of
/// the same units around concurrent queues.
pub struct CoreTsu<P: ProgramHandle> {
    gm: GraphMemory<P>,
    sm: SyncMemory<P>,
    queues: Vec<StealDeque>,
    policy: SchedulingPolicy,
    steal_policy: StealPolicy,
    steal_rng: u64,
    /// Per-kernel adaptive probe gate: a kernel whose steals keep missing
    /// backs off its victim scans until a hit resets it.
    backoff: Vec<crate::policy::StealBackoff>,
    flush: FlushPolicy,
    waits: u64,
    steals: u64,
    steal_misses: u64,
    steal_races: u64,
    steal_skips: u64,
}

impl<P: ProgramHandle> CoreTsu<P> {
    /// Create a TSU for `program` serving `kernels` kernels and arm it:
    /// the inlet of the first block is made ready.
    pub fn new(program: P, kernels: u32, config: TsuConfig) -> Self {
        let gm = GraphMemory::new(program.clone(), kernels);
        let sm = SyncMemory::with_window(program, kernels, config.capacity, config.window);
        let nqueues = match config.policy {
            SchedulingPolicy::GlobalFifo => 1,
            _ => kernels as usize,
        };
        let flush = config.flush.resolve(gm.program(), kernels);
        let mut tsu = CoreTsu {
            gm,
            sm,
            queues: (0..nqueues).map(|_| StealDeque::new()).collect(),
            policy: config.policy,
            steal_policy: config.steal_policy,
            // deterministic per-TSU seed: single-owner runs replay exactly
            steal_rng: 0x5EED_0000 ^ ((kernels as u64) << 8),
            backoff: vec![crate::policy::StealBackoff::new(); nqueues],
            flush,
            waits: 0,
            steals: 0,
            steal_misses: 0,
            steal_races: 0,
            steal_skips: 0,
        };
        let inlet = tsu.sm.armed_inlet();
        tsu.push_ready(inlet);
        tsu
    }

    /// The program this TSU executes.
    pub fn program(&self) -> &DdmProgram {
        self.gm.program()
    }

    /// Number of kernels served.
    pub fn kernels(&self) -> u32 {
        self.gm.kernels()
    }

    /// The *resolved* completion-funnel flush policy (`Auto` is resolved
    /// against the program's sink fan-in at construction, so this is
    /// always `Direct` or `Batch`). Device models poll this to decide
    /// whether to build per-core funnels in front of the TSU.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.flush
    }

    /// The epoch currently executing.
    pub fn current_epoch(&self) -> Epoch {
        self.sm.current_epoch()
    }

    /// The epoch ledger: `(opened, completed, retired)` pass counts.
    pub fn epoch_ledger(&self) -> (u64, u64, u64) {
        self.sm.epoch_ledger()
    }

    /// Whether the last block's outlet has completed.
    pub fn finished(&self) -> bool {
        self.sm.finished()
    }

    /// The currently loaded block, if any.
    pub fn loaded_block(&self) -> Option<BlockId> {
        self.sm.loaded_block()
    }

    /// Total ready instances across all queue units.
    pub fn ready_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Operation counters: the Synchronization Memory's, plus the waits
    /// and steals observed by this scheduler.
    pub fn stats(&self) -> TsuStats {
        let mut s = self.sm.stats();
        s.waits = self.waits;
        s.steals = self.steals;
        s.steal_misses = self.steal_misses;
        s.steal_races = self.steal_races;
        s.steal_skips = self.steal_skips;
        s
    }

    /// Stall forensics: resident instances still waiting on producers.
    pub fn waiting_instances(&self) -> Vec<WaitingInstance> {
        self.sm.waiting_instances()
    }

    /// Stall forensics: instances dispatched but not yet completed.
    pub fn running_instances(&self) -> Vec<Instance> {
        self.sm.running_instances()
    }

    fn queue_of(&self, i: Instance) -> usize {
        match self.policy {
            SchedulingPolicy::GlobalFifo => 0,
            _ => self.gm.owner_of(i).idx(),
        }
    }

    fn push_ready(&mut self, i: Instance) {
        let q = self.queue_of(i);
        let ep = self.sm.current_epoch();
        self.queues[q].push(i, ep);
    }

    /// Ask for the next DThread on behalf of `kernel`. Fails with
    /// [`CoreError::NotResident`] when a queued instance is not resident
    /// (a scheduler protocol bug) or [`CoreError::SmPoisoned`] when the
    /// Synchronization Memory can no longer be trusted.
    pub fn fetch_ready(&mut self, kernel: KernelId) -> Result<FetchResult, CoreError> {
        Ok(self.fetch_ready_traced(kernel)?.0)
    }

    /// [`fetch_ready`](Self::fetch_ready) with provenance: the flag is
    /// `true` when the instance was stolen from a sibling queue rather
    /// than served from `kernel`'s own. Device models use this to charge
    /// a steal latency on migrated fetches.
    pub fn fetch_ready_traced(
        &mut self,
        kernel: KernelId,
    ) -> Result<(FetchResult, bool), CoreError> {
        if self.sm.finished() {
            return Ok((FetchResult::Exit, false));
        }
        let own = match self.policy {
            SchedulingPolicy::GlobalFifo => 0,
            _ => kernel.idx().min(self.queues.len() - 1),
        };
        if let Some((i, _)) = self.queues[own].pop() {
            let ep = self.sm.dispatch(i)?;
            return Ok((FetchResult::Thread(i, ep), false));
        }
        if let SchedulingPolicy::LocalityFirst { steal: true } = self.policy {
            // adaptive backoff: a kernel whose recent probes all missed
            // skips the victim scan entirely on most attempts, so an idle
            // machine stops paying for empty sweeps; one hit re-arms
            // eager probing
            if self.backoff[own].should_probe() {
                let stolen = self.steal_ready(own);
                self.backoff[own].record(stolen.is_some());
                if let Some((i, _)) = stolen {
                    let ep = self.sm.dispatch(i)?;
                    return Ok((FetchResult::Thread(i, ep), true));
                }
            } else {
                self.steal_skips += 1;
            }
        }
        self.waits += 1;
        Ok((FetchResult::Wait, false))
    }

    /// Steal on behalf of the owner of queue `own`: one random-victim
    /// probe (under [`StealPolicy::RandomThenLongest`]), then a
    /// longest-queue-first scan of the remaining siblings. A victim
    /// drained between its length snapshot and the steal is a clean miss
    /// ([`Steal::Empty`]) and falls through to the next; this TSU is
    /// single-owner so [`Steal::Retry`] cannot occur, but the loop handles
    /// it anyway for symmetry with the concurrent runtime.
    fn steal_ready(&mut self, own: usize) -> Option<(Instance, Epoch)> {
        let n = self.queues.len();
        if let Some(v) = self.steal_policy.first_victim(own, n, &mut self.steal_rng) {
            match self.queues[v].steal() {
                Steal::Success(e) => {
                    self.steals += 1;
                    return Some(e);
                }
                Steal::Empty => self.steal_misses += 1,
                Steal::Retry => self.steal_races += 1,
            }
        }
        let mut victims: Vec<usize> = (0..n)
            .filter(|&q| q != own && !self.queues[q].is_empty())
            .collect();
        victims.sort_by_key(|&q| std::cmp::Reverse(self.queues[q].len()));
        for v in victims {
            loop {
                match self.queues[v].steal() {
                    Steal::Success(e) => {
                        self.steals += 1;
                        return Some(e);
                    }
                    Steal::Empty => {
                        self.steal_misses += 1;
                        break;
                    }
                    Steal::Retry => self.steal_races += 1,
                }
            }
        }
        None
    }

    /// Record completion of `inst`; newly-ready instances go onto the
    /// internal queue units *and* are reported in `out` (cleared first),
    /// so device models can inspect who became ready — e.g. to charge
    /// cross-TSU-shard update messages.
    pub fn complete_queued(
        &mut self,
        inst: Instance,
        epoch: Epoch,
        out: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.sm.complete(inst, epoch, out)?;
        for &i in out.iter() {
            self.push_ready(i);
        }
        Ok(())
    }

    /// Record a funnel flush: a batch of App completions whose combined
    /// ready-count decrements hit each consumer slot once. Newly-ready
    /// instances go onto the internal queue units *and* are reported in
    /// `out` (cleared first), like
    /// [`complete_queued`](Self::complete_queued).
    pub fn complete_batch_queued(
        &mut self,
        done: &[Instance],
        epoch: Epoch,
        out: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.sm.complete_batch(done, epoch, out)?;
        for &i in out.iter() {
            self.push_ready(i);
        }
        Ok(())
    }

    /// Credit one more streaming pass; if the graph has already finished,
    /// it re-arms now and the resident inlet is queued (and reported in
    /// `out`).
    pub fn open_epoch_queued(&mut self, out: &mut Vec<Instance>) -> Result<Epoch, CoreError> {
        let ep = self.sm.open_epoch(out)?;
        for &i in out.iter() {
            self.push_ready(i);
        }
        Ok(ep)
    }

    /// Return the credit of a completed epoch (oldest-first, exactly
    /// once).
    pub fn retire_epoch(&mut self, epoch: Epoch) -> Result<(), CoreError> {
        self.sm.retire_epoch(epoch)
    }
}

impl<P: ProgramHandle> TsuBackend for CoreTsu<P> {
    fn load_block(&mut self, block: BlockId, ready: &mut Vec<Instance>) -> Result<(), CoreError> {
        ready.clear();
        self.sm.load_block(block, ready)?;
        for &i in ready.iter() {
            self.push_ready(i);
        }
        Ok(())
    }

    fn fetch(&mut self, kernel: KernelId) -> Result<FetchResult, CoreError> {
        self.fetch_ready(kernel)
    }

    fn complete(
        &mut self,
        inst: Instance,
        epoch: Epoch,
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.complete_queued(inst, epoch, ready)
    }

    fn complete_batch(
        &mut self,
        done: &[Instance],
        epoch: Epoch,
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        self.complete_batch_queued(done, epoch, ready)
    }

    fn open_epoch(&mut self, ready: &mut Vec<Instance>) -> Result<Epoch, CoreError> {
        self.open_epoch_queued(ready)
    }

    fn retire_epoch(&mut self, epoch: Epoch) -> Result<(), CoreError> {
        CoreTsu::retire_epoch(self, epoch)
    }

    fn drain_stats(&mut self) -> TsuStats {
        self.stats()
    }

    fn waiting_instances(&self) -> Vec<WaitingInstance> {
        self.sm.waiting_instances()
    }
}

/// Drive a TSU to completion single-threadedly, round-robining fetches over
/// the kernels; returns the execution order. Panics on protocol errors.
///
/// This is the reference executor used by tests and by the graph-analysis
/// tooling; platforms implement their own drivers.
pub fn drain_sequential<P: ProgramHandle>(tsu: &mut CoreTsu<P>) -> Vec<Instance> {
    let mut order = Vec::new();
    let mut scratch = Vec::new();
    let kernels = tsu.kernels();
    let mut k = 0u32;
    let mut idle_rounds = 0u32;
    loop {
        match tsu.fetch_ready(KernelId(k)).expect("protocol error") {
            FetchResult::Thread(i, ep) => {
                idle_rounds = 0;
                order.push(i);
                tsu.complete_queued(i, ep, &mut scratch)
                    .expect("protocol error");
            }
            FetchResult::Wait => {
                idle_rounds += 1;
                assert!(
                    idle_rounds <= kernels,
                    "deadlock: no kernel can make progress"
                );
            }
            FetchResult::Exit => return order,
        }
        k = (k + 1) % kernels;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Context;
    use crate::mapping::ArcMapping;
    use crate::program::ProgramBuilder;
    use crate::thread::ThreadSpec;
    use std::collections::HashSet;

    fn fork_join(arity: u32, blocks: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        for _ in 0..blocks {
            let blk = b.block();
            let src = b.thread(blk, ThreadSpec::scalar("src"));
            let work = b.thread(blk, ThreadSpec::new("work", arity));
            let sink = b.thread(blk, ThreadSpec::scalar("sink"));
            b.arc(src, work, ArcMapping::Broadcast).unwrap();
            b.arc(work, sink, ArcMapping::Reduction).unwrap();
        }
        b.build().unwrap()
    }

    fn complete(tsu: &mut CoreTsu<&DdmProgram>, i: Instance, ep: Epoch) -> Result<(), CoreError> {
        let mut out = Vec::new();
        tsu.complete_queued(i, ep, &mut out)
    }

    #[test]
    fn drains_every_instance_exactly_once() {
        let p = fork_join(16, 3);
        let mut tsu = CoreTsu::new(&p, 4, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        assert_eq!(order.len(), p.total_instances());
        let set: HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), order.len(), "duplicate execution");
        assert!(tsu.finished());
    }

    #[test]
    fn respects_producer_consumer_order() {
        let p = fork_join(8, 2);
        let mut tsu = CoreTsu::new(&p, 3, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let pos = |i: &Instance| order.iter().position(|x| x == i).unwrap();
        for blk in p.blocks() {
            let src = blk.threads[0];
            let work = blk.threads[1];
            let sink = blk.threads[2];
            for c in 0..8 {
                let w = Instance::new(work, Context(c));
                assert!(pos(&Instance::scalar(src)) < pos(&w));
                assert!(pos(&w) < pos(&Instance::scalar(sink)));
            }
            // inlet first in block, outlet last
            let inlet = pos(&Instance::scalar(blk.inlet));
            let outlet = pos(&Instance::scalar(blk.outlet));
            for &t in &blk.threads {
                for c in 0..p.thread(t).arity {
                    let i = pos(&Instance::new(t, Context(c)));
                    assert!(inlet < i && i < outlet);
                }
            }
        }
    }

    #[test]
    fn blocks_execute_in_order() {
        let p = fork_join(4, 3);
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let block_seq: Vec<u32> = order.iter().map(|i| p.block_of(i.thread).0).collect();
        let mut sorted = block_seq.clone();
        sorted.sort_unstable();
        assert_eq!(block_seq, sorted, "block interleaving detected");
    }

    #[test]
    fn capacity_enforced_at_block_load() {
        let p = fork_join(32, 1); // block residency = 32 + 2 + 1 outlet
        let mut tsu = CoreTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 8,
                policy: SchedulingPolicy::default(),
                ..Default::default()
            },
        );
        // inlet fits; its completion tries to load the block and must fail
        let FetchResult::Thread(inlet, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!("inlet not ready");
        };
        let err = complete(&mut tsu, inlet, ep).unwrap_err();
        assert!(matches!(err, CoreError::BlockTooLarge { .. }));
    }

    #[test]
    fn double_completion_rejected() {
        let p = fork_join(2, 1);
        let mut tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        let FetchResult::Thread(i, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!()
        };
        complete(&mut tsu, i, ep).unwrap();
        assert!(matches!(
            complete(&mut tsu, i, ep),
            Err(CoreError::NotRunning(_))
        ));
    }

    #[test]
    fn completion_without_fetch_rejected() {
        let p = fork_join(2, 1);
        let mut tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        let work = p.blocks()[0].threads[1];
        let ep = tsu.current_epoch();
        assert!(matches!(
            complete(&mut tsu, Instance::new(work, Context(0)), ep),
            Err(CoreError::NotRunning(_))
        ));
    }

    #[test]
    fn steal_lets_idle_kernel_progress() {
        // all work pinned to kernel 0; kernel 1 must steal
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 8).with_affinity(crate::thread::Affinity::Fixed(KernelId(0))),
        );
        let p = b.build().unwrap();
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        // prime: run the inlet
        let FetchResult::Thread(inlet, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!()
        };
        complete(&mut tsu, inlet, ep).unwrap();
        match tsu.fetch_ready(KernelId(1)).unwrap() {
            FetchResult::Thread(..) => {}
            other => panic!("kernel 1 should have stolen, got {other:?}"),
        }
        assert_eq!(tsu.stats().steals, 1);
    }

    #[test]
    fn idle_kernel_backs_off_probing_after_consecutive_misses() {
        use crate::policy::StealBackoff;
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 8).with_affinity(crate::thread::Affinity::Fixed(KernelId(0))),
        );
        let p = b.build().unwrap();
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        // kernel 1 steals the armed inlet and sits on it (dispatched, never
        // completed): both queues are now empty, so every further probe by
        // kernel 1 can only miss
        let FetchResult::Thread(inlet, ep) = tsu.fetch_ready(KernelId(1)).unwrap() else {
            panic!("kernel 1 should steal the armed inlet")
        };
        for _ in 0..64 {
            assert_eq!(tsu.fetch_ready(KernelId(1)).unwrap(), FetchResult::Wait);
        }
        let s = tsu.stats();
        assert!(
            s.steal_skips > 0,
            "repeatedly-missing thief must start skipping probes: {s:?}"
        );
        assert!(
            s.steal_misses < 64 / 2,
            "backoff must cut the empty sweeps well below one per fetch, got {}",
            s.steal_misses
        );
        // completing the inlet readies work on kernel 0's queue; the
        // backed-off thief must reach it within its bounded skip run and a
        // hit re-arms eager probing
        complete(&mut tsu, inlet, ep).unwrap();
        let mut fetched = None;
        for _ in 0..=1u32 << StealBackoff::MAX_SHIFT {
            if let FetchResult::Thread(i, e) = tsu.fetch_ready(KernelId(1)).unwrap() {
                fetched = Some((i, e));
                break;
            }
        }
        assert!(
            fetched.is_some(),
            "a backed-off thief must still probe within 2^MAX_SHIFT attempts"
        );
        assert!(tsu.stats().steals >= 2);
    }

    #[test]
    fn no_steal_policy_makes_idle_kernel_wait() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 8).with_affinity(crate::thread::Affinity::Fixed(KernelId(0))),
        );
        let p = b.build().unwrap();
        let mut tsu = CoreTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::LocalityFirst { steal: false },
                ..Default::default()
            },
        );
        let FetchResult::Thread(inlet, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!()
        };
        complete(&mut tsu, inlet, ep).unwrap();
        assert_eq!(tsu.fetch_ready(KernelId(1)).unwrap(), FetchResult::Wait);
        assert!(tsu.stats().waits >= 1);
    }

    #[test]
    fn global_fifo_serves_everyone_from_one_queue() {
        let p = fork_join(6, 1);
        let mut tsu = CoreTsu::new(
            &p,
            3,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::GlobalFifo,
                ..Default::default()
            },
        );
        let order = drain_sequential(&mut tsu);
        assert_eq!(order.len(), p.total_instances());
        assert_eq!(tsu.stats().steals, 0);
    }

    #[test]
    fn stats_count_operations() {
        let p = fork_join(4, 2);
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        drain_sequential(&mut tsu);
        let s = tsu.stats();
        assert_eq!(s.completions as usize, p.total_instances());
        assert_eq!(s.fetches as usize, p.total_instances());
        assert_eq!(s.blocks_loaded, 2);
        assert!(s.rc_updates > 0);
        // the direct path issues one physical RMW per logical decrement
        assert_eq!(s.rc_rmws, s.rc_updates);
        assert!(s.max_resident >= p.max_block_instances());
        // two kernels round-robin completions, so the sink slots change
        // hands between kernels — counted as line transfers
        assert!(s.sm_contended > 0);
    }

    #[test]
    fn single_kernel_run_is_uncontended() {
        // one kernel: no CAS can race and no line ever changes hands
        let p = fork_join(4, 2);
        let mut tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        drain_sequential(&mut tsu);
        assert_eq!(tsu.stats().sm_contended, 0);
    }

    #[test]
    fn batched_drain_matches_direct_counters() {
        let p = fork_join(8, 2);
        let mut direct = CoreTsu::new(&p, 2, TsuConfig::default());
        drain_sequential(&mut direct);

        // same program, but every App completion funneled through batches
        let mut tsu = CoreTsu::new(
            &p,
            2,
            TsuConfig {
                flush: FlushPolicy::Batch { size: 4 },
                ..TsuConfig::default()
            },
        );
        let mut funnels = [
            CompletionFunnel::new(tsu.flush_policy()),
            CompletionFunnel::new(tsu.flush_policy()),
        ];
        let mut scratch = Vec::new();
        let mut executed = 0usize;
        let mut k = 0usize;
        let mut idle = 0u32;
        loop {
            match tsu.fetch_ready(KernelId(k as u32)).unwrap() {
                FetchResult::Thread(i, ep) => {
                    idle = 0;
                    executed += 1;
                    if tsu.program().thread(i.thread).kind == crate::thread::ThreadKind::App {
                        if funnels[k].push(i, ep) {
                            funnels[k].flush(&mut tsu, &mut scratch).unwrap();
                        }
                    } else {
                        // block transitions flush first, then complete
                        funnels[k].flush(&mut tsu, &mut scratch).unwrap();
                        tsu.complete_queued(i, ep, &mut scratch).unwrap();
                    }
                }
                FetchResult::Wait => {
                    // flush before idling or the parked decrements deadlock
                    funnels[k].flush(&mut tsu, &mut scratch).unwrap();
                    idle += 1;
                    assert!(idle <= 4, "deadlock");
                }
                FetchResult::Exit => break,
            }
            k = (k + 1) % 2;
        }
        assert_eq!(executed, p.total_instances());
        let (d, b) = (direct.stats(), tsu.stats());
        // conservation: batching changes *when* decrements land, not how
        // many, and the physical RMW count shrinks
        assert_eq!(b.rc_updates, d.rc_updates);
        assert_eq!(b.completions, d.completions);
        assert!(b.rc_rmws < d.rc_rmws, "{} !< {}", b.rc_rmws, d.rc_rmws);
    }

    #[test]
    fn concurrently_emptied_victim_is_a_clean_miss() {
        // successor to the PR 5 stale-steal-plan regression: with steals
        // queue-native, a victim that drains between the thief's length
        // probe and the steal must answer `Empty` — no panic, no
        // double-pop — and the fetch path must report `Wait`
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 2).with_affinity(crate::thread::Affinity::Fixed(KernelId(1))),
        );
        let p = b.build().unwrap();
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let FetchResult::Thread(inlet, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!("inlet not ready");
        };
        complete(&mut tsu, inlet, ep).unwrap();
        // queue 1 holds both work instances; a thief would target it...
        assert_eq!(tsu.queues[1].len(), 2);
        // ...but it drains before the steal lands
        while tsu.queues[1].pop().is_some() {}
        assert_eq!(tsu.queues[1].steal(), Steal::Empty, "must be a clean miss");
        assert_eq!(tsu.stats().steals, 0);
        // the public fetch path reports Wait (and counts the miss)
        assert_eq!(tsu.fetch_ready(KernelId(0)).unwrap(), FetchResult::Wait);
        let s = tsu.stats();
        assert_eq!(s.steals, 0);
        assert!(s.steal_misses >= 1, "the emptied probe must be counted");
        assert_eq!(s.steal_races, 0, "single-owner TSU cannot lose a CAS");
    }

    #[test]
    fn traced_fetch_reports_steal_provenance() {
        // same pinned-work shape as steal_lets_idle_kernel_progress, but
        // through the traced surface the sim uses to charge steal latency
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 2).with_affinity(crate::thread::Affinity::Fixed(KernelId(0))),
        );
        let p = b.build().unwrap();
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let (FetchResult::Thread(inlet, ep), stolen) = tsu.fetch_ready_traced(KernelId(0)).unwrap()
        else {
            panic!("inlet not ready");
        };
        assert!(!stolen, "own-queue fetch is local");
        complete(&mut tsu, inlet, ep).unwrap();
        let (r, stolen) = tsu.fetch_ready_traced(KernelId(1)).unwrap();
        assert!(matches!(r, FetchResult::Thread(..)));
        assert!(stolen, "kernel 1 served from kernel 0's queue");
        let (r, stolen) = tsu.fetch_ready_traced(KernelId(0)).unwrap();
        assert!(matches!(r, FetchResult::Thread(..)));
        assert!(!stolen);
    }

    #[test]
    fn outlet_frees_block_resources() {
        // regression: app-thread SM entries must be freed when the block's
        // outlet completes, or multi-block programs exceed capacity
        let p = fork_join(8, 3); // block residency: 8 + 2 scalars + outlet = 11
        let mut tsu = CoreTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 12,
                policy: SchedulingPolicy::default(),
                ..Default::default()
            },
        );
        let order = drain_sequential(&mut tsu);
        assert_eq!(order.len(), p.total_instances());
        assert!(tsu.stats().max_resident <= 12);
    }

    #[test]
    fn forensics_views_track_waiting_and_running() {
        let p = fork_join(4, 1);
        let mut tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        // before the inlet runs, nothing but the inlet is resident; it is
        // ready (rc 0) so the waiting view is empty
        assert!(tsu.waiting_instances().is_empty());
        let FetchResult::Thread(inlet, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!("inlet not ready");
        };
        // the inlet is dispatched but not completed
        assert_eq!(tsu.running_instances(), vec![inlet]);
        complete(&mut tsu, inlet, ep).unwrap();
        // block loaded: src (rc 0) is ready; each work instance waits on the
        // src broadcast, the sink on 4 work completions, the outlet on all
        // 6 app instances
        let waiting = tsu.waiting_instances();
        let src = p.blocks()[0].threads[0];
        let work = p.blocks()[0].threads[1];
        let sink = p.blocks()[0].threads[2];
        assert!(waiting.iter().all(|w| w.instance.thread != src));
        for c in 0..4 {
            assert!(waiting
                .iter()
                .any(|w| w.instance == Instance::new(work, Context(c)) && w.remaining == 1));
        }
        assert!(waiting
            .iter()
            .any(|w| w.instance == Instance::scalar(sink) && w.remaining == 4));
        assert!(tsu.running_instances().is_empty());
        // dispatch src: it shows as running until completed, and its
        // completion unblocks the work instances
        let FetchResult::Thread(first, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!("no ready instance");
        };
        assert_eq!(first, Instance::scalar(src));
        assert_eq!(tsu.running_instances(), vec![first]);
        complete(&mut tsu, first, ep).unwrap();
        assert!(tsu.running_instances().is_empty());
        assert!(tsu
            .waiting_instances()
            .iter()
            .all(|w| w.instance.thread != work));
        // draining the rest empties both views
        drain_sequential(&mut tsu);
        assert!(tsu.waiting_instances().is_empty());
        assert!(tsu.running_instances().is_empty());
    }

    #[test]
    fn exit_reported_to_all_kernels_after_finish() {
        let p = fork_join(2, 1);
        let mut tsu = CoreTsu::new(&p, 4, TsuConfig::default());
        drain_sequential(&mut tsu);
        for k in 0..4 {
            assert_eq!(tsu.fetch_ready(KernelId(k)).unwrap(), FetchResult::Exit);
        }
    }

    #[test]
    fn backend_trait_drives_a_full_program() {
        // the same drain loop, written against the trait object surface
        fn drain<B: TsuBackend>(tsu: &mut B, kernels: u32) -> Vec<Instance> {
            let mut order = Vec::new();
            let mut scratch = Vec::new();
            let mut k = 0u32;
            let mut idle = 0u32;
            loop {
                match tsu.fetch(KernelId(k)).unwrap() {
                    FetchResult::Thread(i, ep) => {
                        idle = 0;
                        order.push(i);
                        tsu.complete(i, ep, &mut scratch).unwrap();
                    }
                    FetchResult::Wait => {
                        idle += 1;
                        assert!(idle <= kernels, "deadlock");
                    }
                    FetchResult::Exit => return order,
                }
                k = (k + 1) % kernels;
            }
        }
        let p = fork_join(6, 2);
        let mut tsu = CoreTsu::new(&p, 3, TsuConfig::default());
        let order = drain(&mut tsu, 3);
        assert_eq!(order.len(), p.total_instances());
        let stats = tsu.drain_stats();
        assert_eq!(stats.completions as usize, p.total_instances());
        assert_eq!(stats.fetches, stats.completions);
        assert!(TsuBackend::waiting_instances(&tsu).is_empty());
    }

    #[test]
    fn sequential_streaming_replays_the_schedule() {
        let p = fork_join(4, 2);
        let mut tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        let first = drain_sequential(&mut tsu);
        assert!(tsu.finished());
        // credit a second pass: the graph re-arms and the drain replays
        // the exact same deterministic schedule
        let mut out = Vec::new();
        assert_eq!(tsu.open_epoch_queued(&mut out).unwrap(), Epoch(1));
        assert_eq!(out, vec![tsu.sm.armed_inlet()]);
        assert!(!tsu.finished());
        let second = drain_sequential(&mut tsu);
        assert_eq!(second, first);
        tsu.retire_epoch(Epoch(0)).unwrap();
        tsu.retire_epoch(Epoch(1)).unwrap();
        let s = tsu.stats();
        assert_eq!(s.epochs, 2);
        assert_eq!(s.completions as usize, 2 * p.total_instances());
        assert_eq!(tsu.epoch_ledger(), (2, 2, 2));
    }

    #[test]
    fn auto_flush_resolves_from_the_program() {
        // hot reduction sink + multiple kernels: Auto turns batching on
        let p = fork_join(8, 1);
        let tsu = CoreTsu::new(&p, 2, TsuConfig::default());
        assert_eq!(
            tsu.flush_policy(),
            FlushPolicy::Batch {
                size: AUTO_BATCH_SIZE
            }
        );
        // one kernel: nothing to combine, Auto stays direct
        let tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        assert_eq!(tsu.flush_policy(), FlushPolicy::Direct);
        // an explicit policy overrides the heuristic
        let tsu = CoreTsu::new(
            &p,
            2,
            TsuConfig {
                flush: FlushPolicy::Direct,
                ..TsuConfig::default()
            },
        );
        assert_eq!(tsu.flush_policy(), FlushPolicy::Direct);
    }
}
