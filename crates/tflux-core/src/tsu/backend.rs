//! The backend contract every platform TSU implements, and the counter
//! types they all report.
//!
//! The portability claim of the paper is that *one* TSU semantics backs
//! three platforms. [`TsuBackend`] is that claim as a trait: the threaded
//! runtime's shared TSU, the simulated hardware TSU device and the Cell
//! machine all schedule through these five operations, so the
//! cross-backend equivalence suite can drive any of them interchangeably.

use crate::error::CoreError;
use crate::ids::{BlockId, Instance, KernelId};
use crate::policy::SchedulingPolicy;
use serde::{Deserialize, Serialize};

use super::queue::FetchResult;

/// When a kernel's completion funnel hands its accumulated ready-count
/// decrements to the Synchronization Memory.
///
/// `Direct` is the PR 4 baseline: every App completion runs the
/// Post-Processing Phase immediately, one `fetch_sub(1)` per consumer
/// slot. `Batch` defers App completions into a per-kernel
/// [`CompletionFunnel`](super::CompletionFunnel) and flushes them as one
/// combined update per slot — at the batch size, at a fetch that would
/// otherwise block (`Wait`), at a block transition (Inlet/Outlet
/// completions are never batched), and at kernel exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FlushPolicy {
    /// Apply every ready-count decrement as its completion arrives.
    #[default]
    Direct,
    /// Accumulate up to `size` App completions per kernel before flushing
    /// them as one batched update (`size` is clamped to at least 1).
    Batch {
        /// Completions accumulated before an automatic flush.
        size: u32,
    },
}

impl FlushPolicy {
    /// The batch size under this policy: `None` for the direct path.
    pub fn batch_size(self) -> Option<usize> {
        match self {
            FlushPolicy::Direct => None,
            FlushPolicy::Batch { size } => Some(size.max(1) as usize),
        }
    }
}

/// Configuration of a TSU instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TsuConfig {
    /// Maximum instances resident at once (`0` = unlimited). A block whose
    /// residency exceeds this fails at load, mirroring the paper's rule that
    /// the block size is bounded by the TSU size.
    pub capacity: usize,
    /// Ready-thread selection policy.
    pub policy: SchedulingPolicy,
    /// Completion-funnel flush policy (default: the direct per-update
    /// path; `Batch` turns the reduction funnels on).
    #[serde(default)]
    pub flush: FlushPolicy,
}

/// Counters a TSU keeps about its own operation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TsuStats {
    /// Successful fetches (a DThread was handed to a kernel).
    pub fetches: u64,
    /// Fetch attempts that found no ready DThread.
    pub waits: u64,
    /// DThread completions processed.
    pub completions: u64,
    /// Logical ready-count decrements performed during post-processing.
    /// Batched flushes count every combined decrement here, so this is
    /// invariant under [`FlushPolicy`] and comparable across backends.
    pub rc_updates: u64,
    /// Physical atomic read-modify-writes issued against ready-count
    /// slots. Equal to `rc_updates` on the direct path; batching makes it
    /// smaller (one `fetch_sub(n)` covers `n` logical decrements).
    #[serde(default)]
    pub rc_rmws: u64,
    /// Fetches satisfied from another kernel's queue.
    pub steals: u64,
    /// DDM blocks loaded.
    pub blocks_loaded: u64,
    /// Peak number of resident instances.
    pub max_resident: usize,
    /// Synchronization Memory contention events: weak-CAS retries on slot
    /// state transitions, plus ready-count RMWs that land on a slot whose
    /// previous decrement came from a *different* kernel — the software
    /// proxy for a coherence-line transfer of a hot sink slot. (The locked
    /// design counted `try_lock` misses here.)
    #[serde(default)]
    pub sm_contended: u64,
}

/// Per-kernel Synchronization Memory counters ("shards" for continuity
/// with the locked design — the lock-free table is one slab, but traffic
/// is still attributed to the owning kernel of each instance). Evenly
/// spread `rc_updates` with low `contended` means completions rarely
/// collided on the same slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Logical ready-count decrements applied to this kernel's instances.
    pub rc_updates: u64,
    /// Physical ready-count RMWs issued against this kernel's instances
    /// (`<= rc_updates` once batching combines decrements).
    #[serde(default)]
    pub rc_rmws: u64,
    /// Contention events on this kernel's instances: CAS retries on state
    /// transitions plus cross-kernel ready-count line transfers (the
    /// locked design counted blocking lock acquisitions here).
    pub contended: u64,
}

/// A resident instance still waiting on producer completions — one row of
/// the stall-forensics view exposed by [`TsuBackend::waiting_instances`].
/// Platforms embed these in their stall reports so a watchdog abort names
/// the stuck instances instead of discarding the Synchronization Memory
/// contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitingInstance {
    /// The instance whose ready count has not reached zero.
    pub instance: Instance,
    /// Producer completions still needed before it becomes ready.
    pub remaining: u32,
}

/// The operations every platform TSU supports.
///
/// The contract mirrors §3.3 of the paper: kernels *fetch* ready DThreads
/// and report *completions*; completions run the Post-Processing Phase and
/// surface newly-ready instances; Inlet/Outlet completions *load* and
/// unload DDM blocks. `ready` buffers are cleared by the callee, so callers
/// can reuse one scratch vector across calls.
pub trait TsuBackend {
    /// Load a DDM block: make its instances resident and append the
    /// initially-ready ones (ready count 0) to `ready`. Fails with
    /// [`CoreError::BlockTooLarge`] if the block exceeds the configured
    /// capacity.
    fn load_block(&mut self, block: BlockId, ready: &mut Vec<Instance>) -> Result<(), CoreError>;

    /// Ask for the next DThread on behalf of `kernel`. Fails with
    /// [`CoreError::NotResident`] if a queued instance turns out not to be
    /// resident (a scheduler protocol bug), or [`CoreError::SmPoisoned`]
    /// if a kernel death left the Synchronization Memory untrustworthy.
    fn fetch(&mut self, kernel: KernelId) -> Result<FetchResult, CoreError>;

    /// Record completion of `inst`: run the Post-Processing Phase and
    /// report the newly-ready instances in `ready` (cleared first). The
    /// backend also schedules them onto its own queues; `ready` lets device
    /// models inspect *who* became ready — e.g. to charge cross-shard
    /// update messages.
    fn complete(&mut self, inst: Instance, ready: &mut Vec<Instance>) -> Result<(), CoreError>;

    /// Record a *batch* of application completions at once: the funnel
    /// flush path. Backends that override this combine the batch's
    /// ready-count decrements into one `fetch_sub(n)` per consumer slot;
    /// the default simply replays [`complete`](Self::complete) per
    /// instance, so every backend accepts a flush even before it learns
    /// to combine. `done` must hold only `App` instances (Inlet/Outlet
    /// completions drive block transitions and are never funneled).
    /// Newly-ready instances land in `ready` (cleared first).
    fn complete_batch(
        &mut self,
        done: &[Instance],
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        ready.clear();
        let mut scratch = Vec::new();
        for &inst in done {
            self.complete(inst, &mut scratch)?;
            ready.append(&mut scratch);
        }
        Ok(())
    }

    /// Snapshot of the operation counters accumulated so far.
    fn drain_stats(&mut self) -> TsuStats;

    /// Stall forensics: every resident instance whose ready count is still
    /// above zero, ordered thread-major, context-minor.
    fn waiting_instances(&self) -> Vec<WaitingInstance>;
}
