//! The backend contract every platform TSU implements, and the counter
//! types they all report.
//!
//! The portability claim of the paper is that *one* TSU semantics backs
//! three platforms. [`TsuBackend`] is that claim as a trait: the threaded
//! runtime's shared TSU, the simulated hardware TSU device and the Cell
//! machine all schedule through these operations, so the
//! cross-backend equivalence suite can drive any of them interchangeably.

use crate::error::CoreError;
use crate::graph::hot_sinks;
use crate::ids::{BlockId, Epoch, Instance, KernelId};
use crate::policy::{SchedulingPolicy, StealPolicy};
use crate::program::DdmProgram;
use serde::{Deserialize, Serialize};

use super::queue::FetchResult;

/// When a kernel's completion funnel hands its accumulated ready-count
/// decrements to the Synchronization Memory.
///
/// `Direct` applies every App completion's Post-Processing Phase
/// immediately, one `fetch_sub(1)` per consumer slot. `Batch` defers App
/// completions into a per-kernel
/// [`CompletionFunnel`](super::CompletionFunnel) and flushes them as one
/// combined update per slot — at the batch size, at a fetch that would
/// otherwise block (`Wait`), at a block transition (Inlet/Outlet
/// completions are never batched), and at kernel exit. `Auto` (the
/// default) picks between them at construction by inspecting the program:
/// batching pays exactly when some reduction sink will absorb updates
/// from every kernel, the same test the Synchronization Memory uses to
/// build its combining trees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FlushPolicy {
    /// Pick `Direct` or `Batch` from the program's sink fan-in at
    /// construction ([`FlushPolicy::resolve`]). Explicitly configuring
    /// `Direct` or `Batch` overrides the heuristic.
    #[default]
    Auto,
    /// Apply every ready-count decrement as its completion arrives.
    Direct,
    /// Accumulate up to `size` App completions per kernel before flushing
    /// them as one batched update (`size` is clamped to at least 1).
    Batch {
        /// Completions accumulated before an automatic flush.
        size: u32,
    },
}

/// Batch size `Auto` resolves to when the program has hot sinks.
pub const AUTO_BATCH_SIZE: u32 = 8;

impl FlushPolicy {
    /// The batch size under this policy: `None` for the direct path.
    /// `Auto` reports `None` — resolve it first.
    pub fn batch_size(self) -> Option<usize> {
        match self {
            FlushPolicy::Auto | FlushPolicy::Direct => None,
            FlushPolicy::Batch { size } => Some(size.max(1) as usize),
        }
    }

    /// Resolve `Auto` against a concrete program and kernel count:
    /// batching turns on iff more than one kernel will feed some sink
    /// whose fan-in is at least the kernel count (a
    /// [`hot_sinks`](crate::graph::hot_sinks) hit means the sink's cache
    /// line is worth funneling). Explicit `Direct`/`Batch` pass through
    /// unchanged, so the knob still overrides the heuristic. Platforms
    /// call this once at construction; the resolved policy never contains
    /// `Auto`.
    pub fn resolve(self, program: &DdmProgram, kernels: u32) -> FlushPolicy {
        match self {
            FlushPolicy::Auto => {
                if kernels > 1 && !hot_sinks(program, kernels).is_empty() {
                    FlushPolicy::Batch {
                        size: AUTO_BATCH_SIZE,
                    }
                } else {
                    FlushPolicy::Direct
                }
            }
            explicit => explicit,
        }
    }
}

/// Configuration of a TSU instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TsuConfig {
    /// Maximum instances resident at once (`0` = unlimited). A block whose
    /// residency exceeds this fails at load, mirroring the paper's rule that
    /// the block size is bounded by the TSU size.
    pub capacity: usize,
    /// Ready-thread selection policy.
    pub policy: SchedulingPolicy,
    /// Victim-selection order once a steal is attempted (default:
    /// random-victim first, then longest-queue-first). Irrelevant unless
    /// `policy` permits stealing.
    #[serde(default)]
    pub steal_policy: StealPolicy,
    /// Completion-funnel flush policy (default: `Auto`, which resolves to
    /// `Batch` when the program has hot reduction sinks and `Direct`
    /// otherwise; explicit `Direct`/`Batch` override the heuristic).
    #[serde(default)]
    pub flush: FlushPolicy,
    /// Epoch credit window: maximum streaming passes in flight at once
    /// (opened but not yet retired). `0` means unwindowed — `open_epoch`
    /// never blocks on credits. One-shot programs never notice this knob:
    /// the construction-time epoch 0 is the only credit they ever use.
    #[serde(default)]
    pub window: usize,
}

/// Counters a TSU keeps about its own operation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TsuStats {
    /// Successful fetches (a DThread was handed to a kernel).
    pub fetches: u64,
    /// Fetch attempts that found no ready DThread.
    pub waits: u64,
    /// DThread completions processed.
    pub completions: u64,
    /// Logical ready-count decrements performed during post-processing.
    /// Batched flushes count every combined decrement here, so this is
    /// invariant under [`FlushPolicy`] and comparable across backends.
    pub rc_updates: u64,
    /// Physical atomic read-modify-writes issued against ready-count
    /// slots. Equal to `rc_updates` on the direct path; batching makes it
    /// smaller (one `fetch_sub(n)` covers `n` logical decrements).
    #[serde(default)]
    pub rc_rmws: u64,
    /// Fetches satisfied from another kernel's queue (successful takes of
    /// a sibling's entry; the stolen instance executes on the thief).
    pub steals: u64,
    /// Victim probes that found the victim empty — including a victim
    /// drained *between* the thief's length snapshot and its steal (the
    /// clean-miss path). High misses with low steals means thieves are
    /// scanning an idle machine.
    #[serde(default)]
    pub steal_misses: u64,
    /// Steal attempts that lost the `top` CAS to the victim's owner or a
    /// concurrent thief. Each race is one wasted CAS, not a lost entry —
    /// the entry went to the winner. High races mean thieves are piling
    /// onto the same victim (see `StealPolicy::RandomThenLongest`).
    #[serde(default)]
    pub steal_races: u64,
    /// Victim scans skipped by the adaptive backoff
    /// ([`StealBackoff`](crate::policy::StealBackoff)): fetch attempts on
    /// which a repeatedly-missing thief did not probe at all. High skips
    /// with zero steals is the *healthy* idle-machine signature — the old
    /// pathology was high `steal_misses` instead.
    #[serde(default)]
    pub steal_skips: u64,
    /// DDM blocks loaded.
    pub blocks_loaded: u64,
    /// Peak number of resident instances.
    pub max_resident: usize,
    /// Synchronization Memory contention events: weak-CAS retries on slot
    /// state transitions, plus ready-count RMWs that land on a slot whose
    /// previous decrement came from a *different* kernel — the software
    /// proxy for a coherence-line transfer of a hot sink slot. (The locked
    /// design counted `try_lock` misses here.)
    #[serde(default)]
    pub sm_contended: u64,
    /// Streaming epochs whose pass ran to completion (the epoch ledger's
    /// `completed` column). A one-shot run counts as one epoch.
    #[serde(default)]
    pub epochs: u64,
}

/// Per-kernel Synchronization Memory counters ("shards" for continuity
/// with the locked design — the lock-free table is one slab, but traffic
/// is still attributed to the owning kernel of each instance). Evenly
/// spread `rc_updates` with low `contended` means completions rarely
/// collided on the same slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Logical ready-count decrements applied to this kernel's instances.
    pub rc_updates: u64,
    /// Physical ready-count RMWs issued against this kernel's instances
    /// (`<= rc_updates` once batching combines decrements).
    #[serde(default)]
    pub rc_rmws: u64,
    /// Contention events on this kernel's instances: CAS retries on state
    /// transitions plus cross-kernel ready-count line transfers (the
    /// locked design counted blocking lock acquisitions here).
    pub contended: u64,
}

/// A resident instance still waiting on producer completions — one row of
/// the stall-forensics view exposed by [`TsuBackend::waiting_instances`].
/// Platforms embed these in their stall reports so a watchdog abort names
/// the stuck instances instead of discarding the Synchronization Memory
/// contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitingInstance {
    /// The instance whose ready count has not reached zero.
    pub instance: Instance,
    /// Producer completions still needed before it becomes ready.
    pub remaining: u32,
}

/// The operations every platform TSU supports.
///
/// The contract mirrors §3.3 of the paper: kernels *fetch* ready DThreads
/// and report *completions*; completions run the Post-Processing Phase and
/// surface newly-ready instances; Inlet/Outlet completions *load* and
/// unload DDM blocks. Streaming feeders *open* epochs to credit extra
/// passes through the graph and *retire* them to return the credits.
/// `ready` buffers are cleared by the callee, so callers can reuse one
/// scratch vector across calls.
pub trait TsuBackend {
    /// Load a DDM block: make its instances resident and append the
    /// initially-ready ones (ready count 0) to `ready`. Fails with
    /// [`CoreError::BlockTooLarge`] if the block exceeds the configured
    /// capacity.
    fn load_block(&mut self, block: BlockId, ready: &mut Vec<Instance>) -> Result<(), CoreError>;

    /// Ask for the next DThread on behalf of `kernel`. Fails with
    /// [`CoreError::NotResident`] if a queued instance turns out not to be
    /// resident (a scheduler protocol bug), or [`CoreError::SmPoisoned`]
    /// if a kernel death left the Synchronization Memory untrustworthy.
    fn fetch(&mut self, kernel: KernelId) -> Result<FetchResult, CoreError>;

    /// Record completion of `inst`, which was fetched under `epoch`: run
    /// the Post-Processing Phase and report the newly-ready instances in
    /// `ready` (cleared first). The backend also schedules them onto its
    /// own queues; `ready` lets device models inspect *who* became ready —
    /// e.g. to charge cross-shard update messages. The epoch token is the
    /// one delivered with the instance by [`fetch`](Self::fetch); a late
    /// completion whose token predates a re-armed slot fails with
    /// [`CoreError::StaleEpoch`] instead of corrupting the next pass.
    fn complete(
        &mut self,
        inst: Instance,
        epoch: Epoch,
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError>;

    /// Record a *batch* of application completions at once: the funnel
    /// flush path. Backends that override this combine the batch's
    /// ready-count decrements into one `fetch_sub(n)` per consumer slot;
    /// the default simply replays [`complete`](Self::complete) per
    /// instance, so every backend accepts a flush even before it learns
    /// to combine. `done` must hold only `App` instances (Inlet/Outlet
    /// completions drive block transitions and are never funneled), all
    /// fetched under the same `epoch` — a funnel never parks completions
    /// across an epoch boundary, because block transitions flush it.
    /// Newly-ready instances land in `ready` (cleared first).
    fn complete_batch(
        &mut self,
        done: &[Instance],
        epoch: Epoch,
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        ready.clear();
        let mut scratch = Vec::new();
        for &inst in done {
            self.complete(inst, epoch, &mut scratch)?;
            ready.append(&mut scratch);
        }
        Ok(())
    }

    /// Credit one more streaming pass through the program. If the current
    /// pass has already finished, the graph re-arms immediately and the
    /// newly-resident inlet lands in `ready` (cleared first) *and* on the
    /// backend's own queues; otherwise the credit is banked and the wrap
    /// happens when the running pass completes. Fails with
    /// [`CoreError::WindowExhausted`] when the configured credit window is
    /// full — retire a drained epoch first.
    fn open_epoch(&mut self, ready: &mut Vec<Instance>) -> Result<Epoch, CoreError>;

    /// Return the credit held by a completed epoch. Epochs retire
    /// oldest-first, exactly once: a premature or out-of-order retirement
    /// fails with [`CoreError::EpochNotDrained`], a duplicate with
    /// [`CoreError::StaleEpoch`].
    fn retire_epoch(&mut self, epoch: Epoch) -> Result<(), CoreError>;

    /// Snapshot of the operation counters accumulated so far.
    fn drain_stats(&mut self) -> TsuStats;

    /// Stall forensics: every resident instance whose ready count is still
    /// above zero, ordered thread-major, context-minor.
    fn waiting_instances(&self) -> Vec<WaitingInstance>;
}
