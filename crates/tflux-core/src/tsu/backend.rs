//! The backend contract every platform TSU implements, and the counter
//! types they all report.
//!
//! The portability claim of the paper is that *one* TSU semantics backs
//! three platforms. [`TsuBackend`] is that claim as a trait: the threaded
//! runtime's shared TSU, the simulated hardware TSU device and the Cell
//! machine all schedule through these five operations, so the
//! cross-backend equivalence suite can drive any of them interchangeably.

use crate::error::CoreError;
use crate::ids::{BlockId, Instance, KernelId};
use crate::policy::SchedulingPolicy;
use serde::{Deserialize, Serialize};

use super::queue::FetchResult;

/// Configuration of a TSU instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, Default)]
pub struct TsuConfig {
    /// Maximum instances resident at once (`0` = unlimited). A block whose
    /// residency exceeds this fails at load, mirroring the paper's rule that
    /// the block size is bounded by the TSU size.
    pub capacity: usize,
    /// Ready-thread selection policy.
    pub policy: SchedulingPolicy,
}

/// Counters a TSU keeps about its own operation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TsuStats {
    /// Successful fetches (a DThread was handed to a kernel).
    pub fetches: u64,
    /// Fetch attempts that found no ready DThread.
    pub waits: u64,
    /// DThread completions processed.
    pub completions: u64,
    /// Ready-count decrements performed during post-processing.
    pub rc_updates: u64,
    /// Fetches satisfied from another kernel's queue.
    pub steals: u64,
    /// DDM blocks loaded.
    pub blocks_loaded: u64,
    /// Peak number of resident instances.
    pub max_resident: usize,
    /// Synchronization Memory contention events: weak-CAS retries on slot
    /// state transitions (0 on the single-owner backends; the locked
    /// design counted `try_lock` misses here).
    #[serde(default)]
    pub sm_contended: u64,
}

/// Per-kernel Synchronization Memory counters ("shards" for continuity
/// with the locked design — the lock-free table is one slab, but traffic
/// is still attributed to the owning kernel of each instance). Evenly
/// spread `rc_updates` with low `contended` means completions rarely
/// collided on the same slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Ready-count decrements applied to this kernel's instances.
    pub rc_updates: u64,
    /// CAS retries on state transitions of this kernel's instances (the
    /// locked design counted blocking lock acquisitions here).
    pub contended: u64,
}

/// A resident instance still waiting on producer completions — one row of
/// the stall-forensics view exposed by [`TsuBackend::waiting_instances`].
/// Platforms embed these in their stall reports so a watchdog abort names
/// the stuck instances instead of discarding the Synchronization Memory
/// contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitingInstance {
    /// The instance whose ready count has not reached zero.
    pub instance: Instance,
    /// Producer completions still needed before it becomes ready.
    pub remaining: u32,
}

/// The operations every platform TSU supports.
///
/// The contract mirrors §3.3 of the paper: kernels *fetch* ready DThreads
/// and report *completions*; completions run the Post-Processing Phase and
/// surface newly-ready instances; Inlet/Outlet completions *load* and
/// unload DDM blocks. `ready` buffers are cleared by the callee, so callers
/// can reuse one scratch vector across calls.
pub trait TsuBackend {
    /// Load a DDM block: make its instances resident and append the
    /// initially-ready ones (ready count 0) to `ready`. Fails with
    /// [`CoreError::BlockTooLarge`] if the block exceeds the configured
    /// capacity.
    fn load_block(&mut self, block: BlockId, ready: &mut Vec<Instance>) -> Result<(), CoreError>;

    /// Ask for the next DThread on behalf of `kernel`. Fails with
    /// [`CoreError::NotResident`] if a queued instance turns out not to be
    /// resident (a scheduler protocol bug), or [`CoreError::SmPoisoned`]
    /// if a kernel death left the Synchronization Memory untrustworthy.
    fn fetch(&mut self, kernel: KernelId) -> Result<FetchResult, CoreError>;

    /// Record completion of `inst`: run the Post-Processing Phase and
    /// report the newly-ready instances in `ready` (cleared first). The
    /// backend also schedules them onto its own queues; `ready` lets device
    /// models inspect *who* became ready — e.g. to charge cross-shard
    /// update messages.
    fn complete(&mut self, inst: Instance, ready: &mut Vec<Instance>) -> Result<(), CoreError>;

    /// Snapshot of the operation counters accumulated so far.
    fn drain_stats(&mut self) -> TsuStats;

    /// Stall forensics: every resident instance whose ready count is still
    /// above zero, ordered thread-major, context-minor.
    fn waiting_instances(&self) -> Vec<WaitingInstance>;
}
