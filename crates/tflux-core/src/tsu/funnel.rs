//! The per-kernel completion funnel: local accumulation of App
//! completions, flushed in batches through
//! [`TsuBackend::complete_batch`].
//!
//! A `Reduction` arc sends every producer's ready-count decrement at the
//! *same* sink slot; with K kernels completing producers concurrently
//! that slot's cache line ping-pongs K ways. The funnel is the classic
//! combining cure: each kernel parks its completions here (keyed by
//! `(consumer thread, context)` once combined by the Synchronization
//! Memory) and hands them over as one batch, so the sink sees one
//! `fetch_sub(n)` per flush instead of n separate RMWs.
//!
//! The funnel itself is deliberately dumb — a bounded pending list and a
//! policy. All protocol knowledge (state transitions, combining, the n→0
//! publication rule) lives behind [`TsuBackend::complete_batch`], so the
//! same funnel fronts the threaded runtime, the simulated hardware TSU
//! and the Cell machine.

use crate::error::CoreError;
use crate::ids::{Epoch, Instance};

use super::backend::{FlushPolicy, TsuBackend};

/// Per-kernel accumulator of App completions awaiting a batched flush.
///
/// Under [`FlushPolicy::Direct`] the funnel never accumulates:
/// [`push`](Self::push) reports every completion as an immediate flush of
/// one. Under [`FlushPolicy::Batch`] completions park until the batch
/// size is reached — and the *kernel* must also flush at any point where
/// it might block or give up the CPU (a fetch that returns `Wait`, a
/// block transition, loop exit), or the deferred decrements would
/// deadlock the very consumers the kernel is waiting on.
///
/// A batch carries one epoch token for all its completions. That is an
/// invariant, not a restriction: block transitions (and therefore epoch
/// wraps, which ride the final outlet completion) flush every funnel
/// before the next pass dispatches, so a kernel can never park
/// completions from two different epochs.
#[derive(Debug)]
pub struct CompletionFunnel {
    pending: Vec<Instance>,
    /// Epoch of every parked completion (set by the first push of a
    /// batch).
    epoch: Epoch,
    /// Completions per automatic flush; 1 on the direct path.
    batch: usize,
}

impl CompletionFunnel {
    /// A funnel obeying `policy`.
    pub fn new(policy: FlushPolicy) -> Self {
        let batch = policy.batch_size().unwrap_or(1);
        CompletionFunnel {
            pending: Vec::with_capacity(batch),
            epoch: Epoch(0),
            batch,
        }
    }

    /// Whether this funnel actually batches (false under
    /// [`FlushPolicy::Direct`]).
    pub fn batching(&self) -> bool {
        self.batch > 1
    }

    /// Completions currently parked.
    pub fn pending(&self) -> &[Instance] {
        &self.pending
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Park a completion fetched under `epoch`. Returns `true` when the
    /// batch is full and the caller must [`flush`](Self::flush) now. The
    /// first push of a batch fixes the batch's epoch; mixing epochs in
    /// one batch is a kernel protocol bug (block transitions flush before
    /// any epoch wrap, so it cannot happen in a well-behaved kernel).
    #[must_use]
    pub fn push(&mut self, inst: Instance, epoch: Epoch) -> bool {
        if self.pending.is_empty() {
            self.epoch = epoch;
        } else {
            debug_assert_eq!(
                self.epoch, epoch,
                "completion funnel batch spans an epoch boundary"
            );
        }
        self.pending.push(inst);
        self.pending.len() >= self.batch
    }

    /// Hand everything parked to `backend` as one batch; newly-ready
    /// instances land in `ready` (cleared first; cleared even when the
    /// funnel is empty, so callers can rely on it). On error the funnel
    /// is left empty — the backend has poisoned itself and replaying the
    /// batch would only fail again.
    pub fn flush<B: TsuBackend>(
        &mut self,
        backend: &mut B,
        ready: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        if self.pending.is_empty() {
            ready.clear();
            return Ok(());
        }
        let result = backend.complete_batch(&self.pending, self.epoch, ready);
        self.pending.clear();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Context, KernelId, ThreadId};
    use crate::mapping::ArcMapping;
    use crate::program::ProgramBuilder;
    use crate::thread::ThreadSpec;
    use crate::tsu::{CoreTsu, FetchResult, TsuConfig};

    fn wide_reduction(arity: u32) -> crate::program::DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let work = b.thread(blk, ThreadSpec::new("w", arity));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn direct_policy_flushes_every_push() {
        let mut f = CompletionFunnel::new(FlushPolicy::Direct);
        assert!(!f.batching());
        assert!(f.push(Instance::new(ThreadId(0), Context(0)), Epoch(0)));
    }

    #[test]
    fn batch_policy_fills_before_demanding_a_flush() {
        let mut f = CompletionFunnel::new(FlushPolicy::Batch { size: 3 });
        assert!(f.batching());
        assert!(!f.push(Instance::new(ThreadId(0), Context(0)), Epoch(0)));
        assert!(!f.push(Instance::new(ThreadId(0), Context(1)), Epoch(0)));
        assert!(f.push(Instance::new(ThreadId(0), Context(2)), Epoch(0)));
        assert_eq!(f.pending().len(), 3);
    }

    #[test]
    fn zero_batch_size_is_clamped_to_direct() {
        let mut f = CompletionFunnel::new(FlushPolicy::Batch { size: 0 });
        assert!(!f.batching());
        assert!(f.push(Instance::new(ThreadId(0), Context(0)), Epoch(0)));
    }

    #[test]
    fn flush_drives_a_backend_and_empties_the_funnel() {
        let p = wide_reduction(4);
        let mut tsu = CoreTsu::new(&p, 1, TsuConfig::default());
        let mut f = CompletionFunnel::new(FlushPolicy::Batch { size: 8 });
        let mut ready = Vec::new();
        // run the inlet directly, park every work completion
        let FetchResult::Thread(inlet, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!("inlet not ready");
        };
        tsu.complete_queued(inlet, ep, &mut ready).unwrap();
        for _ in 0..4 {
            let FetchResult::Thread(i, ep) = tsu.fetch_ready(KernelId(0)).unwrap() else {
                panic!("work not ready");
            };
            let _ = f.push(i, ep);
        }
        assert_eq!(f.pending().len(), 4);
        f.flush(&mut tsu, &mut ready).unwrap();
        assert!(f.is_empty());
        // the flush published the sink onto the TSU's queues
        let FetchResult::Thread(sink, _) = tsu.fetch_ready(KernelId(0)).unwrap() else {
            panic!("sink not ready after flush");
        };
        assert_eq!(sink.thread, ThreadId(1));
        // flushing an empty funnel is a no-op that still clears `ready`
        ready.push(sink);
        f.flush(&mut tsu, &mut ready).unwrap();
        assert!(ready.is_empty());
    }
}
