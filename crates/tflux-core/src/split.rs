//! Automatic DDM-block splitting.
//!
//! §2 of the paper: "To allow programs with arbitrarily large
//! synchronization graphs, without requiring equally large TSU, DDM
//! programs can be split into DDM Blocks", whose maximum size "is defined
//! by the size of the TSU". This module performs that split mechanically:
//! given a program whose blocks exceed a TSU capacity, it re-partitions
//! each oversized block into a sequence of capacity-respecting blocks in
//! topological order.
//!
//! Correctness argument: block `k+1`'s inlet only runs after block `k`'s
//! outlet, i.e. after *every* instance of block `k` completed. Any arc
//! whose producer lands in an earlier block than its consumer is therefore
//! subsumed by the block ordering and can be dropped; arcs within one new
//! block are kept. The resulting program admits a subset of the original's
//! schedules (it is strictly more synchronized), so every producer→consumer
//! constraint of the original still holds.

use crate::error::CoreError;
use crate::ids::ThreadId;
use crate::mapping::ArcMapping;
use crate::program::{DdmProgram, ProgramBuilder};
use crate::thread::ThreadKind;
use std::collections::HashMap;

/// Split `program`'s oversized blocks so no block needs more than
/// `capacity` TSU entries (application instances + the outlet). Blocks that
/// already fit are kept as-is. Returns the new program plus the mapping
/// from old to new [`ThreadId`]s (splitting renumbers threads).
///
/// A single thread whose own arity exceeds `capacity - 1` cannot be split
/// (instances of one DThread share a block); that case returns
/// [`CoreError::BlockTooLarge`].
pub fn split_for_capacity(
    program: &DdmProgram,
    capacity: usize,
) -> Result<(DdmProgram, HashMap<ThreadId, ThreadId>), CoreError> {
    assert!(capacity > 1, "capacity must exceed the outlet entry");
    let mut b = ProgramBuilder::new();
    let mut idmap: HashMap<ThreadId, ThreadId> = HashMap::new();

    for block in program.blocks() {
        // topological order of the block's app threads
        let order = topo_app_order(program, &block.threads);

        // greedily pack consecutive threads into capacity-sized groups
        let mut groups: Vec<Vec<ThreadId>> = Vec::new();
        let mut cur: Vec<ThreadId> = Vec::new();
        let mut cur_size = 1usize; // outlet entry
        for t in order {
            let arity = program.thread(t).arity as usize;
            if arity + 1 > capacity {
                return Err(CoreError::BlockTooLarge {
                    block: block.id,
                    instances: arity + 1,
                    capacity,
                });
            }
            if cur_size + arity > capacity && !cur.is_empty() {
                groups.push(std::mem::take(&mut cur));
                cur_size = 1;
            }
            cur_size += arity;
            cur.push(t);
        }
        if !cur.is_empty() {
            groups.push(cur);
        }

        // materialize the groups as blocks
        for group in &groups {
            let blk = b.block();
            for &t in group {
                let spec = program.thread(t).clone();
                idmap.insert(t, b.thread(blk, spec));
            }
            // keep arcs internal to this group
            for &t in group {
                for arc in program.consumers(t) {
                    if program.thread(arc.consumer).kind != ThreadKind::App {
                        continue; // outlet arcs are re-created by build()
                    }
                    if group.contains(&arc.consumer) {
                        b.arc(idmap[&t], idmap[&arc.consumer], arc.mapping)?;
                    }
                    // cross-group arcs are subsumed by block ordering
                }
            }
        }
    }

    Ok((b.build()?, idmap))
}

/// Topological order over a block's application threads.
fn topo_app_order(program: &DdmProgram, threads: &[ThreadId]) -> Vec<ThreadId> {
    let mut indeg: HashMap<ThreadId, usize> = threads.iter().map(|&t| (t, 0)).collect();
    for &t in threads {
        for arc in program.consumers(t) {
            if let Some(d) = indeg.get_mut(&arc.consumer) {
                *d += 1;
            }
        }
    }
    // lowest-id-first min-heap for deterministic output
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut ready: BinaryHeap<Reverse<ThreadId>> = threads
        .iter()
        .copied()
        .filter(|t| indeg[t] == 0)
        .map(Reverse)
        .collect();
    let mut order = Vec::with_capacity(threads.len());
    while let Some(Reverse(t)) = ready.pop() {
        order.push(t);
        for arc in program.consumers(t) {
            if let Some(d) = indeg.get_mut(&arc.consumer) {
                *d -= 1;
                if *d == 0 {
                    ready.push(Reverse(arc.consumer));
                }
            }
        }
    }
    debug_assert_eq!(order.len(), threads.len());
    order
}

/// Check that no mapping information is lost by a split: every original
/// producer→consumer *instance* constraint is still enforced, either by an
/// arc or by block ordering. Used by tests.
pub fn split_preserves_ordering(
    original: &DdmProgram,
    split: &DdmProgram,
    idmap: &HashMap<ThreadId, ThreadId>,
) -> bool {
    for t in 0..original.threads().len() {
        let t = ThreadId(t as u32);
        if original.thread(t).kind != ThreadKind::App {
            continue;
        }
        for arc in original.consumers(t) {
            if original.thread(arc.consumer).kind != ThreadKind::App {
                continue;
            }
            let (nt, nc) = (idmap[&t], idmap[&arc.consumer]);
            let same_block = split.block_of(nt) == split.block_of(nc);
            let ordered = split.block_of(nt) < split.block_of(nc);
            let has_arc = split
                .consumers(nt)
                .iter()
                .any(|a| a.consumer == nc && arc_eq(a.mapping, arc.mapping));
            if !(ordered || (same_block && has_arc)) {
                return false;
            }
        }
    }
    true
}

fn arc_eq(a: ArcMapping, b: ArcMapping) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::tsu::drain_sequential;

    fn layered(arities: &[u32]) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let mut prev: Option<ThreadId> = None;
        for (i, &a) in arities.iter().enumerate() {
            let t = b.thread(blk, ThreadSpec::new(format!("l{i}"), a));
            if let Some(p) = prev {
                b.arc(p, t, ArcMapping::All).unwrap();
            }
            prev = Some(t);
        }
        b.build().unwrap()
    }

    #[test]
    fn fitting_program_is_unchanged_in_shape() {
        let p = layered(&[4, 4]);
        let (q, idmap) = split_for_capacity(&p, 64).unwrap();
        assert_eq!(q.blocks().len(), 1);
        assert_eq!(q.total_instances(), p.total_instances());
        assert!(split_preserves_ordering(&p, &q, &idmap));
    }

    #[test]
    fn oversized_block_splits_into_capacity_chunks() {
        let p = layered(&[8, 8, 8, 8]); // 32 app instances + outlet
        let (q, idmap) = split_for_capacity(&p, 10).unwrap();
        assert!(q.blocks().len() >= 4, "{} blocks", q.blocks().len());
        for blk in q.blocks() {
            assert!(q.block_instances(blk.id) <= 10);
        }
        assert!(split_preserves_ordering(&p, &q, &idmap));
        // app instance count unchanged
        let apps = |p: &DdmProgram| {
            p.threads()
                .iter()
                .filter(|t| t.kind == ThreadKind::App)
                .map(|t| t.arity as usize)
                .sum::<usize>()
        };
        assert_eq!(apps(&p), apps(&q));
    }

    #[test]
    fn split_program_executes_under_the_small_tsu() {
        let p = layered(&[8, 8, 8]);
        // fails unsplit...
        let mut tsu = CoreTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 12,
                ..Default::default()
            },
        );
        let (inlet, ep) = match tsu.fetch_ready(KernelId(0)).unwrap() {
            FetchResult::Thread(i, ep) => (i, ep),
            other => panic!("{other:?}"),
        };
        assert!(tsu.complete_queued(inlet, ep, &mut Vec::new()).is_err());

        // ...and drains completely after splitting
        let (q, _) = split_for_capacity(&p, 12).unwrap();
        let mut tsu = CoreTsu::new(
            &q,
            2,
            TsuConfig {
                capacity: 12,
                ..Default::default()
            },
        );
        let order = drain_sequential(&mut tsu);
        assert_eq!(order.len(), q.total_instances());
    }

    #[test]
    fn execution_order_constraints_survive_the_split() {
        let p = layered(&[6, 6, 6]);
        let (q, idmap) = split_for_capacity(&p, 8).unwrap();
        let mut tsu = CoreTsu::new(&q, 3, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let pos = |i: &Instance| order.iter().position(|x| x == i).unwrap();
        // layer 0 before layer 1 before layer 2, instance-wise
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            let (ta, tb) = (idmap[&ThreadId(a)], idmap[&ThreadId(b)]);
            for ca in 0..q.thread(ta).arity {
                for cb in 0..q.thread(tb).arity {
                    assert!(
                        pos(&Instance::new(ta, Context(ca))) < pos(&Instance::new(tb, Context(cb)))
                    );
                }
            }
        }
    }

    #[test]
    fn unsplittable_thread_is_an_error() {
        let p = layered(&[32]);
        assert!(matches!(
            split_for_capacity(&p, 16),
            Err(CoreError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn multi_block_input_splits_each_block_independently() {
        let mut b = ProgramBuilder::new();
        for _ in 0..2 {
            let blk = b.block();
            b.thread(blk, ThreadSpec::new("a", 6));
            b.thread(blk, ThreadSpec::new("b", 6));
        }
        let p = b.build().unwrap();
        let (q, _) = split_for_capacity(&p, 8).unwrap();
        assert_eq!(q.blocks().len(), 4);
    }
}
