//! DThread templates: the nodes of the synchronization graph.

use crate::ids::{Context, KernelId};
use serde::{Deserialize, Serialize};

/// The role a DThread plays in its DDM block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadKind {
    /// An ordinary application DThread.
    App,
    /// The block's *Inlet*: loads the block's metadata into the TSU.
    Inlet,
    /// The block's *Outlet*: frees TSU resources and chains the next block
    /// (or terminates the kernels if this is the last block).
    Outlet,
}

/// How instances of a DThread are assigned to kernels.
///
/// This assignment *is* the Thread-to-Kernel Table (TKT) of the paper's
/// Thread-Indexing technique: the TSU emulator uses it to locate, without
/// searching, the Synchronization Memory holding an instance's ready count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Affinity {
    /// Contiguous ranges of contexts per kernel (`ctx * n / arity`).
    ///
    /// The default: consecutive contexts usually touch adjacent data, so
    /// range partitioning maximizes spatial locality, the TSU scheduling
    /// goal named in §3.1 of the paper.
    Range,
    /// Contexts dealt round-robin across kernels (`ctx % n`).
    RoundRobin,
    /// All instances pinned to one kernel.
    Fixed(KernelId),
}

impl Affinity {
    /// The kernel that owns `ctx` of a thread with `arity` instances, on a
    /// machine with `kernels` kernels.
    #[inline]
    pub fn kernel_of(&self, ctx: Context, arity: u32, kernels: u32) -> KernelId {
        debug_assert!(kernels > 0);
        match *self {
            Affinity::Range => {
                // Equal-sized contiguous chunks (last chunk may be short).
                let chunk = arity.div_ceil(kernels);
                KernelId((ctx.0 / chunk.max(1)).min(kernels - 1))
            }
            Affinity::RoundRobin => KernelId(ctx.0 % kernels),
            Affinity::Fixed(k) => KernelId(k.0.min(kernels - 1)),
        }
    }
}

/// Static description of a DThread template.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// Human-readable name (used in traces, DOT dumps and error messages).
    pub name: String,
    /// Number of instances (loop iterations); scalar threads have arity 1.
    pub arity: u32,
    /// Kernel assignment policy for the instances.
    pub affinity: Affinity,
    /// Role of the thread within its block.
    pub kind: ThreadKind,
}

impl ThreadSpec {
    /// A loop DThread with `arity` instances and range affinity.
    pub fn new(name: impl Into<String>, arity: u32) -> Self {
        ThreadSpec {
            name: name.into(),
            arity,
            affinity: Affinity::Range,
            kind: ThreadKind::App,
        }
    }

    /// A scalar (single-instance) DThread.
    pub fn scalar(name: impl Into<String>) -> Self {
        ThreadSpec::new(name, 1)
    }

    /// Override the kernel-assignment policy.
    pub fn with_affinity(mut self, affinity: Affinity) -> Self {
        self.affinity = affinity;
        self
    }

    /// Mark the thread's role (used internally for inlet/outlet threads).
    pub(crate) fn with_kind(mut self, kind: ThreadKind) -> Self {
        self.kind = kind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_affinity_partitions_contiguously() {
        let a = Affinity::Range;
        // 10 contexts over 3 kernels: chunks of 4 -> [0..4), [4..8), [8..10)
        let owners: Vec<u32> = (0..10).map(|c| a.kernel_of(Context(c), 10, 3).0).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn range_affinity_never_exceeds_kernel_count() {
        for arity in 1..40u32 {
            for kernels in 1..9u32 {
                for c in 0..arity {
                    let k = Affinity::Range.kernel_of(Context(c), arity, kernels);
                    assert!(k.0 < kernels, "arity={arity} kernels={kernels} ctx={c}");
                }
            }
        }
    }

    #[test]
    fn round_robin_deals_evenly() {
        let a = Affinity::RoundRobin;
        let owners: Vec<u32> = (0..6).map(|c| a.kernel_of(Context(c), 6, 3).0).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn fixed_clamps_to_machine() {
        let a = Affinity::Fixed(KernelId(7));
        assert_eq!(a.kernel_of(Context(0), 1, 4).0, 3);
    }

    #[test]
    fn spec_builders() {
        let t = ThreadSpec::scalar("s");
        assert_eq!(t.arity, 1);
        assert_eq!(t.kind, ThreadKind::App);
        let t = ThreadSpec::new("l", 8).with_affinity(Affinity::RoundRobin);
        assert_eq!(t.affinity, Affinity::RoundRobin);
    }
}
