//! # tflux-core — the Data-Driven Multithreading model
//!
//! This crate implements the target-independent heart of the TFlux platform
//! (Stavrou et al., *TFlux: A Portable Platform for Data-Driven
//! Multithreading on Commodity Multicore Systems*, ICPP 2008):
//!
//! * **DThreads** — non-overlapping sections of code scheduled in a
//!   data-driven manner, identified by a [`ThreadId`] and, for loop threads,
//!   a [`Context`] instance index.
//! * **Synchronization graphs** — producer/consumer arcs between DThreads
//!   with instance [`mapping::ArcMapping`]s (one-to-one, broadcast,
//!   reduction, merge trees, …).
//! * **DDM blocks** — subsets of the program small enough to fit in the TSU,
//!   chained by implicit *Inlet* and *Outlet* DThreads.
//! * **The TSU units** ([`tsu`]) — the paper's §3.3 decomposition:
//!   [`tsu::GraphMemory`] (immutable program view), [`tsu::SyncMemory`]
//!   (sharded ready counts + post-processing) and per-kernel
//!   [`tsu::StealDeque`]s (Chase-Lev work-stealing queues), composed into
//!   [`tsu::CoreTsu`] for single-owner drivers. All three platforms (the software TSU of `tflux-runtime`,
//!   the simulated hardware TSU of `tflux-sim`, the Cell model of
//!   `tflux-cell`) drive the same units through the [`tsu::TsuBackend`]
//!   trait, which is what makes the platform implementations directly
//!   comparable.
//!
//! The crate is deliberately free of threads, I/O and unsafe code: it is the
//! model, not a platform. Platforms live in `tflux-runtime`, `tflux-sim`
//! and `tflux-cell`.
//!
//! ## Quick tour
//!
//! ```
//! use tflux_core::prelude::*;
//!
//! // A two-block program: block 0 forks 4 workers off a source thread and
//! // reduces them into a sink; block 1 holds a final scalar thread.
//! let mut b = ProgramBuilder::new();
//! let blk0 = b.block();
//! let src = b.thread(blk0, ThreadSpec::scalar("src"));
//! let work = b.thread(blk0, ThreadSpec::new("work", 4));
//! let sink = b.thread(blk0, ThreadSpec::scalar("sink"));
//! b.arc(src, work, ArcMapping::Broadcast).unwrap();
//! b.arc(work, sink, ArcMapping::Reduction).unwrap();
//! let blk1 = b.block();
//! b.thread(blk1, ThreadSpec::scalar("done"));
//! let program = b.build().unwrap();
//!
//! // Drive the TSU units to completion on 2 virtual kernels.
//! let mut tsu = CoreTsu::new(&program, 2, TsuConfig::default());
//! let order = tflux_core::tsu::drain_sequential(&mut tsu);
//! assert_eq!(order.len(), program.total_instances());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod ctx2d;
pub mod error;
pub mod graph;
pub mod ids;
pub mod mapping;
pub mod policy;
pub mod program;
pub mod split;
pub mod thread;
pub mod tsu;
pub mod unroll;

pub use block::DdmBlock;
pub use error::CoreError;
pub use ids::{BlockId, Context, Instance, KernelId, ProgramId, ThreadId};
pub use mapping::ArcMapping;
pub use policy::{SchedulingPolicy, StealBackoff, StealPolicy};
pub use program::{DdmProgram, ProgramBuilder};
pub use thread::{Affinity, ThreadKind, ThreadSpec};
pub use tsu::{
    CompletionFunnel, CoreTsu, FetchResult, FlushPolicy, GraphMemory, MpmcRing, ProgramHandle,
    ServiceRotor, ShardStats, Steal, StealDeque, SyncMemory, TsuBackend, TsuConfig, TsuStats,
    WaitingInstance,
};

/// Convenient glob import for users of the model.
pub mod prelude {
    pub use crate::block::DdmBlock;
    pub use crate::error::CoreError;
    pub use crate::ids::{BlockId, Context, Instance, KernelId, ProgramId, ThreadId};
    pub use crate::mapping::ArcMapping;
    pub use crate::policy::{SchedulingPolicy, StealBackoff, StealPolicy};
    pub use crate::program::{DdmProgram, ProgramBuilder};
    pub use crate::thread::{Affinity, ThreadKind, ThreadSpec};
    pub use crate::tsu::{
        CompletionFunnel, CoreTsu, FetchResult, FlushPolicy, ProgramHandle, TsuBackend, TsuConfig,
    };
}
