//! DDM programs and the builder that validates them.

use crate::block::DdmBlock;
use crate::error::CoreError;
use crate::ids::{BlockId, Context, Instance, KernelId, ThreadId};
use crate::mapping::ArcMapping;
use crate::thread::{Affinity, ThreadKind, ThreadSpec};
use serde::{Deserialize, Serialize};

/// One arc of the synchronization graph.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Arc {
    /// The producer DThread.
    pub producer: ThreadId,
    /// The consumer DThread.
    pub consumer: ThreadId,
    /// Instance mapping across the arc.
    pub mapping: ArcMapping,
}

/// A complete, validated DDM program: synchronization graph + block split.
///
/// Built with [`ProgramBuilder`]; immutable afterwards. The program holds
/// only *metadata* — thread bodies are supplied by the platform executing it
/// (`tflux-runtime`, `tflux-sim`, `tflux-cell`), keyed by [`ThreadId`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DdmProgram {
    threads: Vec<ThreadSpec>,
    blocks: Vec<DdmBlock>,
    block_of: Vec<BlockId>,
    arcs_out: Vec<Vec<Arc>>,
    arcs_in: Vec<Vec<Arc>>,
    initial_rc: Vec<Vec<u32>>,
}

impl DdmProgram {
    /// The thread templates, indexed by [`ThreadId`].
    pub fn threads(&self) -> &[ThreadSpec] {
        &self.threads
    }

    /// The spec of one thread.
    pub fn thread(&self, t: ThreadId) -> &ThreadSpec {
        &self.threads[t.idx()]
    }

    /// The DDM blocks in execution order.
    pub fn blocks(&self) -> &[DdmBlock] {
        &self.blocks
    }

    /// The block a thread belongs to.
    pub fn block_of(&self, t: ThreadId) -> BlockId {
        self.block_of[t.idx()]
    }

    /// Outgoing arcs of a thread (its consumer list).
    pub fn consumers(&self, t: ThreadId) -> &[Arc] {
        &self.arcs_out[t.idx()]
    }

    /// Incoming arcs of a thread (its producer list).
    pub fn producers(&self, t: ThreadId) -> &[Arc] {
        &self.arcs_in[t.idx()]
    }

    /// Initial ready count of one instance.
    pub fn initial_rc(&self, i: Instance) -> u32 {
        self.initial_rc[i.thread.idx()][i.context.idx()]
    }

    /// Initial ready counts for all contexts of a thread.
    pub fn initial_rcs(&self, t: ThreadId) -> &[u32] {
        &self.initial_rc[t.idx()]
    }

    /// Total schedulable instances, inlets and outlets included.
    pub fn total_instances(&self) -> usize {
        self.threads.iter().map(|t| t.arity as usize).sum()
    }

    /// Number of instances a block occupies in the TSU while loaded
    /// (application threads plus the outlet; the inlet entry is consumed
    /// before the block is resident).
    pub fn block_instances(&self, b: BlockId) -> usize {
        let blk = &self.blocks[b.idx()];
        blk.threads
            .iter()
            .map(|t| self.threads[t.idx()].arity as usize)
            .sum::<usize>()
            + 1
    }

    /// The largest TSU residency any block requires.
    pub fn max_block_instances(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| self.block_instances(b.id))
            .max()
            .unwrap_or(0)
    }

    /// The kernel that owns an instance (the Thread-to-Kernel Table lookup).
    pub fn kernel_of(&self, i: Instance, kernels: u32) -> KernelId {
        let spec = &self.threads[i.thread.idx()];
        spec.affinity.kernel_of(i.context, spec.arity, kernels)
    }

    /// Iterate over every instance of a thread.
    pub fn instances_of(&self, t: ThreadId) -> impl Iterator<Item = Instance> + '_ {
        (0..self.threads[t.idx()].arity).map(move |c| Instance::new(t, Context(c)))
    }
}

/// Builder for [`DdmProgram`]s.
///
/// Usage: create blocks with [`block`](Self::block), add threads to them
/// with [`thread`](Self::thread), connect threads with
/// [`arc`](Self::arc), then [`build`](Self::build). `build` wires each
/// block's inlet/outlet threads, computes per-instance initial ready counts
/// from the arcs, and validates the whole program (acyclic blocks, no
/// cross-block arcs, arity-compatible mappings).
#[derive(Default)]
pub struct ProgramBuilder {
    threads: Vec<ThreadSpec>,
    block_of: Vec<BlockId>,
    block_threads: Vec<Vec<ThreadId>>,
    arcs: Vec<Arc>,
}

impl ProgramBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a new DDM block; returns its id. Blocks execute in id order.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId(self.block_threads.len() as u32);
        self.block_threads.push(Vec::new());
        id
    }

    /// Add a DThread template to a block; returns its id.
    pub fn thread(&mut self, block: BlockId, spec: ThreadSpec) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(spec);
        self.block_of.push(block);
        self.block_threads[block.idx()].push(id);
        id
    }

    /// Add a producer→consumer arc with an instance mapping.
    pub fn arc(
        &mut self,
        producer: ThreadId,
        consumer: ThreadId,
        mapping: ArcMapping,
    ) -> Result<(), CoreError> {
        let n = self.threads.len() as u32;
        if producer.0 >= n {
            return Err(CoreError::UnknownThread(producer));
        }
        if consumer.0 >= n {
            return Err(CoreError::UnknownThread(consumer));
        }
        if self.block_of[producer.idx()] != self.block_of[consumer.idx()] {
            return Err(CoreError::CrossBlockArc { producer, consumer });
        }
        if self
            .arcs
            .iter()
            .any(|a| a.producer == producer && a.consumer == consumer)
        {
            return Err(CoreError::DuplicateArc { producer, consumer });
        }
        mapping.validate(
            producer,
            consumer,
            self.threads[producer.idx()].arity,
            self.threads[consumer.idx()].arity,
        )?;
        self.arcs.push(Arc {
            producer,
            consumer,
            mapping,
        });
        Ok(())
    }

    /// Validate and finalize the program.
    pub fn build(mut self) -> Result<DdmProgram, CoreError> {
        if self.block_threads.is_empty() {
            return Err(CoreError::EmptyProgram);
        }
        for (i, spec) in self.threads.iter().enumerate() {
            if spec.arity == 0 {
                return Err(CoreError::ZeroArity(ThreadId(i as u32)));
            }
        }
        for (b, threads) in self.block_threads.iter().enumerate() {
            if threads.is_empty() {
                return Err(CoreError::EmptyBlock(BlockId(b as u32)));
            }
        }
        self.check_acyclic()?;

        // Wire inlet/outlet per block. The outlet consumes every application
        // thread of its block (an All arc), so its ready count equals the
        // block's total application-instance count, exactly matching the
        // paper's "when all the DThreads of a DDM Block complete, the Outlet
        // DThread is executed".
        let mut blocks = Vec::with_capacity(self.block_threads.len());
        let block_threads = std::mem::take(&mut self.block_threads);
        for (bi, app_threads) in block_threads.into_iter().enumerate() {
            let block = BlockId(bi as u32);
            let inlet = ThreadId(self.threads.len() as u32);
            self.threads.push(
                ThreadSpec::scalar(format!("inlet.B{bi}"))
                    .with_affinity(Affinity::Fixed(KernelId(0)))
                    .with_kind(ThreadKind::Inlet),
            );
            self.block_of.push(block);
            let outlet = ThreadId(self.threads.len() as u32);
            self.threads.push(
                ThreadSpec::scalar(format!("outlet.B{bi}"))
                    .with_affinity(Affinity::Fixed(KernelId(0)))
                    .with_kind(ThreadKind::Outlet),
            );
            self.block_of.push(block);
            for &t in &app_threads {
                self.arcs.push(Arc {
                    producer: t,
                    consumer: outlet,
                    mapping: ArcMapping::All,
                });
            }
            blocks.push(DdmBlock {
                id: block,
                threads: app_threads,
                inlet,
                outlet,
            });
        }

        // Index arcs and compute initial ready counts.
        let n = self.threads.len();
        let mut arcs_out = vec![Vec::new(); n];
        let mut arcs_in = vec![Vec::new(); n];
        for arc in &self.arcs {
            arcs_out[arc.producer.idx()].push(*arc);
            arcs_in[arc.consumer.idx()].push(*arc);
        }
        let mut initial_rc = Vec::with_capacity(n);
        for (ti, spec) in self.threads.iter().enumerate() {
            let mut rcs = vec![0u32; spec.arity as usize];
            for arc in &arcs_in[ti] {
                let pa = self.threads[arc.producer.idx()].arity;
                for (c, rc) in rcs.iter_mut().enumerate() {
                    *rc += arc.mapping.fan_in(Context(c as u32), pa, spec.arity);
                }
            }
            initial_rc.push(rcs);
        }

        Ok(DdmProgram {
            threads: self.threads,
            blocks,
            block_of: self.block_of,
            arcs_out,
            arcs_in,
            initial_rc,
        })
    }

    /// Kahn's algorithm per block over the template graph.
    fn check_acyclic(&self) -> Result<(), CoreError> {
        let n = self.threads.len();
        let mut indeg = vec![0u32; n];
        let mut out = vec![Vec::new(); n];
        for a in &self.arcs {
            if a.producer == a.consumer {
                return Err(CoreError::CyclicBlock(self.block_of[a.producer.idx()]));
            }
            indeg[a.consumer.idx()] += 1;
            out[a.producer.idx()].push(a.consumer);
        }
        let mut queue: Vec<ThreadId> = (0..n as u32)
            .map(ThreadId)
            .filter(|t| indeg[t.idx()] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(t) = queue.pop() {
            seen += 1;
            for &c in &out[t.idx()] {
                indeg[c.idx()] -= 1;
                if indeg[c.idx()] == 0 {
                    queue.push(c);
                }
            }
        }
        if seen != n {
            // Find a block containing a cycle member for the error message.
            let culprit = (0..n).find(|&i| indeg[i] > 0).unwrap();
            return Err(CoreError::CyclicBlock(self.block_of[culprit]));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DdmProgram {
        // src -> {a, b} -> sink, all scalar
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let a = b.thread(blk, ThreadSpec::scalar("a"));
        let bb = b.thread(blk, ThreadSpec::scalar("b"));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, a, ArcMapping::Scalar).unwrap();
        b.arc(src, bb, ArcMapping::Scalar).unwrap();
        b.arc(a, sink, ArcMapping::Scalar).unwrap();
        b.arc(bb, sink, ArcMapping::Scalar).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_ready_counts() {
        let p = diamond();
        assert_eq!(p.initial_rc(Instance::scalar(ThreadId(0))), 0); // src
        assert_eq!(p.initial_rc(Instance::scalar(ThreadId(1))), 1); // a
        assert_eq!(p.initial_rc(Instance::scalar(ThreadId(3))), 2); // sink
                                                                    // outlet waits on all 4 app instances
        let outlet = p.blocks()[0].outlet;
        assert_eq!(p.initial_rc(Instance::scalar(outlet)), 4);
        // inlet is free to run
        let inlet = p.blocks()[0].inlet;
        assert_eq!(p.initial_rc(Instance::scalar(inlet)), 0);
    }

    #[test]
    fn loop_thread_fan_in_from_broadcast() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let src = b.thread(blk, ThreadSpec::scalar("src"));
        let work = b.thread(blk, ThreadSpec::new("work", 8));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(src, work, ArcMapping::Broadcast).unwrap();
        b.arc(work, sink, ArcMapping::Reduction).unwrap();
        let p = b.build().unwrap();
        for c in 0..8 {
            assert_eq!(p.initial_rc(Instance::new(work, Context(c))), 1);
        }
        assert_eq!(p.initial_rc(Instance::scalar(sink)), 8);
        assert_eq!(p.total_instances(), 1 + 8 + 1 + 2); // + inlet/outlet
        assert_eq!(p.block_instances(BlockId(0)), 11); // apps + outlet
    }

    #[test]
    fn cross_block_arc_rejected() {
        let mut b = ProgramBuilder::new();
        let b0 = b.block();
        let t0 = b.thread(b0, ThreadSpec::scalar("x"));
        let b1 = b.block();
        let t1 = b.thread(b1, ThreadSpec::scalar("y"));
        assert!(matches!(
            b.arc(t0, t1, ArcMapping::Scalar),
            Err(CoreError::CrossBlockArc { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let t0 = b.thread(blk, ThreadSpec::scalar("x"));
        let t1 = b.thread(blk, ThreadSpec::scalar("y"));
        b.arc(t0, t1, ArcMapping::Scalar).unwrap();
        b.arc(t1, t0, ArcMapping::Scalar).unwrap();
        assert!(matches!(b.build(), Err(CoreError::CyclicBlock(_))));
    }

    #[test]
    fn self_arc_rejected() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let t0 = b.thread(blk, ThreadSpec::new("x", 4));
        b.arc(t0, t0, ArcMapping::Offset(1)).unwrap();
        assert!(matches!(b.build(), Err(CoreError::CyclicBlock(_))));
    }

    #[test]
    fn duplicate_arc_rejected() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let t0 = b.thread(blk, ThreadSpec::scalar("x"));
        let t1 = b.thread(blk, ThreadSpec::scalar("y"));
        b.arc(t0, t1, ArcMapping::Scalar).unwrap();
        assert!(matches!(
            b.arc(t0, t1, ArcMapping::Scalar),
            Err(CoreError::DuplicateArc { .. })
        ));
    }

    #[test]
    fn empty_program_and_block_rejected() {
        assert!(matches!(
            ProgramBuilder::new().build(),
            Err(CoreError::EmptyProgram)
        ));
        let mut b = ProgramBuilder::new();
        b.block();
        assert!(matches!(b.build(), Err(CoreError::EmptyBlock(_))));
    }

    #[test]
    fn zero_arity_rejected() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::new("z", 0));
        assert!(matches!(b.build(), Err(CoreError::ZeroArity(_))));
    }

    #[test]
    fn unknown_thread_rejected() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let t0 = b.thread(blk, ThreadSpec::scalar("x"));
        assert!(matches!(
            b.arc(t0, ThreadId(99), ArcMapping::Scalar),
            Err(CoreError::UnknownThread(_))
        ));
    }

    #[test]
    fn multi_block_program_builds() {
        let mut b = ProgramBuilder::new();
        for _ in 0..3 {
            let blk = b.block();
            b.thread(blk, ThreadSpec::new("w", 4));
        }
        let p = b.build().unwrap();
        assert_eq!(p.blocks().len(), 3);
        // every block has its own inlet/outlet
        for blk in p.blocks() {
            assert_eq!(p.thread(blk.inlet).kind, ThreadKind::Inlet);
            assert_eq!(p.thread(blk.outlet).kind, ThreadKind::Outlet);
            assert_eq!(p.block_of(blk.inlet), blk.id);
        }
        assert_eq!(p.max_block_instances(), 5);
    }
}
