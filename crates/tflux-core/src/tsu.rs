//! The Thread Synchronization Unit state machine.
//!
//! [`TsuState`] implements the target-independent TSU semantics of §2/§3.3
//! of the paper: per-instance *Ready Counts* held in Synchronization Memory,
//! consumer lists, the *Post-Processing Phase* run when a DThread completes,
//! DDM-block loading/unloading through Inlet/Outlet threads, and ready
//! DThread selection.
//!
//! Both platform TSUs wrap this one state machine:
//!
//! * the **software TSU Emulator** of `tflux-runtime` owns a `TsuState` on
//!   its emulator thread and routes newly-ready instances to per-kernel
//!   concurrent ready queues (use [`TsuState::complete_into`]);
//! * the **hardware TSU Group** of `tflux-sim` wraps a `TsuState` behind a
//!   memory-mapped device model and charges cycle costs per operation (use
//!   the queue-mode API [`TsuState::fetch_ready`] / [`TsuState::complete`]).

use crate::error::CoreError;
use crate::ids::{BlockId, Context, Instance, KernelId, ThreadId};
use crate::policy::SchedulingPolicy;
use crate::program::DdmProgram;
use crate::thread::ThreadKind;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a TSU instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, Default)]
pub struct TsuConfig {
    /// Maximum instances resident at once (`0` = unlimited). A block whose
    /// residency exceeds this fails at load, mirroring the paper's rule that
    /// the block size is bounded by the TSU size.
    pub capacity: usize,
    /// Ready-thread selection policy.
    pub policy: SchedulingPolicy,
}

/// Result of a kernel's request for its next DThread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchResult {
    /// Run this instance next.
    Thread(Instance),
    /// No ready DThread right now; the kernel must wait and retry.
    Wait,
    /// The program has finished; the kernel exits.
    Exit,
}

/// Counters the TSU keeps about its own operation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TsuStats {
    /// Successful fetches (a DThread was handed to a kernel).
    pub fetches: u64,
    /// Fetch attempts that found no ready DThread.
    pub waits: u64,
    /// DThread completions processed.
    pub completions: u64,
    /// Ready-count decrements performed during post-processing.
    pub rc_updates: u64,
    /// Fetches satisfied from another kernel's queue.
    pub steals: u64,
    /// DDM blocks loaded.
    pub blocks_loaded: u64,
    /// Peak number of resident instances.
    pub max_resident: usize,
}

/// A resident instance still waiting on producer completions — one row of
/// the stall-forensics view exposed by
/// [`TsuState::waiting_instances`]. Platforms embed these in their stall
/// reports so a watchdog abort names the stuck instances instead of
/// discarding the Synchronization Memory contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitingInstance {
    /// The instance whose ready count has not reached zero.
    pub instance: Instance,
    /// Producer completions still needed before it becomes ready.
    pub remaining: u32,
}

/// The TSU state machine for one program execution.
///
/// Single-owner and lock-free by construction (see module docs for how the
/// concurrent platforms wrap it).
pub struct TsuState<'p> {
    program: &'p DdmProgram,
    kernels: u32,
    config: TsuConfig,
    /// Synchronization Memory: ready counts of the loaded block, indexed by
    /// thread id then context. Entries of non-resident threads are empty.
    rc: Vec<Vec<u32>>,
    /// Instances fetched but not yet completed (for protocol checking).
    running: Vec<Vec<bool>>,
    /// Per-kernel ready queues (one queue total under `GlobalFifo`).
    ready: Vec<VecDeque<Instance>>,
    loaded: Option<BlockId>,
    resident: usize,
    finished: bool,
    stats: TsuStats,
}

impl<'p> TsuState<'p> {
    /// Create a TSU for `program` serving `kernels` kernels and arm it: the
    /// inlet of the first block is made ready.
    pub fn new(program: &'p DdmProgram, kernels: u32, config: TsuConfig) -> Self {
        assert!(kernels > 0, "need at least one kernel");
        let n = program.threads().len();
        let nqueues = match config.policy {
            SchedulingPolicy::GlobalFifo => 1,
            _ => kernels as usize,
        };
        let mut s = TsuState {
            program,
            kernels,
            config,
            rc: vec![Vec::new(); n],
            running: vec![Vec::new(); n],
            ready: vec![VecDeque::new(); nqueues],
            loaded: None,
            resident: 0,
            finished: false,
            stats: TsuStats::default(),
        };
        let first_inlet = Instance::scalar(program.blocks()[0].inlet);
        s.mark_resident(first_inlet.thread);
        s.push_ready(first_inlet);
        s
    }

    /// The program this TSU executes.
    pub fn program(&self) -> &'p DdmProgram {
        self.program
    }

    /// Number of kernels served.
    pub fn kernels(&self) -> u32 {
        self.kernels
    }

    /// Whether the last block's outlet has completed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Operation counters.
    pub fn stats(&self) -> &TsuStats {
        &self.stats
    }

    /// The currently loaded block, if any.
    pub fn loaded_block(&self) -> Option<BlockId> {
        self.loaded
    }

    /// Total ready instances across all queues.
    pub fn ready_len(&self) -> usize {
        self.ready.iter().map(|q| q.len()).sum()
    }

    /// Stall forensics: every resident instance whose ready count is still
    /// above zero, i.e. instances blocked on producers that have not
    /// completed. Ordered thread-major, context-minor.
    pub fn waiting_instances(&self) -> Vec<WaitingInstance> {
        let mut out = Vec::new();
        for (ti, rcs) in self.rc.iter().enumerate() {
            for (ci, &remaining) in rcs.iter().enumerate() {
                if remaining > 0 {
                    out.push(WaitingInstance {
                        instance: Instance::new(ThreadId(ti as u32), Context(ci as u32)),
                        remaining,
                    });
                }
            }
        }
        out
    }

    /// Stall forensics: every instance that was dispatched to a kernel
    /// (fetched or [`dispatch`](Self::dispatch)ed) but has not completed.
    /// Ordered thread-major, context-minor.
    pub fn running_instances(&self) -> Vec<Instance> {
        let mut out = Vec::new();
        for (ti, row) in self.running.iter().enumerate() {
            for (ci, &running) in row.iter().enumerate() {
                if running {
                    out.push(Instance::new(ThreadId(ti as u32), Context(ci as u32)));
                }
            }
        }
        out
    }

    fn queue_of(&self, i: Instance) -> usize {
        match self.config.policy {
            SchedulingPolicy::GlobalFifo => 0,
            _ => self.program.kernel_of(i, self.kernels).idx(),
        }
    }

    fn push_ready(&mut self, i: Instance) {
        let q = self.queue_of(i);
        self.ready[q].push_back(i);
    }

    fn mark_resident(&mut self, t: crate::ids::ThreadId) {
        let arity = self.program.thread(t).arity as usize;
        self.rc[t.idx()] = self.program.initial_rcs(t).to_vec();
        self.running[t.idx()] = vec![false; arity];
        self.resident += arity;
        self.stats.max_resident = self.stats.max_resident.max(self.resident);
    }

    /// Queue-mode: ask for the next DThread on behalf of `kernel`.
    pub fn fetch_ready(&mut self, kernel: KernelId) -> FetchResult {
        if self.finished {
            return FetchResult::Exit;
        }
        let own = match self.config.policy {
            SchedulingPolicy::GlobalFifo => 0,
            _ => (kernel.idx()).min(self.ready.len() - 1),
        };
        if let Some(i) = self.ready[own].pop_front() {
            self.stats.fetches += 1;
            self.running[i.thread.idx()][i.context.idx()] = true;
            return FetchResult::Thread(i);
        }
        if let SchedulingPolicy::LocalityFirst { steal: true } = self.config.policy {
            // steal from the most loaded queue
            if let Some(victim) = (0..self.ready.len())
                .filter(|&q| q != own && !self.ready[q].is_empty())
                .max_by_key(|&q| self.ready[q].len())
            {
                let i = self.ready[victim].pop_front().expect("non-empty victim");
                self.stats.fetches += 1;
                self.stats.steals += 1;
                self.running[i.thread.idx()][i.context.idx()] = true;
                return FetchResult::Thread(i);
            }
        }
        self.stats.waits += 1;
        FetchResult::Wait
    }

    /// Notification-mode: drain the internal ready queues (e.g. right after
    /// construction, to obtain the first block's inlet) into `out`, marking
    /// each instance as dispatched.
    pub fn drain_ready(&mut self, out: &mut Vec<Instance>) {
        for q in 0..self.ready.len() {
            while let Some(i) = self.ready[q].pop_front() {
                self.stats.fetches += 1;
                self.running[i.thread.idx()][i.context.idx()] = true;
                out.push(i);
            }
        }
    }

    /// Notification-mode: mark `inst` — previously returned by
    /// [`complete_into`](Self::complete_into) — as dispatched to a kernel
    /// chosen by the caller. Pairs with a later `complete_into(inst, ..)`.
    pub fn dispatch(&mut self, inst: Instance) {
        self.stats.fetches += 1;
        self.running[inst.thread.idx()][inst.context.idx()] = true;
    }

    /// The Post-Processing Phase: record completion of `inst`, decrement its
    /// consumers' ready counts, and append newly-ready instances to `out`.
    ///
    /// Inlet completions load their block (appending every initially-ready
    /// application instance); outlet completions unload the block and append
    /// the next block's inlet, or mark the program finished.
    pub fn complete_into(
        &mut self,
        inst: Instance,
        out: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        let t = inst.thread;
        let ti = t.idx();
        let ci = inst.context.idx();
        if self
            .running
            .get(ti)
            .and_then(|v| v.get(ci))
            .copied()
            .unwrap_or(false)
        {
            self.running[ti][ci] = false;
        } else {
            return Err(CoreError::NotRunning(inst));
        }
        self.stats.completions += 1;

        match self.program.thread(t).kind {
            ThreadKind::Inlet => {
                self.unload_thread(t);
                self.load_block(self.program.block_of(t), out)?;
            }
            ThreadKind::Outlet => {
                // "the purpose of the [Outlet] is to clear the allocated
                // resources": free the whole block's SM entries
                let block = self.program.block_of(t);
                let app_threads: Vec<_> = self.program.blocks()[block.idx()].threads.clone();
                for at in app_threads {
                    self.unload_thread(at);
                }
                self.unload_thread(t);
                self.loaded = None;
                let next = BlockId(self.program.block_of(t).0 + 1);
                if (next.idx()) < self.program.blocks().len() {
                    let inlet = Instance::scalar(self.program.blocks()[next.idx()].inlet);
                    self.mark_resident(inlet.thread);
                    out.push(inlet);
                } else {
                    self.finished = true;
                }
            }
            ThreadKind::App => {
                self.post_process(inst, out);
            }
        }
        Ok(())
    }

    /// Queue-mode completion: like [`complete_into`](Self::complete_into)
    /// but newly-ready instances go straight onto the internal ready queues.
    pub fn complete(&mut self, inst: Instance) -> Result<(), CoreError> {
        let mut out = Vec::new();
        self.complete_queued(inst, &mut out)
    }

    /// Queue-mode completion that also reports the newly-ready instances in
    /// `out` (they are *additionally* enqueued internally). Lets device
    /// models inspect who became ready — e.g. to charge cross-TSU-shard
    /// update messages only when a consumer lives on another shard.
    pub fn complete_queued(
        &mut self,
        inst: Instance,
        out: &mut Vec<Instance>,
    ) -> Result<(), CoreError> {
        out.clear();
        self.complete_into(inst, out)?;
        for &i in out.iter() {
            self.push_ready(i);
        }
        Ok(())
    }

    fn post_process(&mut self, inst: Instance, out: &mut Vec<Instance>) {
        let t = inst.thread;
        let pa = self.program.thread(t).arity;
        // Consumer lists live in the program (the TSU's Graph Memory).
        for arc in self.program.consumers(t) {
            let ca = self.program.thread(arc.consumer).arity;
            let cons_rc = &mut self.rc[arc.consumer.idx()];
            debug_assert!(
                !cons_rc.is_empty(),
                "consumer {:?} not resident",
                arc.consumer
            );
            for c in arc.mapping.consumers(inst.context, pa, ca) {
                self.stats.rc_updates += 1;
                let rc = &mut cons_rc[c.idx()];
                debug_assert!(*rc > 0, "ready count underflow at {:?}.{c:?}", arc.consumer);
                *rc -= 1;
                if *rc == 0 {
                    out.push(Instance::new(arc.consumer, c));
                }
            }
        }
    }

    fn unload_thread(&mut self, t: crate::ids::ThreadId) {
        let arity = self.program.thread(t).arity as usize;
        self.rc[t.idx()].clear();
        self.running[t.idx()].clear();
        self.resident -= arity;
    }

    fn load_block(&mut self, b: BlockId, out: &mut Vec<Instance>) -> Result<(), CoreError> {
        let instances = self.program.block_instances(b);
        if self.config.capacity != 0 && self.resident + instances > self.config.capacity {
            return Err(CoreError::BlockTooLarge {
                block: b,
                instances,
                capacity: self.config.capacity,
            });
        }
        self.stats.blocks_loaded += 1;
        let block = &self.program.blocks()[b.idx()];
        let outlet = block.outlet;
        let threads: Vec<_> = block.threads.clone();
        for t in threads {
            self.mark_resident(t);
            // initially-ready instances (no in-block producers)
            for (c, &rc) in self.program.initial_rcs(t).iter().enumerate() {
                if rc == 0 {
                    out.push(Instance::new(t, Context(c as u32)));
                }
            }
        }
        self.mark_resident(outlet);
        self.loaded = Some(b);
        Ok(())
    }
}

/// Drive a TSU to completion single-threadedly, round-robining fetches over
/// the kernels; returns the execution order. Panics on protocol errors.
///
/// This is the reference executor used by tests and by the graph-analysis
/// tooling; platforms implement their own drivers.
pub fn drain_sequential(tsu: &mut TsuState<'_>) -> Vec<Instance> {
    let mut order = Vec::new();
    let kernels = tsu.kernels();
    let mut k = 0u32;
    let mut idle_rounds = 0u32;
    loop {
        match tsu.fetch_ready(KernelId(k)) {
            FetchResult::Thread(i) => {
                idle_rounds = 0;
                order.push(i);
                tsu.complete(i).expect("protocol error");
            }
            FetchResult::Wait => {
                idle_rounds += 1;
                assert!(
                    idle_rounds <= kernels,
                    "deadlock: no kernel can make progress"
                );
            }
            FetchResult::Exit => return order,
        }
        k = (k + 1) % kernels;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ArcMapping;
    use crate::program::ProgramBuilder;
    use crate::thread::ThreadSpec;
    use std::collections::HashSet;

    fn fork_join(arity: u32, blocks: u32) -> DdmProgram {
        let mut b = ProgramBuilder::new();
        for _ in 0..blocks {
            let blk = b.block();
            let src = b.thread(blk, ThreadSpec::scalar("src"));
            let work = b.thread(blk, ThreadSpec::new("work", arity));
            let sink = b.thread(blk, ThreadSpec::scalar("sink"));
            b.arc(src, work, ArcMapping::Broadcast).unwrap();
            b.arc(work, sink, ArcMapping::Reduction).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn drains_every_instance_exactly_once() {
        let p = fork_join(16, 3);
        let mut tsu = TsuState::new(&p, 4, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        assert_eq!(order.len(), p.total_instances());
        let set: HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), order.len(), "duplicate execution");
        assert!(tsu.finished());
    }

    #[test]
    fn respects_producer_consumer_order() {
        let p = fork_join(8, 2);
        let mut tsu = TsuState::new(&p, 3, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let pos = |i: &Instance| order.iter().position(|x| x == i).unwrap();
        for blk in p.blocks() {
            let src = blk.threads[0];
            let work = blk.threads[1];
            let sink = blk.threads[2];
            for c in 0..8 {
                let w = Instance::new(work, Context(c));
                assert!(pos(&Instance::scalar(src)) < pos(&w));
                assert!(pos(&w) < pos(&Instance::scalar(sink)));
            }
            // inlet first in block, outlet last
            let inlet = pos(&Instance::scalar(blk.inlet));
            let outlet = pos(&Instance::scalar(blk.outlet));
            for &t in &blk.threads {
                for c in 0..p.thread(t).arity {
                    let i = pos(&Instance::new(t, Context(c)));
                    assert!(inlet < i && i < outlet);
                }
            }
        }
    }

    #[test]
    fn blocks_execute_in_order() {
        let p = fork_join(4, 3);
        let mut tsu = TsuState::new(&p, 2, TsuConfig::default());
        let order = drain_sequential(&mut tsu);
        let block_seq: Vec<u32> = order.iter().map(|i| p.block_of(i.thread).0).collect();
        let mut sorted = block_seq.clone();
        sorted.sort_unstable();
        assert_eq!(block_seq, sorted, "block interleaving detected");
    }

    #[test]
    fn capacity_enforced_at_block_load() {
        let p = fork_join(32, 1); // block residency = 32 + 2 + 1 outlet
        let mut tsu = TsuState::new(
            &p,
            2,
            TsuConfig {
                capacity: 8,
                policy: SchedulingPolicy::default(),
            },
        );
        // inlet fits; its completion tries to load the block and must fail
        let FetchResult::Thread(inlet) = tsu.fetch_ready(KernelId(0)) else {
            panic!("inlet not ready");
        };
        let err = tsu.complete(inlet).unwrap_err();
        assert!(matches!(err, CoreError::BlockTooLarge { .. }));
    }

    #[test]
    fn double_completion_rejected() {
        let p = fork_join(2, 1);
        let mut tsu = TsuState::new(&p, 1, TsuConfig::default());
        let FetchResult::Thread(i) = tsu.fetch_ready(KernelId(0)) else {
            panic!()
        };
        tsu.complete(i).unwrap();
        assert!(matches!(tsu.complete(i), Err(CoreError::NotRunning(_))));
    }

    #[test]
    fn completion_without_fetch_rejected() {
        let p = fork_join(2, 1);
        let mut tsu = TsuState::new(&p, 1, TsuConfig::default());
        let work = p.blocks()[0].threads[1];
        assert!(matches!(
            tsu.complete(Instance::new(work, Context(0))),
            Err(CoreError::NotRunning(_))
        ));
    }

    #[test]
    fn steal_lets_idle_kernel_progress() {
        // all work pinned to kernel 0; kernel 1 must steal
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 8).with_affinity(crate::thread::Affinity::Fixed(KernelId(0))),
        );
        let p = b.build().unwrap();
        let mut tsu = TsuState::new(&p, 2, TsuConfig::default());
        // prime: run the inlet
        let FetchResult::Thread(inlet) = tsu.fetch_ready(KernelId(0)) else {
            panic!()
        };
        tsu.complete(inlet).unwrap();
        match tsu.fetch_ready(KernelId(1)) {
            FetchResult::Thread(_) => {}
            other => panic!("kernel 1 should have stolen, got {other:?}"),
        }
        assert_eq!(tsu.stats().steals, 1);
    }

    #[test]
    fn no_steal_policy_makes_idle_kernel_wait() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(
            blk,
            ThreadSpec::new("w", 8).with_affinity(crate::thread::Affinity::Fixed(KernelId(0))),
        );
        let p = b.build().unwrap();
        let mut tsu = TsuState::new(
            &p,
            2,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::LocalityFirst { steal: false },
            },
        );
        let FetchResult::Thread(inlet) = tsu.fetch_ready(KernelId(0)) else {
            panic!()
        };
        tsu.complete(inlet).unwrap();
        assert_eq!(tsu.fetch_ready(KernelId(1)), FetchResult::Wait);
        assert!(tsu.stats().waits >= 1);
    }

    #[test]
    fn global_fifo_serves_everyone_from_one_queue() {
        let p = fork_join(6, 1);
        let mut tsu = TsuState::new(
            &p,
            3,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::GlobalFifo,
            },
        );
        let order = drain_sequential(&mut tsu);
        assert_eq!(order.len(), p.total_instances());
        assert_eq!(tsu.stats().steals, 0);
    }

    #[test]
    fn stats_count_operations() {
        let p = fork_join(4, 2);
        let mut tsu = TsuState::new(&p, 2, TsuConfig::default());
        drain_sequential(&mut tsu);
        let s = tsu.stats();
        assert_eq!(s.completions as usize, p.total_instances());
        assert_eq!(s.fetches as usize, p.total_instances());
        assert_eq!(s.blocks_loaded, 2);
        assert!(s.rc_updates > 0);
        assert!(s.max_resident >= p.max_block_instances());
    }

    #[test]
    fn outlet_frees_block_resources() {
        // regression: app-thread SM entries must be freed when the block's
        // outlet completes, or multi-block programs exceed capacity
        let p = fork_join(8, 3); // block residency: 8 + 2 scalars + outlet = 11
        let mut tsu = TsuState::new(
            &p,
            2,
            TsuConfig {
                capacity: 12,
                policy: SchedulingPolicy::default(),
            },
        );
        let order = drain_sequential(&mut tsu);
        assert_eq!(order.len(), p.total_instances());
        assert!(tsu.stats().max_resident <= 12);
    }

    #[test]
    fn forensics_views_track_waiting_and_running() {
        let p = fork_join(4, 1);
        let mut tsu = TsuState::new(&p, 1, TsuConfig::default());
        // before the inlet runs, nothing but the inlet is resident; it is
        // ready (rc 0) so the waiting view is empty
        assert!(tsu.waiting_instances().is_empty());
        let FetchResult::Thread(inlet) = tsu.fetch_ready(KernelId(0)) else {
            panic!("inlet not ready");
        };
        // the inlet is dispatched but not completed
        assert_eq!(tsu.running_instances(), vec![inlet]);
        tsu.complete(inlet).unwrap();
        // block loaded: src (rc 0) is ready; each work instance waits on the
        // src broadcast, the sink on 4 work completions, the outlet on all
        // 6 app instances
        let waiting = tsu.waiting_instances();
        let src = p.blocks()[0].threads[0];
        let work = p.blocks()[0].threads[1];
        let sink = p.blocks()[0].threads[2];
        assert!(waiting.iter().all(|w| w.instance.thread != src));
        for c in 0..4 {
            assert!(waiting
                .iter()
                .any(|w| w.instance == Instance::new(work, Context(c)) && w.remaining == 1));
        }
        assert!(waiting
            .iter()
            .any(|w| w.instance == Instance::scalar(sink) && w.remaining == 4));
        assert!(tsu.running_instances().is_empty());
        // dispatch src: it shows as running until completed, and its
        // completion unblocks the work instances
        let FetchResult::Thread(first) = tsu.fetch_ready(KernelId(0)) else {
            panic!("no ready instance");
        };
        assert_eq!(first, Instance::scalar(src));
        assert_eq!(tsu.running_instances(), vec![first]);
        tsu.complete(first).unwrap();
        assert!(tsu.running_instances().is_empty());
        assert!(tsu
            .waiting_instances()
            .iter()
            .all(|w| w.instance.thread != work));
        // draining the rest empties both views
        drain_sequential(&mut tsu);
        assert!(tsu.waiting_instances().is_empty());
        assert!(tsu.running_instances().is_empty());
    }

    #[test]
    fn exit_reported_to_all_kernels_after_finish() {
        let p = fork_join(2, 1);
        let mut tsu = TsuState::new(&p, 4, TsuConfig::default());
        drain_sequential(&mut tsu);
        for k in 0..4 {
            assert_eq!(tsu.fetch_ready(KernelId(k)), FetchResult::Exit);
        }
    }
}
