//! Two-dimensional contexts for nested-loop DThreads.
//!
//! DDM contexts are flat integers, but many decompositions are naturally
//! two-dimensional (tiles of a matrix, bands × columns). [`Context2d`]
//! defines a fixed row-major packing between an `(i, j)` iteration space
//! and the flat [`Context`] the TSU schedules — the convention TFlux's
//! successor systems (e.g. DDM-VM) bake into their context words.

use crate::ids::Context;
use serde::{Deserialize, Serialize};

/// A row-major 2-D iteration space `rows × cols` packed into flat contexts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Context2d {
    /// Number of rows (outer dimension).
    pub rows: u32,
    /// Number of columns (inner dimension).
    pub cols: u32,
}

impl Context2d {
    /// A `rows × cols` space.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be non-zero");
        assert!(
            (rows as u64)
                .checked_mul(cols as u64)
                .is_some_and(|n| n <= u32::MAX as u64),
            "iteration space exceeds the 32-bit context range"
        );
        Context2d { rows, cols }
    }

    /// The DThread arity covering the space.
    pub fn arity(&self) -> u32 {
        self.rows * self.cols
    }

    /// Pack `(i, j)` into a flat context.
    #[inline]
    pub fn pack(&self, i: u32, j: u32) -> Context {
        debug_assert!(i < self.rows && j < self.cols);
        Context(i * self.cols + j)
    }

    /// Unpack a flat context into `(i, j)`.
    #[inline]
    pub fn unpack(&self, c: Context) -> (u32, u32) {
        debug_assert!(c.0 < self.arity());
        (c.0 / self.cols, c.0 % self.cols)
    }

    /// The context of the same `(i, j)` position in another space with the
    /// same shape but transposed dimensions — the mapping a row-phase →
    /// column-phase arc needs (e.g. FFT's transpose between phases).
    #[inline]
    pub fn transpose(&self, c: Context) -> Context {
        let (i, j) = self.unpack(c);
        Context(j * self.rows + i)
    }

    /// Iterate over all `(i, j)` pairs in context order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.arity()).map(|c| self.unpack(Context(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let s = Context2d::new(5, 7);
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(s.unpack(s.pack(i, j)), (i, j));
            }
        }
        assert_eq!(s.arity(), 35);
    }

    #[test]
    fn row_major_ordering() {
        let s = Context2d::new(3, 4);
        assert_eq!(s.pack(0, 0), Context(0));
        assert_eq!(s.pack(0, 3), Context(3));
        assert_eq!(s.pack(1, 0), Context(4));
        assert_eq!(s.pack(2, 3), Context(11));
    }

    #[test]
    fn transpose_is_involutive_through_the_flipped_space() {
        let s = Context2d::new(3, 4);
        let t = Context2d::new(4, 3);
        for c in 0..s.arity() {
            let c = Context(c);
            let (i, j) = s.unpack(c);
            let tc = s.transpose(c);
            assert_eq!(t.unpack(tc), (j, i));
            assert_eq!(t.transpose(tc), c);
        }
    }

    #[test]
    fn iter_covers_everything_once() {
        let s = Context2d::new(4, 4);
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all.len(), 16);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        Context2d::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "32-bit context range")]
    fn oversized_space_rejected() {
        Context2d::new(1 << 20, 1 << 20);
    }
}
