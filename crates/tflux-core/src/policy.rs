//! Ready-thread selection policies.
//!
//! §3.1 of the paper: *"If more than one ready DThreads exist the TSU
//! returns the one which, based on its internal policy, is most likely to
//! maximize the spatial locality."* TFlux achieves this by assigning
//! instances to kernels statically (the [`crate::thread::Affinity`] /
//! Thread-to-Kernel Table) and serving each kernel from its own ready queue
//! first. The policy here decides what happens beyond that.

use serde::{Deserialize, Serialize};

/// Policy used by the TSU when a kernel asks for its next DThread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Serve the kernel's own ready queue first (spatial locality); if it is
    /// empty and `steal` is set, take the oldest entry from the most loaded
    /// other queue.
    LocalityFirst {
        /// Whether an idle kernel may take work owned by another kernel.
        steal: bool,
    },
    /// A single FIFO shared by all kernels — no locality preference.
    ///
    /// Used as a baseline in the scheduling ablation.
    GlobalFifo,
}

impl Default for SchedulingPolicy {
    fn default() -> Self {
        SchedulingPolicy::LocalityFirst { steal: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_locality_with_steal() {
        assert_eq!(
            SchedulingPolicy::default(),
            SchedulingPolicy::LocalityFirst { steal: true }
        );
    }
}
