//! Ready-thread selection policies.
//!
//! §3.1 of the paper: *"If more than one ready DThreads exist the TSU
//! returns the one which, based on its internal policy, is most likely to
//! maximize the spatial locality."* TFlux achieves this by assigning
//! instances to kernels statically (the [`crate::thread::Affinity`] /
//! Thread-to-Kernel Table) and serving each kernel from its own ready queue
//! first. The policy here decides what happens beyond that.

use serde::{Deserialize, Serialize};

/// Policy used by the TSU when a kernel asks for its next DThread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Serve the kernel's own ready queue first (spatial locality); if it is
    /// empty and `steal` is set, take the oldest entry from the most loaded
    /// other queue.
    LocalityFirst {
        /// Whether an idle kernel may take work owned by another kernel.
        steal: bool,
    },
    /// A single FIFO shared by all kernels — no locality preference.
    ///
    /// Used as a baseline in the scheduling ablation.
    GlobalFifo,
}

impl Default for SchedulingPolicy {
    fn default() -> Self {
        SchedulingPolicy::LocalityFirst { steal: true }
    }
}

/// How a thief picks its victim queue once its own queue misses.
///
/// Stealing is now a queue-native operation (see
/// [`StealDeque`](crate::tsu::StealDeque)); this policy only decides the
/// *order* in which sibling queues are probed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StealPolicy {
    /// Probe one uniformly-drawn sibling first — randomization spreads
    /// concurrent thieves across victims so they do not all CAS the same
    /// `top` — then fall back to scanning siblings longest-queue-first.
    #[default]
    RandomThenLongest,
    /// Skip the random probe and always scan longest-queue-first. More
    /// deterministic, but concurrent thieves pile onto the same victim.
    LongestFirst,
}

/// splitmix64: the cheap deterministic generator used for victim draws
/// (the same construction the TUB uses for its backoff jitter). Advances
/// `state` and returns the next draw.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Adaptive backoff for victim probing.
///
/// On an idle machine every fetch misses its own queue and then walks the
/// sibling queues, burning cycles (and, in the concurrent runtime, cache
/// lines) on an empty scan — it shows up as `steal_misses ≫ steals`. This
/// state machine gates the probe: below
/// [`THRESHOLD`](Self::THRESHOLD) consecutive misses every attempt probes;
/// from the threshold on, each further miss doubles the number of attempts
/// skipped before the next probe (capped at 2^[`MAX_SHIFT`](Self::MAX_SHIFT)).
/// Any hit resets the machine to eager probing, so a thief that finds work
/// keeps stealing at full rate.
///
/// Purely deterministic — no clocks, no randomness — so single-owner
/// simulations replay exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealBackoff {
    /// Consecutive failed steal attempts since the last hit.
    misses: u32,
    /// Attempts left to skip before the next probe.
    skip: u32,
}

impl StealBackoff {
    /// Consecutive misses tolerated before probes start being skipped.
    pub const THRESHOLD: u32 = 4;
    /// Cap on the exponential skip count: at most `2^MAX_SHIFT` attempts
    /// (64) are skipped between probes, so a thief re-checks an idle
    /// machine at a bounded, if lazy, rate.
    pub const MAX_SHIFT: u32 = 6;

    /// A fresh, eagerly-probing backoff.
    pub fn new() -> Self {
        StealBackoff::default()
    }

    /// Whether this fetch attempt should probe victims. Consumes one skip
    /// credit when the probe is gated off.
    pub fn should_probe(&mut self) -> bool {
        if self.skip > 0 {
            self.skip -= 1;
            return false;
        }
        true
    }

    /// Record the outcome of a probe that ran: a hit resets to eager
    /// probing, a miss extends the backoff schedule.
    pub fn record(&mut self, hit: bool) {
        if hit {
            *self = StealBackoff::new();
        } else {
            self.misses = self.misses.saturating_add(1);
            if self.misses >= Self::THRESHOLD {
                self.skip = 1 << (self.misses - Self::THRESHOLD).min(Self::MAX_SHIFT);
            }
        }
    }

    /// Consecutive misses recorded since the last hit.
    pub fn consecutive_misses(&self) -> u32 {
        self.misses
    }
}

impl StealPolicy {
    /// The first victim a thief owning queue `own` (of `n` queues) should
    /// probe: a random sibling under [`StealPolicy::RandomThenLongest`]
    /// (drawn from `state`, which advances), `None` under
    /// [`StealPolicy::LongestFirst`] — the caller goes straight to the
    /// longest-queue scan.
    pub fn first_victim(self, own: usize, n: usize, state: &mut u64) -> Option<usize> {
        if n < 2 || self == StealPolicy::LongestFirst {
            return None;
        }
        let r = (splitmix64(state) % (n as u64 - 1)) as usize;
        Some(if r >= own { r + 1 } else { r })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_locality_with_steal() {
        assert_eq!(
            SchedulingPolicy::default(),
            SchedulingPolicy::LocalityFirst { steal: true }
        );
    }

    #[test]
    fn random_victim_never_picks_the_thief() {
        let mut state = 42u64;
        for own in 0..8usize {
            for _ in 0..64 {
                let v = StealPolicy::RandomThenLongest
                    .first_victim(own, 8, &mut state)
                    .unwrap();
                assert_ne!(v, own);
                assert!(v < 8);
            }
        }
    }

    #[test]
    fn victim_draws_are_deterministic_per_seed() {
        let mut a = 7u64;
        let mut b = 7u64;
        let va: Vec<_> = (0..32)
            .map(|_| StealPolicy::default().first_victim(0, 4, &mut a))
            .collect();
        let vb: Vec<_> = (0..32)
            .map(|_| StealPolicy::default().first_victim(0, 4, &mut b))
            .collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn backoff_follows_the_miss_hit_schedule() {
        let mut b = StealBackoff::new();
        // below the threshold every attempt probes
        for _ in 0..StealBackoff::THRESHOLD {
            assert!(b.should_probe());
            b.record(false);
        }
        // 4th consecutive miss: skip 1 attempt
        assert!(!b.should_probe());
        assert!(b.should_probe());
        b.record(false);
        // 5th: skip 2
        assert!(!b.should_probe());
        assert!(!b.should_probe());
        assert!(b.should_probe());
        b.record(false);
        // 6th: skip 4
        for _ in 0..4 {
            assert!(!b.should_probe());
        }
        assert!(b.should_probe());
        assert_eq!(b.consecutive_misses(), StealBackoff::THRESHOLD + 2);
        // a hit snaps straight back to eager probing
        b.record(true);
        assert_eq!(b.consecutive_misses(), 0);
        assert!(b.should_probe());
        b.record(false);
        assert!(b.should_probe(), "one miss after a hit must not gate");
    }

    #[test]
    fn backoff_skip_is_capped() {
        let mut b = StealBackoff::new();
        for _ in 0..10_000 {
            if b.should_probe() {
                b.record(false);
            }
        }
        b.record(false); // re-arm a full skip run from a known point
                         // long-idle thief still probes at least every 2^MAX_SHIFT attempts
        let mut gap = 0;
        while !b.should_probe() {
            gap += 1;
            assert!(gap <= 1 << StealBackoff::MAX_SHIFT);
        }
        assert!(gap > 0, "deep backoff must actually skip");
    }

    #[test]
    fn longest_first_and_single_queue_skip_the_random_probe() {
        let mut state = 1u64;
        assert_eq!(
            StealPolicy::LongestFirst.first_victim(0, 8, &mut state),
            None
        );
        assert_eq!(
            StealPolicy::RandomThenLongest.first_victim(0, 1, &mut state),
            None
        );
    }
}
