//! Property tests of automatic block splitting: for arbitrary programs and
//! capacities, the split program fits the capacity, preserves every
//! ordering constraint, and executes completely under a capacity-enforcing
//! TSU.

use proptest::prelude::*;
use tflux_core::prelude::*;
use tflux_core::split::{split_for_capacity, split_preserves_ordering};
use tflux_core::tsu::drain_sequential;

#[derive(Debug, Clone)]
struct Desc {
    layers: Vec<u32>,
    blocks: u32,
    capacity: usize,
}

fn desc() -> impl Strategy<Value = Desc> {
    (prop::collection::vec(1u32..7, 1..5), 1u32..3, 4usize..40).prop_map(
        |(layers, blocks, capacity)| Desc {
            layers,
            blocks,
            capacity,
        },
    )
}

fn build(d: &Desc) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    for _ in 0..d.blocks {
        let blk = b.block();
        let mut prev: Option<ThreadId> = None;
        for (li, &arity) in d.layers.iter().enumerate() {
            let t = b.thread(blk, ThreadSpec::new(format!("l{li}"), arity));
            if let Some(p) = prev {
                let mapping = if li % 2 == 0 {
                    ArcMapping::All
                } else if arity == b_arity(prev, &d.layers, li) {
                    ArcMapping::OneToOne
                } else {
                    ArcMapping::All
                };
                b.arc(p, t, mapping).unwrap();
            }
            prev = Some(t);
        }
    }
    b.build().unwrap()
}

fn b_arity(_prev: Option<ThreadId>, layers: &[u32], li: usize) -> u32 {
    layers[li - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn split_fits_preserves_and_executes(d in desc()) {
        let p = build(&d);
        let max_arity = d.layers.iter().copied().max().unwrap_or(1) as usize;
        prop_assume!(max_arity < d.capacity);

        let (q, idmap) = split_for_capacity(&p, d.capacity).expect("splittable");
        // capacity respected by every block
        for blk in q.blocks() {
            prop_assert!(q.block_instances(blk.id) <= d.capacity);
        }
        // ordering preserved
        prop_assert!(split_preserves_ordering(&p, &q, &idmap));
        // app instances conserved
        let apps = |p: &DdmProgram| {
            p.threads()
                .iter()
                .filter(|t| t.kind == ThreadKind::App)
                .map(|t| t.arity as usize)
                .sum::<usize>()
        };
        prop_assert_eq!(apps(&p), apps(&q));

        // executes under a TSU with exactly that capacity
        let mut tsu = CoreTsu::new(&q, 3, TsuConfig {
            capacity: d.capacity,
            policy: SchedulingPolicy::default(),
            ..Default::default()
        });
        let order = drain_sequential(&mut tsu);
        prop_assert_eq!(order.len(), q.total_instances());
        prop_assert!(tsu.stats().max_resident <= d.capacity);
    }
}
