//! Loom model of the Chase-Lev [`StealDeque`]: exhaustive interleaving
//! exploration of the owner-vs-thieves races the stress tests can only
//! sample.
//!
//! Compiled and run only under `RUSTFLAGS="--cfg loom"` (the CI loom
//! job):
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p tflux-core --test loom_deque --release
//! ```
//!
//! Under that cfg the deque's atomics are loom's, so every model below
//! explores all orderings of the owner's bottom updates, the thieves'
//! top CASes, and the ladder's grow-and-publish — including the
//! last-entry owner-vs-thief race and steals that land mid-growth. The
//! checked property is always the same: every pushed entry is claimed
//! exactly once, by exactly one side.
//!
//! The models are deliberately tiny (2–4 entries, ≤ 2 thieves): loom's
//! state space is exponential in the operation count, and these shapes
//! already cover the interesting races — last-entry contention, steal
//! during growth, and two thieves CASing the same top.

#![cfg(loom)]

use loom::thread;
use std::sync::Arc;
use tflux_core::ids::{Context, Epoch, Instance, ThreadId};
use tflux_core::tsu::{Steal, StealDeque};

fn inst(c: u32) -> Instance {
    Instance::new(ThreadId(1), Context(c))
}

/// Steal until the deque settles: collect successes, retry on lost
/// CASes, stop on Empty. Bounded because the model's owner performs a
/// finite number of operations.
fn steal_all(q: &StealDeque) -> Vec<u32> {
    let mut got = Vec::new();
    loop {
        match q.steal() {
            Steal::Success((i, ep)) => {
                assert_eq!(ep, Epoch(0));
                got.push(i.context.0);
            }
            Steal::Retry => continue,
            Steal::Empty => return got,
        }
    }
}

/// Owner pops against two concurrent thieves: every entry claimed
/// exactly once, including the last-entry race where the owner's
/// restoring CAS and a thief's top CAS contend for the same slot.
#[test]
fn owner_pop_vs_two_thieves_claims_each_entry_once() {
    loom::model(|| {
        let q = Arc::new(StealDeque::with_capacity(4));
        for c in 0..3 {
            q.push(inst(c), Epoch(0));
        }
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || steal_all(&q))
            })
            .collect();
        let mut all = Vec::new();
        while let Some((i, _)) = q.pop() {
            all.push(i.context.0);
        }
        for h in handles {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "entry lost or claimed twice");
    });
}

/// A thief races the owner across a buffer growth: the base capacity of
/// 2 forces the ladder to grow mid-push, so steals may read the retired
/// rung while the owner publishes the next one. No entry may be lost or
/// duplicated, and no steal may observe a torn slot it then claims —
/// the monotonic top counter makes a stale-rung claim impossible (no
/// ABA on growth).
#[test]
fn steal_during_growth_neither_loses_nor_duplicates() {
    loom::model(|| {
        let q = Arc::new(StealDeque::with_capacity(2));
        q.push(inst(0), Epoch(0));
        q.push(inst(1), Epoch(0));
        let thief = {
            let q = Arc::clone(&q);
            thread::spawn(move || steal_all(&q))
        };
        // these pushes overflow the base rung and publish the next one
        // while the thief is (possibly) mid-steal on the old rung
        q.push(inst(2), Epoch(0));
        q.push(inst(3), Epoch(0));
        let mut all = Vec::new();
        while let Some((i, _)) = q.pop() {
            all.push(i.context.0);
        }
        all.extend(thief.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "growth lost or duplicated an entry");
    });
}

/// The single-entry deque: owner pop and one thief race for the only
/// entry. Exactly one side wins; the loser sees nothing.
#[test]
fn last_entry_goes_to_exactly_one_side() {
    loom::model(|| {
        let q = Arc::new(StealDeque::with_capacity(2));
        q.push(inst(7), Epoch(0));
        let thief = {
            let q = Arc::clone(&q);
            thread::spawn(move || steal_all(&q))
        };
        let mine: Vec<u32> = q.pop().map(|(i, _)| i.context.0).into_iter().collect();
        let theirs = thief.join().unwrap();
        let mut all = mine;
        all.extend(theirs);
        assert_eq!(all, vec![7], "the last entry must go to exactly one side");
    });
}
