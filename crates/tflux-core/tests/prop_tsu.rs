//! Property-based tests: random DDM programs executed through the TSU state
//! machine always run every instance exactly once, in dependency order, and
//! never deadlock.

use proptest::prelude::*;
use std::collections::HashMap;
use tflux_core::prelude::*;
use tflux_core::tsu::drain_sequential;

/// A random, always-valid program description.
#[derive(Debug, Clone)]
struct ProgramDesc {
    blocks: Vec<Vec<(u32, Affinity)>>, // per block: (arity, affinity) per thread
    // arcs as (block, producer idx, consumer idx > producer idx, mapping sel)
    arcs: Vec<(usize, usize, usize, u8, u8)>,
    kernels: u32,
    policy: SchedulingPolicy,
}

fn affinity_strategy() -> impl Strategy<Value = Affinity> {
    prop_oneof![
        Just(Affinity::Range),
        Just(Affinity::RoundRobin),
        (0u32..4).prop_map(|k| Affinity::Fixed(KernelId(k))),
    ]
}

fn desc_strategy() -> impl Strategy<Value = ProgramDesc> {
    let blocks = prop::collection::vec(
        prop::collection::vec((1u32..9, affinity_strategy()), 1..6),
        1..4,
    );
    (
        blocks,
        prop::collection::vec((0usize..6, 0usize..6, 0usize..6, 0u8..5, 1u8..5), 0..12),
    )
        .prop_flat_map(|(blocks, rawarcs)| {
            let nb = blocks.len();
            (
                Just(blocks),
                Just(rawarcs),
                1u32..6,
                prop_oneof![
                    Just(SchedulingPolicy::LocalityFirst { steal: true }),
                    Just(SchedulingPolicy::LocalityFirst { steal: false }),
                    Just(SchedulingPolicy::GlobalFifo),
                ],
                Just(nb),
            )
        })
        .prop_map(|(blocks, rawarcs, kernels, policy, nb)| {
            let arcs = rawarcs
                .into_iter()
                .map(|(b, p, c, m, f)| (b % nb, p, c, m, f))
                .collect();
            ProgramDesc {
                blocks,
                arcs,
                kernels,
                policy,
            }
        })
}

/// Materialize a description into a validated program. Arcs that would be
/// invalid (same thread, wrong arity for the mapping, out of range) are
/// skipped — the generator over-produces and we keep what is legal, which
/// still explores a wide space of DAG shapes.
fn build(desc: &ProgramDesc) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let mut ids: Vec<Vec<ThreadId>> = Vec::new();
    for block in &desc.blocks {
        let blk = b.block();
        let mut v = Vec::new();
        for (i, (arity, aff)) in block.iter().enumerate() {
            v.push(b.thread(
                blk,
                ThreadSpec::new(format!("t{i}"), *arity).with_affinity(*aff),
            ));
        }
        ids.push(v);
    }
    for &(blk, p, c, m, f) in &desc.arcs {
        let threads = &ids[blk];
        if threads.len() < 2 {
            continue;
        }
        let p = p % threads.len();
        let c = c % threads.len();
        if p >= c {
            continue; // keep the template graph acyclic by index order
        }
        let (tp, tc) = (threads[p], threads[c]);
        let mapping = match m {
            0 => ArcMapping::All,
            1 => ArcMapping::OneToOne,
            2 => ArcMapping::Offset(f as i32 - 2),
            3 => ArcMapping::Group { factor: f as u32 },
            _ => ArcMapping::Expand { factor: f as u32 },
        };
        // arc() validates arity compatibility; skip incompatible ones
        let _ = b.arc(tp, tc, mapping);
    }
    b.build().expect("generated program must validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_instance_runs_exactly_once(desc in desc_strategy()) {
        let p = build(&desc);
        let mut tsu = CoreTsu::new(&p, desc.kernels, TsuConfig {
            capacity: 0,
            policy: desc.policy,
            ..Default::default()
        });
        let order = drain_sequential(&mut tsu);
        prop_assert_eq!(order.len(), p.total_instances());
        let mut seen = HashMap::new();
        for i in &order {
            *seen.entry(*i).or_insert(0u32) += 1;
        }
        prop_assert!(seen.values().all(|&v| v == 1));
        prop_assert!(tsu.finished());
    }

    #[test]
    fn producers_always_precede_consumers(desc in desc_strategy()) {
        let p = build(&desc);
        let mut tsu = CoreTsu::new(&p, desc.kernels, TsuConfig {
            capacity: 0,
            policy: desc.policy,
            ..Default::default()
        });
        let order = drain_sequential(&mut tsu);
        let pos: HashMap<Instance, usize> =
            order.iter().enumerate().map(|(n, &i)| (i, n)).collect();
        for t in 0..p.threads().len() {
            let t = ThreadId(t as u32);
            let pa = p.thread(t).arity;
            for arc in p.consumers(t) {
                let ca = p.thread(arc.consumer).arity;
                for pc in 0..pa {
                    let pi = Instance::new(t, Context(pc));
                    for cc in arc.mapping.consumers(Context(pc), pa, ca) {
                        let ci = Instance::new(arc.consumer, cc);
                        prop_assert!(
                            pos[&pi] < pos[&ci],
                            "{pi} ran after its consumer {ci}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocks_never_interleave(desc in desc_strategy()) {
        let p = build(&desc);
        let mut tsu = CoreTsu::new(&p, desc.kernels, TsuConfig {
            capacity: 0,
            policy: desc.policy,
            ..Default::default()
        });
        let order = drain_sequential(&mut tsu);
        let blocks: Vec<u32> = order.iter().map(|i| p.block_of(i.thread).0).collect();
        let mut sorted = blocks.clone();
        sorted.sort_unstable();
        prop_assert_eq!(blocks, sorted);
    }

    #[test]
    fn work_span_bounds_hold(desc in desc_strategy()) {
        let p = build(&desc);
        let ws = tflux_core::graph::work_span(&p, |_, _| 1.0);
        // span counts at least one instance per block (plus inlets), and
        // work counts everything
        prop_assert_eq!(ws.work, p.total_instances() as f64);
        prop_assert!(ws.span >= 2.0 * p.blocks().len() as f64); // inlet + >=1
        prop_assert!(ws.span <= ws.work);
        prop_assert!(ws.ideal_speedup() >= 1.0 - 1e-12);
    }
}
