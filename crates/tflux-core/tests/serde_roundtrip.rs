//! Serde round-trips: DDM programs and configuration types serialize and
//! deserialize losslessly (the harness persists them as run manifests).

use tflux_core::prelude::*;

fn sample() -> DdmProgram {
    let mut b = ProgramBuilder::new();
    let b1 = b.block();
    let src = b.thread(b1, ThreadSpec::scalar("src"));
    let work = b.thread(
        b1,
        ThreadSpec::new("work", 12).with_affinity(Affinity::RoundRobin),
    );
    let merge = b.thread(b1, ThreadSpec::new("merge", 6));
    b.arc(src, work, ArcMapping::Broadcast).unwrap();
    b.arc(work, merge, ArcMapping::Group { factor: 2 }).unwrap();
    let b2 = b.block();
    b.thread(
        b2,
        ThreadSpec::new("post", 4).with_affinity(Affinity::Fixed(KernelId(1))),
    );
    b.build().unwrap()
}

#[test]
fn program_json_roundtrip_preserves_semantics() {
    let p = sample();
    let json = serde_json::to_string(&p).unwrap();
    let q: DdmProgram = serde_json::from_str(&json).unwrap();

    assert_eq!(p.threads().len(), q.threads().len());
    assert_eq!(p.blocks().len(), q.blocks().len());
    assert_eq!(p.total_instances(), q.total_instances());
    for t in 0..p.threads().len() {
        let t = ThreadId(t as u32);
        assert_eq!(p.thread(t).name, q.thread(t).name);
        assert_eq!(p.thread(t).arity, q.thread(t).arity);
        assert_eq!(p.thread(t).affinity, q.thread(t).affinity);
        assert_eq!(p.thread(t).kind, q.thread(t).kind);
        assert_eq!(p.initial_rcs(t), q.initial_rcs(t));
        assert_eq!(p.consumers(t).len(), q.consumers(t).len());
        assert_eq!(p.block_of(t), q.block_of(t));
    }

    // the deserialized program executes identically
    let mut tp = CoreTsu::new(&p, 3, TsuConfig::default());
    let mut tq = CoreTsu::new(&q, 3, TsuConfig::default());
    let op = tflux_core::tsu::drain_sequential(&mut tp);
    let oq = tflux_core::tsu::drain_sequential(&mut tq);
    assert_eq!(op, oq);
}

#[test]
fn config_types_roundtrip() {
    let cfg = TsuConfig {
        capacity: 99,
        policy: SchedulingPolicy::LocalityFirst { steal: false },
        ..Default::default()
    };
    let json = serde_json::to_string(&cfg).unwrap();
    let back: TsuConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.capacity, 99);
    assert_eq!(back.policy, cfg.policy);

    let u = tflux_core::unroll::Unroll::new(1000, 16);
    let back: tflux_core::unroll::Unroll =
        serde_json::from_str(&serde_json::to_string(&u).unwrap()).unwrap();
    assert_eq!(back, u);
}
