//! N-thread dispatch/complete race over the lock-free ready-count table.
//!
//! Every racing thread attempts to dispatch *every* ready instance of a
//! wide fan-in program, so the RESIDENT→RUNNING CAS is exercised under
//! genuine contention: exactly one thread may win each instance, losers
//! must observe [`CoreError::NotResident`], the fan-in sink must become
//! newly-ready exactly once, and the decrement ledger (`rc_updates`)
//! must balance to the program's arc structure exactly — a lost or
//! duplicated `fetch_sub` shows up as an off-by-one here.
//!
//! Runs in the CI chaos job (and under ThreadSanitizer in the tsan job).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tflux_core::prelude::*;
use tflux_core::SyncMemory;

/// One round: `arity` producers reduced into a scalar sink, raced by
/// `racers` threads that all contend for every dispatch.
fn race_round(arity: u32, racers: usize, kernels: u32) {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    let p = b.build().unwrap();

    let sm = SyncMemory::new(&p, kernels, 0);
    let mut ready = Vec::new();
    let inlet = sm.armed_inlet();
    let ep = sm.dispatch(inlet).unwrap();
    sm.complete(inlet, ep, &mut ready).unwrap();
    assert_eq!(ready.len(), arity as usize);

    let wins = AtomicU64::new(0);
    let losses = AtomicU64::new(0);
    let newly: Mutex<Vec<Instance>> = Mutex::new(Vec::new());
    let (sm_ref, ready_ref) = (&sm, &ready);
    let (wins_ref, losses_ref, newly_ref) = (&wins, &losses, &newly);
    std::thread::scope(|s| {
        for _ in 0..racers {
            s.spawn(move || {
                let mut local = Vec::new();
                for &i in ready_ref {
                    // every racer tries every instance: the state CAS must
                    // admit exactly one winner, and reject the rest with a
                    // protocol error rather than a silent double-dispatch
                    match sm_ref.dispatch(i) {
                        Ok(ep) => {
                            wins_ref.fetch_add(1, Ordering::Relaxed);
                            sm_ref.complete(i, ep, &mut local).unwrap();
                            newly_ref.lock().unwrap().extend(local.drain(..));
                        }
                        Err(CoreError::NotResident(lost)) => {
                            assert_eq!(lost, i);
                            losses_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected dispatch error: {e}"),
                    }
                }
            });
        }
    });

    // exactly one winner per instance; everyone else saw NotResident
    assert_eq!(wins.load(Ordering::Relaxed), arity as u64);
    assert_eq!(
        losses.load(Ordering::Relaxed),
        (racers as u64 - 1) * arity as u64
    );

    // the 1→0 transition fired exactly once: the sink is newly-ready
    // once, never zero times (lost decrement) or twice (double-ready)
    let newly = newly.into_inner().unwrap();
    assert_eq!(newly, vec![Instance::scalar(sink)]);

    // decrement conservation: each work completion decrements the sink
    // (Reduction) and the block outlet (implicit All) exactly once
    let after_race = 2 * arity as u64;
    assert_eq!(sm.stats().rc_updates, after_race);
    let shard_sum: u64 = sm.shard_stats().iter().map(|s| s.rc_updates).sum();
    assert_eq!(shard_sum, after_race, "per-shard ledger must sum to total");

    // drain the rest of the program sequentially: sink, then outlet
    let mut frontier = newly;
    while let Some(i) = frontier.pop() {
        let ep = sm.dispatch(i).unwrap();
        sm.complete(i, ep, &mut frontier).unwrap();
    }
    assert!(sm.finished(), "program must drain to completion");
    assert!(!sm.is_poisoned());

    // fetch/complete pairing over the whole run (inlet + work + sink + outlet)
    let st = sm.stats();
    assert_eq!(st.completions as usize, p.total_instances());
    // sink completion adds one more outlet decrement
    assert_eq!(st.rc_updates, after_race + 1);
}

#[test]
fn racing_dispatchers_admit_exactly_one_winner() {
    race_round(256, 8, 4);
}

#[test]
fn race_rounds_across_shapes() {
    // seeded sweep of (arity, racers, kernels) shapes so the race is
    // exercised at different contention ratios and shard layouts
    for &(arity, racers, kernels) in &[
        (64, 2, 1),
        (96, 3, 2),
        (128, 4, 4),
        (200, 6, 3),
        (512, 8, 8),
    ] {
        race_round(arity, racers, kernels);
    }
}

#[test]
fn racing_batch_flushers_conserve_the_decrement_ledger() {
    // funnel-flush variant of the race: each flusher owns a disjoint slice
    // of the ready set, dispatches it, and retires it through
    // `complete_batch` — so concurrent `fetch_sub(n)` updates (and the
    // combining tree, which a 4-kernel reduction program builds) race on
    // the shared sink slot. Batching must conserve the logical ledger
    // exactly and admit exactly one n→0 publisher.
    let arity = 512u32;
    let flushers = 8usize;
    let batch = 16usize;
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    let p = b.build().unwrap();

    let sm = SyncMemory::new(&p, 4, 0);
    let mut ready = Vec::new();
    let inlet = sm.armed_inlet();
    let ep = sm.dispatch(inlet).unwrap();
    sm.complete(inlet, ep, &mut ready).unwrap();
    assert_eq!(ready.len(), arity as usize);

    let newly: Mutex<Vec<Instance>> = Mutex::new(Vec::new());
    let (sm_ref, newly_ref) = (&sm, &newly);
    std::thread::scope(|s| {
        for slice in ready.chunks(arity as usize / flushers) {
            s.spawn(move || {
                let mut out = Vec::new();
                let mut published = Vec::new();
                for sub in slice.chunks(batch) {
                    let mut ep = sm_ref.current_epoch();
                    for &i in sub {
                        ep = sm_ref.dispatch(i).unwrap();
                    }
                    // one flush per sub-batch: each covers up to `batch`
                    // logical decrements of the sink with one RMW
                    sm_ref.complete_batch(sub, ep, &mut out).unwrap();
                    published.append(&mut out);
                }
                newly_ref.lock().unwrap().extend(published);
            });
        }
    });

    // exactly one flusher observed the n→0 edge on the sink
    let newly = newly.into_inner().unwrap();
    assert_eq!(newly, vec![Instance::scalar(sink)]);

    // the logical ledger is invariant under batching: each work completion
    // still decrements the sink (Reduction) and the outlet (implicit All)
    // exactly once, same as the direct path in `race_round`
    let st = sm.stats();
    assert_eq!(st.rc_updates, 2 * arity as u64);
    let shard_sum: u64 = sm.shard_stats().iter().map(|s| s.rc_updates).sum();
    assert_eq!(
        shard_sum,
        2 * arity as u64,
        "per-shard ledger must sum to total"
    );
    // ...but the physical RMW count collapsed: each flush combines its
    // sub-batch into at most two RMWs (sink + outlet), and tree combining
    // can merge concurrent flushes further
    assert!(
        st.rc_rmws <= 2 * (arity as u64).div_ceil(batch as u64),
        "batching did not collapse RMWs: {} physical for {} logical",
        st.rc_rmws,
        st.rc_updates
    );

    // drain the rest of the program and audit the totals
    let mut frontier = newly;
    while let Some(i) = frontier.pop() {
        let ep = sm.dispatch(i).unwrap();
        sm.complete(i, ep, &mut frontier).unwrap();
    }
    assert!(sm.finished(), "program must drain to completion");
    assert!(!sm.is_poisoned());
    let st = sm.stats();
    assert_eq!(st.completions as usize, p.total_instances());
    assert_eq!(st.rc_updates, 2 * arity as u64 + 1);
}

#[test]
fn completions_are_exact_under_concurrent_completers() {
    // non-racing variant: partition the ready set, complete concurrently,
    // and audit the exactly-once property instance by instance
    let arity = 384u32;
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    let p = b.build().unwrap();

    let sm = SyncMemory::new(&p, 4, 0);
    let mut ready = Vec::new();
    let inlet = sm.armed_inlet();
    let ep = sm.dispatch(inlet).unwrap();
    sm.complete(inlet, ep, &mut ready).unwrap();

    let done: Mutex<Vec<Instance>> = Mutex::new(Vec::new());
    let (sm_ref, done_ref) = (&sm, &done);
    std::thread::scope(|s| {
        for chunk in ready.chunks(24) {
            s.spawn(move || {
                let mut newly = Vec::new();
                for &i in chunk {
                    let ep = sm_ref.dispatch(i).unwrap();
                    sm_ref.complete(i, ep, &mut newly).unwrap();
                }
                done_ref.lock().unwrap().extend(chunk.iter().copied());
                done_ref.lock().unwrap().extend(newly.drain(..));
            });
        }
    });

    // every work instance completed exactly once, plus the sink readied once
    let done = done.into_inner().unwrap();
    let mut counts: HashMap<Instance, usize> = HashMap::new();
    for i in &done {
        *counts.entry(*i).or_insert(0) += 1;
    }
    assert_eq!(done.len(), arity as usize + 1);
    assert!(counts.values().all(|&c| c == 1), "double-ready detected");
    assert_eq!(counts.get(&Instance::scalar(sink)), Some(&1));
    assert_eq!(sm.completions(), 1 + arity as u64); // inlet + work
}

#[test]
fn steal_heavy_thieves_claim_every_entry_exactly_once() {
    // steal-heavy Chase-Lev race: four thieves hammer one owner's deque
    // while the owner interleaves pushes with LIFO pops, and the tiny
    // base capacity forces repeated buffer growth under fire. Every
    // entry must be claimed exactly once across owner and thieves — a
    // lost CAS that still hands out the entry, or a growth that drops a
    // slot, shows up as a duplicate or a hole here. Runs under
    // ThreadSanitizer in the tsan job.
    use std::sync::atomic::AtomicBool;
    use tflux_core::ids::{Context, Epoch, Instance, ThreadId};
    use tflux_core::tsu::{Steal, StealDeque};

    let total: u32 = 20_000;
    let q = StealDeque::with_capacity(8);
    let done = AtomicBool::new(false);
    let claimed: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    let (q_ref, done_ref, claimed_ref) = (&q, &done, &claimed);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    match q_ref.steal() {
                        Steal::Success((i, ep)) => {
                            assert_eq!(ep, Epoch(3), "epoch tag lost on the steal path");
                            mine.push(i.context.0);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done_ref.load(Ordering::SeqCst) && q_ref.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                claimed_ref.lock().unwrap().extend(mine);
            });
        }
        // the owner: push everything, popping every third entry itself
        let t = ThreadId(0);
        let mut mine = Vec::new();
        for c in 0..total {
            q_ref.push(Instance::new(t, Context(c)), Epoch(3));
            if c % 3 == 0 {
                if let Some((i, _)) = q_ref.pop() {
                    mine.push(i.context.0);
                }
            }
        }
        while let Some((i, _)) = q_ref.pop() {
            mine.push(i.context.0);
        }
        done_ref.store(true, Ordering::SeqCst);
        claimed_ref.lock().unwrap().extend(mine);
    });
    let mut all = claimed.into_inner().unwrap();
    assert_eq!(all.len(), total as usize, "lost or duplicated entries");
    all.sort_unstable();
    for (want, got) in all.iter().enumerate() {
        assert_eq!(*got, want as u32, "entry claimed twice or never");
    }
}

#[test]
fn stale_epoch_completions_lose_the_rearm_race() {
    // streaming re-arm race: epoch 1 re-runs the whole graph while racers
    // replay every epoch-0 work completion with its (now stale) token.
    // Exactly-one-winner means every stale replay must be rejected — the
    // slot tag comparison classifies it as StaleEpoch once the slot is
    // re-armed under the new tag, or NotRunning while it is still
    // unloaded — and the ledger must show exactly two clean passes.
    let arity = 256u32;
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", arity));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    let p = b.build().unwrap();

    let sm = SyncMemory::new(&p, 4, 0);
    let mut ready = Vec::new();
    let inlet = sm.armed_inlet();
    let e0 = sm.dispatch(inlet).unwrap();
    sm.complete(inlet, e0, &mut ready).unwrap();
    let work_insts = ready.clone();
    let mut frontier = Vec::new();
    for &i in &work_insts {
        let ep = sm.dispatch(i).unwrap();
        assert_eq!(ep, e0);
        sm.complete(i, ep, &mut frontier).unwrap();
    }
    // bank a second pass before the wrap, so the outlet completion below
    // re-arms the graph into epoch 1
    let mut out = Vec::new();
    let e1 = sm.open_epoch(&mut out).unwrap();
    assert!(out.is_empty(), "epoch 0 still running; credit is banked");
    while let Some(i) = frontier.pop() {
        let ep = sm.dispatch(i).unwrap();
        sm.complete(i, ep, &mut frontier).unwrap();
        if sm.current_epoch() != e0 {
            break; // the outlet wrapped the table into epoch 1
        }
    }
    assert_eq!(sm.current_epoch(), e1);

    let stale_tagged = AtomicU64::new(0);
    let (sm_ref, stale_ref) = (&sm, &stale_tagged);
    std::thread::scope(|s| {
        // racers replay every epoch-0 completion with the stale token
        for _ in 0..4 {
            let work_insts = work_insts.clone();
            s.spawn(move || {
                let mut buf = Vec::new();
                for &i in &work_insts {
                    match sm_ref.complete(i, e0, &mut buf) {
                        Ok(()) => panic!("stale epoch-0 completion of {i} was accepted"),
                        Err(CoreError::StaleEpoch { epoch, current }) => {
                            assert_eq!(epoch, e0);
                            assert_eq!(current, e1);
                            stale_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        // before the block reloads (or after epoch 1 ran the
                        // instance) the slot rejects on phase instead of tag
                        Err(CoreError::NotRunning(lost)) => assert_eq!(lost, i),
                        Err(e) => panic!("unexpected rejection: {e}"),
                    }
                }
            });
        }
        // one driver runs epoch 1 to completion underneath the replays
        s.spawn(move || {
            let mut frontier = vec![sm_ref.armed_inlet()];
            let mut newly = Vec::new();
            while let Some(i) = frontier.pop() {
                let ep = sm_ref.dispatch(i).unwrap();
                assert_eq!(ep, e1);
                sm_ref.complete(i, ep, &mut newly).unwrap();
                frontier.append(&mut newly);
            }
        });
    });

    assert!(
        sm.finished(),
        "epoch 1 must drain despite the stale replays"
    );
    assert!(!sm.is_poisoned());
    // after the wrap the rejection is deterministic: the slot carries the
    // epoch-1 tag, so the stale token loses on the tag bits
    let mut buf = Vec::new();
    assert_eq!(
        sm.complete(work_insts[0], e0, &mut buf),
        Err(CoreError::StaleEpoch {
            epoch: e0,
            current: e1
        })
    );
    // cross-epoch corruption would break the ledger: exactly two passes'
    // worth of completions and decrements, nothing leaked from a replay
    let st = sm.stats();
    assert_eq!(st.completions as usize, 2 * p.total_instances());
    assert_eq!(st.rc_updates, 2 * (2 * arity as u64 + 1));
    assert_eq!(sm.epoch_ledger(), (2, 2, 0));
    sm.retire_epoch(e0).unwrap();
    sm.retire_epoch(e1).unwrap();
    assert_eq!(sm.epoch_ledger(), (2, 2, 2));
}
