//! Server chaos suite: seeded multi-tenant fault matrices against the
//! [`ProgramServer`].
//!
//! Four gates:
//! * the **chaos matrix** — per seed, a handful of generated programs with
//!   mixed fault sites share one pool; every tenant either completes
//!   bit-correct or returns its own typed error, never a neighbour's;
//! * the **poison regression** — a poisoned Synchronization Memory shard
//!   in one tenant never surfaces [`CoreError::SmPoisoned`] to any other
//!   tenant;
//! * the **leak regression** — 1000 admit/evict cycles (clean, panicked,
//!   and poisoned evictions) leave no arena resident;
//! * the **overload gate** — a saturated admission queue sheds load with a
//!   structured error, and no tenant the server *did* admit starves.
//!
//! The seed count honours `CHAOS_SEEDS` (default 200), so CI can sweep a
//! wide matrix in `--release` while local runs stay quick with
//! `CHAOS_SEEDS=20`.

mod common;

use common::{build_program, chaos_seeds, expected_checksum, instance_key, mix, Rng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tflux_core::error::CoreError;
use tflux_core::prelude::*;
use tflux_runtime::{
    BodyTable, FaultPlan, ProgramServer, RuntimeError, ServerConfig, Submission, Submit,
};

/// A single flat loop thread of the given arity — the smallest useful
/// tenant, used where the *server* and not the program is under test.
fn flat_program(arity: u32) -> (Arc<DdmProgram>, ThreadId) {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let t = b.thread(blk, ThreadSpec::new("w", arity));
    (Arc::new(b.build().unwrap()), t)
}

/// A generated checksum tenant: submission, checksum cell, expected value,
/// and the set of its application threads (for panic filtering).
fn checksum_tenant(seed: u64, plan: FaultPlan) -> (Submission, Arc<AtomicU64>, u64, HashSet<u32>) {
    let mut rng = Rng(mix(seed));
    let (program, app) = build_program(&mut rng);
    let checksum = Arc::new(AtomicU64::new(0));
    let mut bodies = BodyTable::new(&program);
    for &(t, _) in &app {
        let checksum = Arc::clone(&checksum);
        bodies.set(t, move |c| {
            checksum.fetch_add(mix(instance_key(c.instance)), Ordering::Relaxed);
        });
    }
    let expected = expected_checksum(&app);
    let app_threads: HashSet<u32> = app.iter().map(|&(t, _)| t.0).collect();
    (
        Submission::new(program, bodies).faults(plan),
        checksum,
        expected,
        app_threads,
    )
}

#[test]
fn chaos_matrix_isolates_every_fault_to_its_tenant() {
    const TENANTS: u64 = 6;
    let seeds = chaos_seeds();
    let mut ok_tenants = 0u64;
    let mut panicked_tenants = 0u64;

    for seed in 0..seeds {
        let mut rng = Rng(mix(seed ^ 0x5EED));
        let kernels = 2 + rng.below(3) as u32;
        let server = ProgramServer::start(
            ServerConfig::with_kernels(kernels)
                .max_resident(4)
                .queue_depth(16)
                .watchdog(Duration::from_secs(5)),
        );

        // half the tenants are panic-free so every matrix cell also proves
        // the benign fault sites never corrupt a co-resident result
        let mut waits = Vec::new();
        for t in 0..TENANTS {
            let panic_rate = if t % 2 == 0 {
                0
            } else {
                10 + rng.below(70) as u32
            };
            let plan = FaultPlan::new(mix(seed.wrapping_mul(31).wrapping_add(t)))
                .body_panic(panic_rate)
                .body_delay(rng.below(300) as u32, Duration::from_micros(100))
                .kernel_stall(rng.below(200) as u32, Duration::from_micros(200))
                .tub_publish_delay(rng.below(200) as u32, Duration::from_micros(50));
            let (sub, checksum, expected, app_threads) =
                checksum_tenant(seed.wrapping_mul(131).wrapping_add(t), plan);
            let adm = server
                .submit(sub.weight(1 + (t % 3) as u32), Submit::Block)
                .unwrap();
            waits.push((t, adm, checksum, expected, app_threads));
        }

        for (t, adm, checksum, expected, app_threads) in waits {
            match adm.wait() {
                Ok(_) => {
                    ok_tenants += 1;
                    assert_eq!(
                        checksum.load(Ordering::Relaxed),
                        expected,
                        "seed {seed} tenant {t}: completed tenant computed a wrong result"
                    );
                }
                Err(RuntimeError::BodyPanicked { panics }) => {
                    panicked_tenants += 1;
                    assert!(
                        !panics.is_empty(),
                        "seed {seed} tenant {t}: empty panic report"
                    );
                    // the surviving bodies are bit-correct: the checksum is
                    // missing exactly the panicked app instances, no more
                    let missing: u64 = panics
                        .iter()
                        .filter(|bp| app_threads.contains(&bp.instance.thread.0))
                        .map(|bp| mix(instance_key(bp.instance)))
                        .fold(0u64, u64::wrapping_add);
                    assert_eq!(
                        checksum.load(Ordering::Relaxed),
                        expected.wrapping_sub(missing),
                        "seed {seed} tenant {t}: panic eviction corrupted surviving bodies"
                    );
                }
                Err(other) => {
                    panic!("seed {seed} tenant {t}: untyped/unexpected failure: {other}")
                }
            }
        }
        assert_eq!(server.resident(), 0, "seed {seed}: arenas leaked");
        server.shutdown();
    }

    // the matrix must exercise both outcomes, not collapse into one
    // (a tiny CHAOS_SEEDS sweep may legitimately see no panics)
    assert!(ok_tenants > seeds, "only {ok_tenants} tenants succeeded");
    assert!(
        seeds < 20 || panicked_tenants > 0,
        "no tenant panicked despite injected panic rates"
    );
}

#[test]
fn epoch_stress_streams_survive_mid_stream_faults() {
    const EPOCHS: u64 = 4;
    const TENANTS: u64 = 5;
    let seeds = chaos_seeds();
    let mut clean_streams = 0u64;
    let mut evicted_streams = 0u64;

    for seed in 0..seeds {
        let mut rng = Rng(mix(seed ^ 0xE90C));
        let kernels = 2 + rng.below(3) as u32;
        let server = ProgramServer::start(
            ServerConfig::with_kernels(kernels)
                .max_resident(4)
                .queue_depth(16)
                .tsu(TsuConfig {
                    window: 2,
                    ..Default::default()
                })
                .watchdog(Duration::from_secs(5)),
        );

        // every tenant is a stream under benign mid-stream chaos (delays
        // and stalls landing in arbitrary epochs); one in three also
        // panics mid-stream and must be evicted with its epoch ledger
        // closed while the surviving streams keep wrapping cleanly
        let mut waits = Vec::new();
        for t in 0..TENANTS {
            let panic_rate = if t % 3 == 2 {
                5 + rng.below(40) as u32
            } else {
                0
            };
            let plan = FaultPlan::new(mix(seed.wrapping_mul(77).wrapping_add(t)))
                .body_panic(panic_rate)
                .body_delay(rng.below(300) as u32, Duration::from_micros(100))
                .kernel_stall(rng.below(200) as u32, Duration::from_micros(200))
                .tub_publish_delay(rng.below(200) as u32, Duration::from_micros(50));
            let (sub, checksum, expected, _) =
                checksum_tenant(seed.wrapping_mul(513).wrapping_add(t), plan);
            let adm = server.submit(sub.stream(EPOCHS), Submit::Block).unwrap();
            waits.push((t, adm, checksum, expected));
        }

        for (t, adm, checksum, expected) in waits {
            match adm.wait() {
                Ok(report) => {
                    clean_streams += 1;
                    assert_eq!(
                        report.tsu.epochs, EPOCHS,
                        "seed {seed} tenant {t}: stream stopped short of its epochs"
                    );
                    // every epoch replayed every body exactly once: the
                    // checksum is EPOCHS identical passes, no cross-epoch
                    // duplication or loss
                    assert_eq!(
                        checksum.load(Ordering::Relaxed),
                        expected.wrapping_mul(EPOCHS),
                        "seed {seed} tenant {t}: streamed checksum diverged"
                    );
                }
                Err(RuntimeError::BodyPanicked { panics }) => {
                    evicted_streams += 1;
                    assert!(
                        !panics.is_empty(),
                        "seed {seed} tenant {t}: empty panic report"
                    );
                }
                Err(other) => {
                    panic!("seed {seed} tenant {t}: untyped mid-stream failure: {other}")
                }
            }
        }
        assert_eq!(server.resident(), 0, "seed {seed}: streamed arenas leaked");
        server.shutdown();
    }

    assert!(clean_streams > 0, "no stream ever completed");
    assert!(
        seeds < 20 || evicted_streams > 0,
        "no stream was ever evicted despite injected panic rates"
    );
}

#[test]
fn poisoned_shard_never_surfaces_to_another_tenant() {
    const ROUNDS: u32 = 25;
    for round in 0..ROUNDS {
        let server = ProgramServer::start(
            ServerConfig::with_kernels(3)
                .max_resident(8)
                .watchdog(Duration::from_secs(5)),
        );

        // the victim runs long enough for the poison to land mid-flight
        let (p, w) = flat_program(16);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |_| std::thread::sleep(Duration::from_millis(20)));
        let victim = server
            .submit(Submission::new(p, bodies), Submit::Block)
            .unwrap();
        let victim_id = victim.id();

        // co-residents: clean checksum tenants plus one with its own,
        // *different* fault (a body panic) — its error must stay its own
        let mut clean = Vec::new();
        for t in 0..4u64 {
            let (sub, checksum, expected, _) =
                checksum_tenant(round as u64 * 1000 + t, FaultPlan::default());
            clean.push((
                server.submit(sub, Submit::Block).unwrap(),
                checksum,
                expected,
            ));
        }
        let (p, w) = flat_program(8);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |c| {
            if c.context.0 == 2 {
                panic!("own fault");
            }
        });
        let panicky = server
            .submit(Submission::new(p, bodies), Submit::Block)
            .unwrap();

        // poison the victim's Synchronization Memory while it is resident
        while !server.poison(victim_id) {
            std::thread::yield_now();
        }

        match victim.wait() {
            Err(RuntimeError::Protocol(CoreError::SmPoisoned)) => {}
            other => panic!(
                "round {round}: victim must die of SmPoisoned, got ok={}",
                other.is_ok()
            ),
        }
        // the panicky neighbour fails with *its* fault, never the poison
        match panicky.wait() {
            Err(RuntimeError::BodyPanicked { panics }) => {
                assert!(panics[0].message.contains("own fault"));
            }
            Err(RuntimeError::Protocol(CoreError::SmPoisoned)) => {
                panic!("round {round}: poison leaked into another tenant")
            }
            other => panic!(
                "round {round}: neighbour lost its own error, ok={}",
                other.is_ok()
            ),
        }
        // clean neighbours are bit-correct
        for (adm, checksum, expected) in clean {
            match adm.wait() {
                Ok(_) => assert_eq!(
                    checksum.load(Ordering::Relaxed),
                    expected,
                    "round {round}: poison perturbed a clean tenant"
                ),
                Err(e) => panic!("round {round}: clean tenant failed: {e}"),
            }
        }
        server.shutdown();
    }
}

#[test]
fn eviction_frees_the_arena_across_1000_cycles() {
    const CYCLES: u64 = 1000;
    let server = ProgramServer::start(
        ServerConfig::with_kernels(2)
            .max_resident(2)
            .watchdog(Duration::from_secs(5)),
    );
    for cycle in 0..CYCLES {
        let id = if cycle % 50 == 7 {
            // poisoned eviction
            let (p, w) = flat_program(4);
            let mut bodies = BodyTable::new(&p);
            bodies.set(w, |_| std::thread::sleep(Duration::from_millis(5)));
            let adm = server
                .submit(Submission::new(p, bodies), Submit::Block)
                .unwrap();
            let id = adm.id();
            while !server.poison(id) {
                std::thread::yield_now();
            }
            match adm.wait() {
                Err(RuntimeError::Protocol(CoreError::SmPoisoned)) => {}
                other => panic!("cycle {cycle}: expected SmPoisoned, ok={}", other.is_ok()),
            }
            id
        } else if cycle % 3 == 0 {
            // panic eviction
            let (p, w) = flat_program(2);
            let mut bodies = BodyTable::new(&p);
            bodies.set(w, |_| panic!("cycle fault"));
            let adm = server
                .submit(Submission::new(p, bodies), Submit::Block)
                .unwrap();
            let id = adm.id();
            match adm.wait() {
                Err(RuntimeError::BodyPanicked { panics }) => assert_eq!(panics.len(), 2),
                other => panic!("cycle {cycle}: expected BodyPanicked, ok={}", other.is_ok()),
            }
            id
        } else {
            // clean completion
            let (p, w) = flat_program(2);
            let hits = Arc::new(AtomicU64::new(0));
            let mut bodies = BodyTable::new(&p);
            {
                let hits = Arc::clone(&hits);
                bodies.set(w, move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            let adm = server
                .submit(Submission::new(p, bodies), Submit::Block)
                .unwrap();
            let id = adm.id();
            adm.wait().unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
            assert_eq!(hits.load(Ordering::Relaxed), 2, "cycle {cycle}");
            id
        };
        // the arena is gone: the evicted/finished id is no longer resident
        assert!(
            !server.poison(id),
            "cycle {cycle}: arena survived its eviction"
        );
    }
    assert_eq!(server.resident(), 0, "arenas leaked across cycles");
    assert_eq!(server.queued(), 0);
    // the server is still healthy after 1000 evictions
    let (p, w) = flat_program(4);
    let hits = Arc::new(AtomicU64::new(0));
    let mut bodies = BodyTable::new(&p);
    {
        let hits = Arc::clone(&hits);
        bodies.set(w, move |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    let adm = server
        .submit(Submission::new(p, bodies), Submit::Block)
        .unwrap();
    adm.wait().unwrap();
    assert_eq!(hits.load(Ordering::Relaxed), 4);
    server.shutdown();
}

#[test]
fn overload_sheds_structured_errors_and_admitted_tenants_never_starve() {
    const OFFERED: u64 = 120;
    let server = ProgramServer::start(
        ServerConfig::with_kernels(2)
            .max_resident(4)
            .queue_depth(8)
            .watchdog(Duration::from_secs(5)),
    );
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..OFFERED {
        // slow enough that submission outpaces draining and the queue fills
        let (p, w) = flat_program(4);
        let hits = Arc::new(AtomicU64::new(0));
        let mut bodies = BodyTable::new(&p);
        {
            let hits = Arc::clone(&hits);
            bodies.set(w, move |_| {
                hits.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            });
        }
        match server.submit(Submission::new(p, bodies), Submit::Reject) {
            Ok(adm) => admitted.push((i, adm, hits)),
            // shedding is structured and non-destructive: the queue really
            // was full, and the caller may retry or back off
            Err(tflux_runtime::SubmitError::Overloaded { queued, limit, .. }) => {
                shed += 1;
                assert_eq!(limit, 8);
                assert!(queued >= limit, "shed below the configured bound");
            }
            Err(e) => panic!("offer {i}: unexpected submit error: {e}"),
        }
    }
    assert!(shed > 0, "the load never saturated the queue");
    assert!(!admitted.is_empty());
    // every admitted tenant runs to completion — backpressure must never
    // starve a program the server accepted
    for (i, adm, hits) in admitted {
        let report = adm.wait().unwrap_or_else(|e| panic!("offer {i}: {e}"));
        assert_ne!(report.executed, 0, "offer {i} starved");
        assert_eq!(hits.load(Ordering::Relaxed), 4, "offer {i} lost bodies");
    }
    server.shutdown();
}
