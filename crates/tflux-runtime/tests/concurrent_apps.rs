//! Multi-tenant scale suite: hundreds of simultaneous DDM programs pushed
//! through one [`ProgramServer`] by concurrent submitters, with seeded
//! [`FaultPlan`]s targeting a known subset of them.
//!
//! The isolation contract under test: faults injected into K seeded
//! programs fail *exactly* those K — each with the correct per-program
//! typed [`RuntimeError`] naming the injected instance — while every other
//! co-resident program runs to a bit-correct result on the same kernel
//! pool. No cross-tenant contamination, no starvation, no hangs.

mod common;

use common::{build_program, expected_checksum, instance_key, mix, Rng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tflux_core::prelude::*;
use tflux_runtime::{
    BodyTable, FaultPlan, ProgramServer, RuntimeError, ServerConfig, Submission, Submit,
};

/// One program for the matrix: its submission (bodies fold a pure function
/// of each instance into a checksum), the checksum cell, the checksum a
/// fault-free run must produce, and — for seeded-faulty programs — the
/// instance whose body the plan panics.
fn make_submission(idx: u64, faulty: bool) -> (Submission, Arc<AtomicU64>, u64, Option<Instance>) {
    let mut rng = Rng(mix(idx));
    let (program, app) = build_program(&mut rng);

    let checksum = Arc::new(AtomicU64::new(0));
    let mut bodies = BodyTable::new(&program);
    for &(t, _) in &app {
        let checksum = Arc::clone(&checksum);
        bodies.set(t, move |c| {
            checksum.fetch_add(mix(instance_key(c.instance)), Ordering::Relaxed);
        });
    }
    let expected = expected_checksum(&app);

    // every tenant gets benign fault pressure (delays, stalls, late TUB
    // publishes); only the seeded-faulty subset gets a targeted panic
    let target = faulty.then(|| {
        let (t, arity) = app[rng.below(app.len() as u64) as usize];
        Instance::new(t, Context(rng.below(arity as u64) as u32))
    });
    let mut plan = FaultPlan::new(mix(idx ^ 0x00FA_CADE))
        .body_delay(rng.below(150) as u32, Duration::from_micros(50))
        .kernel_stall(rng.below(80) as u32, Duration::from_micros(100))
        .tub_publish_delay(rng.below(150) as u32, Duration::from_micros(30));
    if let Some(t) = target {
        plan = plan.panic_at(t);
    }

    let sub = Submission::new(program, bodies)
        .faults(plan)
        .weight(1 + (idx % 3) as u32);
    (sub, checksum, expected, target)
}

#[test]
fn hundreds_of_programs_fault_exactly_the_seeded_subset() {
    const PROGRAMS: u64 = 300;
    const FAULT_EVERY: u64 = 5; // K = 60 seeded-faulty programs
    const SUBMITTERS: u64 = 6;

    let server = ProgramServer::start(
        ServerConfig::with_kernels(4)
            .max_resident(16)
            .queue_depth(32)
            .watchdog(Duration::from_secs(10)),
    );

    let (ok_total, faulted_total) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = &server;
                s.spawn(move || {
                    // submit this stripe of the matrix, then collect it;
                    // Submit::Block applies backpressure when the queue
                    // fills, so submitters interleave with drains
                    let mut outcomes = Vec::new();
                    for idx in (t..PROGRAMS).step_by(SUBMITTERS as usize) {
                        let faulty = idx % FAULT_EVERY == 0;
                        let (sub, checksum, expected, target) = make_submission(idx, faulty);
                        let adm = server.submit(sub, Submit::Block).unwrap();
                        outcomes.push((idx, adm, checksum, expected, target));
                    }
                    let (mut ok, mut faulted) = (0u64, 0u64);
                    for (idx, adm, checksum, expected, target) in outcomes {
                        match (adm.wait(), target) {
                            // clean program: bit-correct, fully completed
                            (Ok(report), None) => {
                                ok += 1;
                                assert_eq!(
                                    checksum.load(Ordering::Relaxed),
                                    expected,
                                    "program {idx}: clean tenant computed a wrong result"
                                );
                                assert_ne!(report.executed, 0, "program {idx} starved");
                            }
                            // seeded-faulty program: the typed error names
                            // exactly the injected instance, and the
                            // checksum is missing exactly its contribution
                            (Err(RuntimeError::BodyPanicked { panics }), Some(hit)) => {
                                faulted += 1;
                                assert_eq!(
                                    panics.len(),
                                    1,
                                    "program {idx}: expected exactly the injected panic"
                                );
                                assert_eq!(panics[0].instance, hit, "program {idx}");
                                assert_eq!(
                                    checksum.load(Ordering::Relaxed),
                                    expected.wrapping_sub(mix(instance_key(hit))),
                                    "program {idx}: faulty tenant's surviving bodies corrupted"
                                );
                            }
                            (res, target) => panic!(
                                "program {idx}: wrong outcome (ok={}, seeded fault={})",
                                res.is_ok(),
                                target.is_some()
                            ),
                        }
                    }
                    (ok, faulted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(a, b), (c, d)| (a + c, b + d))
    });

    let k = (PROGRAMS + FAULT_EVERY - 1) / FAULT_EVERY;
    assert_eq!(faulted_total, k, "exactly the seeded subset must fault");
    assert_eq!(ok_total, PROGRAMS - k, "every other program must succeed");
    assert_eq!(server.resident(), 0, "arenas leaked past completion");
    assert_eq!(server.queued(), 0);
    server.shutdown();
}

#[test]
fn seeded_faults_replay_identically_through_the_server() {
    // same seed, same program, two server runs: the same instances panic —
    // a CI failure in the matrix above reproduces locally from its index
    for seed in [3u64, 11, 29] {
        let outcomes: Vec<Vec<(u32, u32)>> = (0..2)
            .map(|_| {
                let mut rng = Rng(mix(seed));
                let (program, app) = build_program(&mut rng);
                let mut bodies = BodyTable::new(&program);
                for &(t, _) in &app {
                    bodies.set(t, |_| {});
                }
                let plan = FaultPlan::new(seed).body_panic(250);
                let server = ProgramServer::start(ServerConfig::with_kernels(2));
                let adm = server
                    .submit(Submission::new(program, bodies).faults(plan), Submit::Block)
                    .unwrap();
                let v = match adm.wait() {
                    Ok(_) => Vec::new(),
                    Err(RuntimeError::BodyPanicked { panics }) => {
                        let mut v: Vec<(u32, u32)> = panics
                            .iter()
                            .map(|bp| (bp.instance.thread.0, bp.instance.context.0))
                            .collect();
                        v.sort_unstable();
                        v
                    }
                    Err(other) => panic!("seed {seed}: untyped/unexpected failure: {other}"),
                };
                server.shutdown();
                v
            })
            .collect();
        assert_eq!(
            outcomes[0], outcomes[1],
            "seed {seed}: two runs of the same plan diverged"
        );
    }
}
