//! Chaos property suite: randomly generated DDM programs × seeded fault
//! plans.
//!
//! The contract under test: whatever a deterministic [`FaultPlan`] throws
//! at the runtime — injected body panics, delays, kernel stalls, late TUB
//! publishes, lost emulator wakeups, drain jitter — every run either
//! finishes with the correct result or returns a *typed*
//! [`RuntimeError`], within the watchdog bound. No hangs, no silent
//! corruption, no unwinding out of `Runtime::run_with`.
//!
//! Both the programs and the fault plans derive from a per-run seed, so a
//! CI failure reproduces locally from the seed printed in the assertion.
//! The matrix width honours the `CHAOS_SEEDS` environment variable
//! (default 200), so CI can widen the sweep without a recompile.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tflux_core::prelude::*;
use tflux_runtime::{BodyTable, FaultPlan, RetryPolicy, Runtime, RuntimeConfig, RuntimeError};

/// splitmix64 finalizer — same mixing discipline as `FaultPlan`, reused
/// here for program generation and body checksums.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tiny deterministic generator for program shapes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        mix(self.0)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn instance_key(i: Instance) -> u64 {
    ((i.thread.0 as u64) << 32) | i.context.0 as u64
}

/// Generate a layered program: 1–2 blocks, each 1–3 layers of 1–6-wide
/// loop threads, consecutive layers joined all-to-all. Returns the program
/// and its application threads with their arities.
fn build_program(rng: &mut Rng) -> (DdmProgram, Vec<(ThreadId, u32)>) {
    let mut b = ProgramBuilder::new();
    let mut app = Vec::new();
    let blocks = 1 + rng.below(2);
    for bi in 0..blocks {
        let blk = b.block();
        let layers = 1 + rng.below(3);
        let mut prev: Option<ThreadId> = None;
        for li in 0..layers {
            let arity = 1 + rng.below(6) as u32;
            let t = b.thread(blk, ThreadSpec::new(format!("b{bi}l{li}"), arity));
            if let Some(p) = prev {
                b.arc(p, t, ArcMapping::All).unwrap();
            }
            app.push((t, arity));
            prev = Some(t);
        }
    }
    (b.build().unwrap(), app)
}

#[test]
fn chaos_matrix_never_hangs_and_never_lies() {
    const WATCHDOG: Duration = Duration::from_secs(5);
    let runs = common::chaos_seeds();
    let mut ok_runs = 0u64;
    let mut panicked_runs = 0u64;

    for seed in 0..runs {
        let mut rng = Rng(mix(seed));
        let (program, app) = build_program(&mut rng);

        // alternate scheduling policies and retry regimes across the matrix
        let kernels = 1 + rng.below(3) as u32;
        let policy = if seed % 2 == 0 {
            SchedulingPolicy::GlobalFifo
        } else {
            SchedulingPolicy::LocalityFirst { steal: true }
        };
        let with_retry = seed % 4 >= 2;
        let retry = if with_retry {
            RetryPolicy::attempts(3)
        } else {
            RetryPolicy::default()
        };

        // half the runs are panic-free so the suite also proves the benign
        // fault sites (delays, jitter, lost bells) never corrupt a result
        let panic_rate = if seed % 2 == 0 {
            0
        } else {
            10 + rng.below(70) as u32
        };
        let plan = FaultPlan::new(mix(seed ^ 0xC0FFEE))
            .body_panic(panic_rate)
            .body_delay(rng.below(300) as u32, Duration::from_micros(100))
            .kernel_stall(rng.below(200) as u32, Duration::from_micros(200))
            .tub_publish_delay(rng.below(200) as u32, Duration::from_micros(50))
            .drain_jitter(rng.below(200) as u32, Duration::from_micros(100))
            .dropped_bell(rng.below(400) as u32);

        // every body folds a pure function of its instance into a checksum;
        // a made-up or double-counted completion would show up here.
        // Injected panics fire *before* the body runs, so a retried attempt
        // contributes exactly once on success — the bodies are honestly
        // idempotent.
        let checksum = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&program);
        for &(t, _) in &app {
            let checksum = &checksum;
            bodies.set(t, move |c| {
                checksum.fetch_add(mix(instance_key(c.instance)), Ordering::Relaxed);
            });
            if with_retry {
                bodies.mark_idempotent(t);
            }
        }
        let expected: u64 = app
            .iter()
            .flat_map(|&(t, arity)| {
                (0..arity).map(move |c| mix(instance_key(Instance::new(t, Context(c)))))
            })
            .fold(0u64, u64::wrapping_add);

        let config = RuntimeConfig::with_kernels(kernels)
            .tsu(TsuConfig {
                capacity: 0,
                policy,
                ..Default::default()
            })
            .retry(retry)
            .watchdog(WATCHDOG);

        let start = Instant::now();
        let result = Runtime::new(config).run_with(&program, &bodies, &plan);
        let elapsed = start.elapsed();
        assert!(
            elapsed < WATCHDOG + Duration::from_secs(5),
            "seed {seed}: run exceeded the watchdog bound ({elapsed:?})"
        );

        match result {
            Ok(report) => {
                ok_runs += 1;
                assert_eq!(
                    checksum.load(Ordering::Relaxed),
                    expected,
                    "seed {seed}: completed run computed a wrong result"
                );
                assert_eq!(
                    report.tsu.completions as usize,
                    program.total_instances(),
                    "seed {seed}: completion count off"
                );
            }
            Err(RuntimeError::BodyPanicked { panics }) => {
                panicked_runs += 1;
                assert!(!panics.is_empty(), "seed {seed}: empty panic report");
            }
            Err(other) => panic!("seed {seed}: untyped/unexpected failure: {other}"),
        }
    }

    // the matrix must exercise both outcomes, not collapse into one
    // (a tiny CHAOS_SEEDS sweep may legitimately see no panics)
    assert!(ok_runs > runs / 4, "only {ok_runs}/{runs} runs succeeded");
    assert!(
        runs < 20 || panicked_runs > 0,
        "no run panicked despite injected panic rates"
    );
}

#[test]
fn fault_plan_replays_identically() {
    // same seed, same program, two runs: the same instances panic
    for seed in [1u64, 7, 42] {
        let outcomes: Vec<Vec<(u32, u32)>> = (0..2)
            .map(|_| {
                let mut b = ProgramBuilder::new();
                let blk = b.block();
                let _w = b.thread(blk, ThreadSpec::new("w", 24));
                let p = b.build().unwrap();
                let bodies = BodyTable::new(&p);
                let plan = FaultPlan::new(seed).body_panic(150);
                match Runtime::new(RuntimeConfig::with_kernels(2)).run_with(&p, &bodies, &plan) {
                    Ok(_) => Vec::new(),
                    Err(RuntimeError::BodyPanicked { panics }) => {
                        let mut v: Vec<(u32, u32)> = panics
                            .iter()
                            .map(|bp| (bp.instance.thread.0, bp.instance.context.0))
                            .collect();
                        v.sort_unstable();
                        v
                    }
                    Err(other) => panic!("seed {seed}: {other}"),
                }
            })
            .collect();
        assert_eq!(
            outcomes[0], outcomes[1],
            "seed {seed}: two runs of the same plan diverged"
        );
    }
}

#[test]
fn poisoned_producer_yields_forensic_stall_report() {
    // A consumer whose producer panics until its retries are exhausted and
    // is then poisoned: the program genuinely deadlocks, the watchdog
    // fires, and the report must name the stuck consumer and its remaining
    // ready count.
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let src = b.thread(blk, ThreadSpec::scalar("src"));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(src, sink, ArcMapping::All).unwrap();
    let program = b.build().unwrap();

    let mut bodies = BodyTable::new(&program);
    bodies.set_idempotent(src, |_| panic!("producer keeps failing"));

    let config = RuntimeConfig::with_kernels(2)
        .retry(RetryPolicy::attempts(2).poison_on_exhaust(true))
        .watchdog(Duration::from_millis(100));
    let err = Runtime::new(config).run(&program, &bodies).unwrap_err();

    let report = match err {
        RuntimeError::Stalled { report } => report,
        other => panic!("expected a stall, got {other}"),
    };
    let sink_inst = Instance::scalar(sink);
    let src_inst = Instance::scalar(src);

    // the stuck consumer, with its remaining ready count
    let sink_row = report
        .waiting
        .iter()
        .find(|w| w.instance == sink_inst)
        .unwrap_or_else(|| panic!("sink not in waiting set: {report}"));
    assert_eq!(sink_row.remaining, 1);
    // the poisoned producer never completed: dispatched, still in flight
    assert!(
        report.in_flight.iter().any(|f| f.instance == src_inst),
        "poisoned producer not in flight: {report}"
    );
    // the panic record shows both attempts were consumed
    assert_eq!(report.panics.len(), 1);
    assert_eq!(report.panics[0].instance, src_inst);
    assert_eq!(report.panics[0].attempts, 2);
    // exactly one instance was poisoned, and the counters say so
    let poisoned: u64 = report.kernels.iter().map(|k| k.poisoned).sum();
    assert_eq!(poisoned, 1);
    // the pretty-printer names the stuck instance for humans
    let text = format!("{report}");
    assert!(text.contains(&format!("{sink_inst}")), "{text}");
    assert!(text.contains("needs 1 more completion"), "{text}");
}
