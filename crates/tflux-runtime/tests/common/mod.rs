//! Helpers shared by the multi-tenant integration suites: a deterministic
//! program generator and the checksum discipline its bodies use.
//!
//! Everything here derives from a per-run seed, so a CI failure reproduces
//! locally from the seed printed in the assertion.

#![allow(dead_code)] // not every suite uses every helper

use std::sync::Arc;
use tflux_core::prelude::*;

/// splitmix64 finalizer — same mixing discipline as `FaultPlan`, reused
/// for program generation and body checksums.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tiny deterministic generator for program shapes.
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        mix(self.0)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The pure per-instance key the checksum bodies fold.
pub fn instance_key(i: Instance) -> u64 {
    ((i.thread.0 as u64) << 32) | i.context.0 as u64
}

/// Generate a layered program: 1–2 blocks, each 1–3 layers of 1–6-wide
/// loop threads, consecutive layers joined all-to-all. Returns the program
/// and its application threads with their arities.
pub fn build_program(rng: &mut Rng) -> (Arc<DdmProgram>, Vec<(ThreadId, u32)>) {
    let mut b = ProgramBuilder::new();
    let mut app = Vec::new();
    let blocks = 1 + rng.below(2);
    for bi in 0..blocks {
        let blk = b.block();
        let layers = 1 + rng.below(3);
        let mut prev: Option<ThreadId> = None;
        for li in 0..layers {
            let arity = 1 + rng.below(6) as u32;
            let t = b.thread(blk, ThreadSpec::new(format!("b{bi}l{li}"), arity));
            if let Some(p) = prev {
                b.arc(p, t, ArcMapping::All).unwrap();
            }
            app.push((t, arity));
            prev = Some(t);
        }
    }
    (Arc::new(b.build().unwrap()), app)
}

/// The checksum a fault-free run of `app` must produce.
pub fn expected_checksum(app: &[(ThreadId, u32)]) -> u64 {
    app.iter()
        .flat_map(|&(t, arity)| {
            (0..arity).map(move |c| mix(instance_key(Instance::new(t, Context(c)))))
        })
        .fold(0u64, u64::wrapping_add)
}

/// How many seeds the chaos matrices sweep: `CHAOS_SEEDS` from the
/// environment, defaulting to 200 (the CI gate).
pub fn chaos_seeds() -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(200)
}
