//! Property tests of the threaded TFluxSoft runtime: random layered DAG
//! programs executed on real kernel threads run every instance exactly once
//! and never violate producer→consumer ordering, regardless of thread
//! interleaving.

use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use tflux_core::prelude::*;
use tflux_runtime::{BodyTable, Runtime, RuntimeConfig};

#[derive(Debug, Clone)]
struct Desc {
    layers: Vec<u32>, // arity per layer, connected with a random mapping
    maps: Vec<u8>,
    kernels: u32,
    tub_segments: usize,
    blocks: u32,
}

fn desc() -> impl Strategy<Value = Desc> {
    (
        prop::collection::vec(1u32..12, 1..5),
        prop::collection::vec(0u8..3, 0..5),
        1u32..5,
        1usize..5,
        1u32..3,
    )
        .prop_map(|(layers, maps, kernels, tub_segments, blocks)| Desc {
            layers,
            maps,
            kernels,
            tub_segments,
            blocks,
        })
}

fn build(d: &Desc) -> DdmProgram {
    let mut b = ProgramBuilder::new();
    for _ in 0..d.blocks {
        let blk = b.block();
        let mut prev: Option<(ThreadId, u32)> = None;
        for (li, &arity) in d.layers.iter().enumerate() {
            let t = b.thread(blk, ThreadSpec::new(format!("l{li}"), arity));
            if let Some((pt, pa)) = prev {
                let sel = d.maps.get(li - 1).copied().unwrap_or(0);
                let mapping = match sel {
                    1 if pa == arity => ArcMapping::OneToOne,
                    2 if pa == arity => ArcMapping::Offset(1),
                    _ => ArcMapping::All,
                };
                b.arc(pt, t, mapping).unwrap();
            }
            prev = Some((t, arity));
        }
    }
    b.build().unwrap()
}

proptest! {
    // Thread spawning is expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_instance_executes_exactly_once(d in desc()) {
        let p = build(&d);
        let seq = AtomicUsize::new(0);
        let log: Mutex<Vec<(Instance, usize)>> = Mutex::new(Vec::new());
        let mut bodies = BodyTable::new(&p);
        for t in 0..p.threads().len() {
            let t = ThreadId(t as u32);
            let seq = &seq;
            let log = &log;
            bodies.set(t, move |c| {
                let n = seq.fetch_add(1, Ordering::SeqCst);
                log.lock().push((c.instance, n));
            });
        }
        let report = Runtime::new(
            RuntimeConfig::with_kernels(d.kernels)
                .tub_segments(d.tub_segments)
                .watchdog(Duration::from_secs(20)),
        )
        .run(&p, &bodies)
        .expect("run failed");
        drop(bodies);

        let log = log.into_inner();
        prop_assert_eq!(log.len(), p.total_instances());
        prop_assert_eq!(report.tsu.completions as usize, p.total_instances());

        // exactly once
        let mut seen = HashMap::new();
        for (i, _) in &log {
            *seen.entry(*i).or_insert(0) += 1;
        }
        prop_assert!(seen.values().all(|&v| v == 1));

        // ordering: producers before consumers (by body start sequence;
        // bodies are serialized through the SeqCst counter so sequence
        // numbers are a valid happens-before witness for completion order)
        let pos: HashMap<Instance, usize> = log.iter().cloned().collect();
        for t in 0..p.threads().len() {
            let t = ThreadId(t as u32);
            let pa = p.thread(t).arity;
            for arc in p.consumers(t) {
                let ca = p.thread(arc.consumer).arity;
                for pc in 0..pa {
                    let pi = Instance::new(t, Context(pc));
                    for cc in arc.mapping.consumers(Context(pc), pa, ca) {
                        let ci = Instance::new(arc.consumer, cc);
                        prop_assert!(pos[&pi] < pos[&ci],
                            "{pi} started after its consumer {ci}");
                    }
                }
            }
        }
    }
}

#[test]
fn large_fan_out_under_contention() {
    // stress: 2000 tiny DThreads over 4 kernels and a single-segment TUB
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("work", 2000));
    let sink = b.thread(blk, ThreadSpec::scalar("sink"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    let p = b.build().unwrap();

    let count = AtomicUsize::new(0);
    let mut bodies = BodyTable::new(&p);
    bodies.set(work, |_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    let report = Runtime::new(RuntimeConfig::with_kernels(4).tub_segments(1))
        .run(&p, &bodies)
        .unwrap();
    assert_eq!(count.load(Ordering::Relaxed), 2000);
    // App completions take the direct-update path; only the block
    // transitions (inlet + outlet per block) go through the TUB
    assert_eq!(report.tub.pushes, 2 * report.tsu.blocks_loaded);
}

#[test]
fn deep_chain_sequentializes_correctly() {
    // a 200-deep scalar chain: strictly sequential despite 4 kernels
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let mut prev = b.thread(blk, ThreadSpec::scalar("t0"));
    let mut chain = vec![prev];
    for i in 1..200 {
        let t = b.thread(blk, ThreadSpec::scalar(format!("t{i}")));
        b.arc(prev, t, ArcMapping::Scalar).unwrap();
        prev = t;
        chain.push(t);
    }
    let p = b.build().unwrap();
    let order: Mutex<Vec<ThreadId>> = Mutex::new(Vec::new());
    let mut bodies = BodyTable::new(&p);
    for &t in &chain {
        let order = &order;
        bodies.set(t, move |c| order.lock().push(c.instance.thread));
    }
    Runtime::new(RuntimeConfig::with_kernels(4))
        .run(&p, &bodies)
        .unwrap();
    drop(bodies);
    let order = order.into_inner();
    assert_eq!(order, chain);
}

#[test]
fn rerunning_same_program_is_deterministic_in_outcome() {
    let mut b = ProgramBuilder::new();
    let blk = b.block();
    let work = b.thread(blk, ThreadSpec::new("w", 64));
    let sink = b.thread(blk, ThreadSpec::scalar("s"));
    b.arc(work, sink, ArcMapping::Reduction).unwrap();
    let p = b.build().unwrap();

    let mut results = Vec::new();
    for _ in 0..5 {
        let sum = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let sum_ref = &sum;
        let done_ref = &done;
        let mut bodies = BodyTable::new(&p);
        bodies.set(work, move |c| {
            sum_ref.fetch_add((c.context.0 as usize).pow(2), Ordering::Relaxed);
        });
        bodies.set(sink, move |_| {
            done_ref.store(sum_ref.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        Runtime::new(RuntimeConfig::with_kernels(3))
            .run(&p, &bodies)
            .unwrap();
        drop(bodies);
        results.push(done.load(Ordering::Relaxed));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(results[0], (0..64usize).map(|i| i * i).sum());
}
