//! The Kernel loop (Fig. 2 of the paper).
//!
//! A kernel is "a simple user-level process" — here an OS thread — that
//! alternates between the *FindReadyThread* loop and application DThread
//! code. Fetching goes through the shared [`SoftTsu`]'s [`TsuBackend`]
//! impl: own ready queue first, then (policy permitting) stealing from the
//! most loaded sibling.
//!
//! Completion is split by DThread kind. *Application* completions take the
//! direct-update path: the kernel runs the Post-Processing Phase itself
//! through the lock-free Synchronization Memory and pushes newly-ready
//! instances on their owners' queues — no TUB hop, no emulator round-trip.
//! *Inlet*/*Outlet* completions (block loading and unloading) are published
//! into the segmented [TUB](crate::tub::Tub) for the TSU Emulator, which
//! serializes block transitions and keeps the watchdog.

use crate::body::{BodyCtx, BodyTable};
use crate::faults::{BodyFault, FaultInjector};
use crate::runtime::RetryPolicy;
use crate::soft::SoftTsu;
use crate::stats::KernelStats;
use crate::tub::Tub;
use parking_lot::Mutex;
use std::time::Duration;
use tflux_core::ids::{Instance, KernelId};
use tflux_core::thread::ThreadKind;
use tflux_core::tsu::{CompletionFunnel, FetchResult, ProgramHandle, TsuBackend};

/// A panic captured from a DThread body. The kernel contains the panic,
/// retries it if the body opted in as idempotent and the
/// [`RetryPolicy`] allows, records the final failure
/// here, and (unless the policy poisons exhausted instances) still
/// publishes the completion so the program drains instead of deadlocking;
/// the runtime reports the failure after the run (see
/// [`RuntimeError::BodyPanicked`](crate::RuntimeError)).
#[derive(Debug, Clone)]
pub struct BodyPanic {
    /// The instance whose body panicked.
    pub instance: Instance,
    /// The panic payload of the last attempt, stringified.
    pub message: String,
    /// How many attempts were made (1 = no retries).
    pub attempts: u32,
}

/// Shared collector for body panics across kernels.
pub type PanicSink = Mutex<Vec<BodyPanic>>;

/// How long a stealing kernel blocks on its own queue between victim
/// rescans.
const STEAL_RESCAN: Duration = Duration::from_millis(1);

/// Flush a kernel's completion funnel through the shared TSU, containing
/// unwinds exactly like the direct completion path does. `Err(())` means
/// the kernel must break out of its loop (the Synchronization Memory was
/// poisoned by a panic mid-flush); a typed protocol error is recorded for
/// the emulator and the kernel keeps going — its next fetch surfaces the
/// abort.
pub(crate) fn flush_funnel<P: ProgramHandle>(
    funnel: &mut CompletionFunnel,
    backend: &mut &SoftTsu<P>,
    tub: &Tub,
    scratch: &mut Vec<Instance>,
) -> Result<(), ()> {
    if funnel.is_empty() {
        return Ok(());
    }
    let soft: &SoftTsu<P> = backend;
    let flushed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        funnel.flush(backend, scratch)
    }));
    match flushed {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => {
            soft.record_protocol(e);
            tub.kick();
            Ok(())
        }
        Err(_) => {
            soft.poison();
            soft.record_protocol(tflux_core::error::CoreError::SmPoisoned);
            tub.kick();
            Err(())
        }
    }
}

/// Outcome of one body execution under panic containment and retry.
pub(crate) struct BodyOutcome {
    /// Whether the completion should be published to the TSU. `false`
    /// means the retry policy poisoned the instance on exhaust.
    pub publish: bool,
    /// Retries consumed before the final attempt.
    pub retries: u64,
}

/// Run one DThread body with panic containment: a panicking idempotent
/// body is re-dispatched up to the retry budget; the final failure lands
/// in `panics` and the completion is still published unless the policy
/// poisons exhausted instances. Shared by the single-program kernel loop
/// below and the multi-program server's kernel pool.
pub(crate) fn execute_body<F: FaultInjector>(
    kernel: KernelId,
    instance: Instance,
    bodies: &BodyTable<'_>,
    panics: &PanicSink,
    injector: &F,
    retry: RetryPolicy,
) -> BodyOutcome {
    let ctx = BodyCtx {
        instance,
        context: instance.context,
        kernel,
    };
    let mut retries = 0u64;
    let mut attempt = 0u32;
    let publish = loop {
        attempt += 1;
        let fault = injector.before_body(kernel, instance, attempt);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match fault {
                BodyFault::Pass => {}
                BodyFault::Delay(d) => std::thread::sleep(d),
                BodyFault::Panic => std::panic::panic_any(format!(
                    "injected fault: body panic at {instance} (attempt {attempt})"
                )),
            }
            (bodies.get(instance.thread))(&ctx)
        }));
        match result {
            Ok(()) => break true,
            Err(payload) => {
                if bodies.idempotent(instance.thread) && attempt < retry.max_attempts {
                    retries += 1;
                    continue;
                }
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                panics.lock().push(BodyPanic {
                    instance,
                    message,
                    attempts: attempt,
                });
                break !retry.poison_on_exhaust;
            }
        }
    };
    BodyOutcome { publish, retries }
}

/// Run one kernel to completion. Returns this kernel's counters.
///
/// The loop mirrors Fig. 2: the first instance a kernel receives is (for
/// kernel 0) the first block's Inlet; every completion jumps back to the
/// FindReadyThread point; the Exit signal raised after the last block's
/// Outlet "forces its Kernel to exit".
pub fn run_kernel<P: ProgramHandle, F: FaultInjector>(
    kernel: KernelId,
    soft: &SoftTsu<P>,
    bodies: &BodyTable<'_>,
    tub: &Tub,
    panics: &PanicSink,
    injector: &F,
    retry: RetryPolicy,
) -> KernelStats {
    let mut executed = 0u64;
    let mut retries = 0u64;
    let mut poisoned = 0u64;
    let mut iterations = 0u64;
    let mut scratch: Vec<Instance> = Vec::new();
    let mut backend = soft; // &SoftTsu is the TsuBackend
                            // App completions park here under FlushPolicy::Batch and reach the SM
                            // as combined batches; under the default Direct policy the funnel is
                            // bypassed entirely.
    let mut funnel = CompletionFunnel::new(soft.flush_policy());
    let queue = soft.queue(soft.queue_index(kernel));
    let gm = soft.graph();

    loop {
        iterations += 1;
        if let Some(d) = injector.kernel_stall(kernel, iterations) {
            std::thread::sleep(d);
        }
        // non-blocking trait fetch (own queue, then steal); fall back to a
        // blocking pop on the own queue when nothing is runnable anywhere —
        // bounded for stealers, which must periodically rescan victims
        let fetched = match backend.fetch(kernel) {
            Ok(FetchResult::Wait) => {
                // flush before blocking: the parked decrements may be the
                // very ones this kernel (or a sibling) is waiting on
                if flush_funnel(&mut funnel, &mut backend, tub, &mut scratch).is_err() {
                    break;
                }
                if soft.stealing() {
                    queue.pop_timeout(STEAL_RESCAN)
                } else {
                    queue.pop()
                }
            }
            Ok(r) => r,
            Err(e) => {
                // poisoned SM or a scheduler protocol bug: abort the run
                soft.record_protocol(e);
                tub.kick();
                break;
            }
        };
        let (instance, epoch) = match fetched {
            FetchResult::Thread(i, ep) => (i, ep),
            FetchResult::Exit => break,
            FetchResult::Wait => continue,
        };

        // Direct closure call: kernel→DThread transition without OS
        // involvement, as in §3.2. A panicking body is contained: if the
        // body is idempotent it is re-dispatched up to the retry budget;
        // otherwise the completion is still published (the alternative is a
        // deadlocked program, unless the policy poisons the instance on
        // purpose) and the failure is reported after the run.
        let outcome = execute_body(kernel, instance, bodies, panics, injector, retry);
        retries += outcome.retries;
        executed += 1;
        if !outcome.publish {
            poisoned += 1;
            continue;
        }
        match gm.kind(instance.thread) {
            // direct update: post-process on this kernel's thread. An
            // unwind out of the Post-Processing Phase has already poisoned
            // the Synchronization Memory (its drop-guard latches the
            // flag); containing it here lets this kernel surface the typed
            // error and exit cleanly instead of dying mid-update.
            ThreadKind::App if funnel.batching() => {
                // park the completion; a full funnel flushes as one batch
                if funnel.push(instance, epoch)
                    && flush_funnel(&mut funnel, &mut backend, tub, &mut scratch).is_err()
                {
                    break;
                }
            }
            ThreadKind::App => {
                let completed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    backend.complete(instance, epoch, &mut scratch)
                }));
                match completed {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        soft.record_protocol(e);
                        tub.kick(); // wake the emulator to abort the run
                    }
                    Err(_) => {
                        soft.poison();
                        soft.record_protocol(tflux_core::error::CoreError::SmPoisoned);
                        tub.kick();
                        break;
                    }
                }
            }
            // block transitions stay serialized through the emulator; the
            // funnel flushes first so the emulator's post-processing sees
            // every App decrement this kernel produced
            ThreadKind::Inlet | ThreadKind::Outlet => {
                if flush_funnel(&mut funnel, &mut backend, tub, &mut scratch).is_err() {
                    break;
                }
                tub.push_with(instance, epoch, injector);
            }
        }
    }
    // drain anything still parked (e.g. a break on a recorded protocol
    // error) so no completion is silently dropped; failures here have
    // already been recorded by the helper
    let _ = flush_funnel(&mut funnel, &mut backend, tub, &mut scratch);
    KernelStats {
        executed,
        wait_ns: queue.wait_nanos(),
        blocked_pops: queue.blocked_pops(),
        steals: soft.steals_of(kernel),
        steal_misses: soft.steal_misses_of(kernel),
        steal_races: soft.steal_races_of(kernel),
        retries,
        poisoned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyTable;
    use crate::faults::NoFaults;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tflux_core::prelude::*;
    use tflux_core::tsu::TsuConfig;

    /// A minimal emulator stand-in: drain the TUB, post-process block
    /// transitions, shut the queues down when the program finishes.
    fn drive(soft: &SoftTsu<&DdmProgram>, tub: &Tub) {
        let mut batch = Vec::new();
        let mut scratch = Vec::new();
        while !soft.finished() {
            if soft.take_protocol_error().is_some() {
                break;
            }
            batch.clear();
            if tub.drain_into(&mut batch) == 0 {
                tub.wait(Duration::from_millis(1));
                continue;
            }
            for &(i, ep) in batch.iter() {
                soft.handle_completion(i, ep, &mut scratch).unwrap();
            }
        }
        soft.shutdown();
    }

    fn work_program(arity: u32) -> (DdmProgram, ThreadId) {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(blk, ThreadSpec::new("w", arity));
        (b.build().unwrap(), w)
    }

    #[test]
    fn kernel_runs_a_program_end_to_end() {
        let (p, w) = work_program(4);
        let hits = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |c| {
            hits.fetch_add(1 + c.context.0 as u64, Ordering::Relaxed);
        });
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        let tub = Tub::new(2);
        let stats = std::thread::scope(|s| {
            let h = s.spawn(|| {
                run_kernel(
                    KernelId(0),
                    &soft,
                    &bodies,
                    &tub,
                    &PanicSink::default(),
                    &NoFaults,
                    RetryPolicy::default(),
                )
            });
            drive(&soft, &tub);
            h.join().unwrap()
        });
        assert_eq!(stats.executed as usize, p.total_instances());
        assert_eq!(hits.load(Ordering::Relaxed), 4 + 1 + 2 + 3);
        assert!(soft.finished());
        assert_eq!(soft.completions() as usize, p.total_instances());
    }

    #[test]
    fn panicking_body_is_contained_and_reported() {
        let (p, w) = work_program(3);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |c| {
            if c.context.0 == 1 {
                panic!("boom at {:?}", c.context);
            }
        });
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        let tub = Tub::new(1);
        let sink = PanicSink::default();
        let stats = std::thread::scope(|s| {
            let h = s.spawn(|| {
                run_kernel(
                    KernelId(0),
                    &soft,
                    &bodies,
                    &tub,
                    &sink,
                    &NoFaults,
                    RetryPolicy::default(),
                )
            });
            drive(&soft, &tub);
            h.join().unwrap()
        });
        // the panic did not kill the kernel, and the completion was still
        // published so the whole program drained
        assert_eq!(stats.executed as usize, p.total_instances());
        assert!(soft.finished());
        let panics = sink.into_inner();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].instance, Instance::new(w, Context(1)));
        assert!(panics[0].message.contains("boom"));
    }

    #[test]
    fn kernel_with_shut_down_queue_exits_cleanly() {
        let (p, _) = work_program(2);
        let bodies = BodyTable::new(&p);
        let soft = SoftTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::LocalityFirst { steal: false },
                ..Default::default()
            },
        );
        let tub = Tub::new(1);
        soft.shutdown();
        // kernel 1's queue is empty (the armed inlet sits on kernel 0's)
        let stats = run_kernel(
            KernelId(1),
            &soft,
            &bodies,
            &tub,
            &PanicSink::default(),
            &NoFaults,
            RetryPolicy::default(),
        );
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn body_ctx_reports_kernel_and_context() {
        let (p, w) = work_program(2);
        let seen = parking_lot::Mutex::new(Vec::new());
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |c| {
            seen.lock().push((c.kernel, c.context));
        });
        let soft = SoftTsu::new(&p, 1, TsuConfig::default());
        let tub = Tub::new(1);
        std::thread::scope(|s| {
            // kernel id 3 on a 1-queue TSU: the clamp routes it to queue 0
            let h = s.spawn(|| {
                run_kernel(
                    KernelId(3),
                    &soft,
                    &bodies,
                    &tub,
                    &PanicSink::default(),
                    &NoFaults,
                    RetryPolicy::default(),
                )
            });
            drive(&soft, &tub);
            h.join().unwrap()
        });
        drop(bodies); // release the body closure's borrow of `seen`
        let mut seen = seen.into_inner();
        seen.sort_by_key(|&(_, c)| c);
        assert_eq!(
            seen,
            vec![(KernelId(3), Context(0)), (KernelId(3), Context(1))]
        );
    }

    #[test]
    fn stealing_kernel_takes_work_from_the_loaded_victim() {
        // all app work pinned to kernel 1, but only kernel 0 runs: every
        // work instance must arrive by stealing
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(
            blk,
            ThreadSpec::new("w", 6).with_affinity(Affinity::Fixed(KernelId(1))),
        );
        let p = b.build().unwrap();
        let count = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        let soft = SoftTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::LocalityFirst { steal: true },
                ..Default::default()
            },
        );
        let tub = Tub::new(1);
        let stats = std::thread::scope(|s| {
            let h = s.spawn(|| {
                run_kernel(
                    KernelId(0),
                    &soft,
                    &bodies,
                    &tub,
                    &PanicSink::default(),
                    &NoFaults,
                    RetryPolicy::default(),
                )
            });
            drive(&soft, &tub);
            h.join().unwrap()
        });
        assert_eq!(stats.executed as usize, p.total_instances());
        assert_eq!(stats.steals, 6);
        assert_eq!(count.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn funneled_kernels_drain_a_reduction_program() {
        // wide reduction with the funnels on: batched flushes must still
        // drive the program to completion with exact counters
        use tflux_core::tsu::FlushPolicy;
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(blk, ThreadSpec::new("w", 32));
        let sink = b.thread(blk, ThreadSpec::scalar("sink"));
        b.arc(w, sink, ArcMapping::Reduction).unwrap();
        let p = b.build().unwrap();
        let count = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        let soft = SoftTsu::new(
            &p,
            2,
            TsuConfig {
                flush: FlushPolicy::Batch { size: 8 },
                ..TsuConfig::default()
            },
        );
        let tub = Tub::new(2);
        let sink_panics = PanicSink::default();
        let executed: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2u32)
                .map(|k| {
                    let (soft, bodies, tub, sink_panics) = (&soft, &bodies, &tub, &sink_panics);
                    s.spawn(move || {
                        run_kernel(
                            KernelId(k),
                            soft,
                            bodies,
                            tub,
                            sink_panics,
                            &NoFaults,
                            RetryPolicy::default(),
                        )
                    })
                })
                .collect();
            drive(&soft, &tub);
            handles
                .into_iter()
                .map(|h| h.join().unwrap().executed)
                .sum()
        });
        assert_eq!(executed as usize, p.total_instances());
        assert!(soft.finished());
        assert_eq!(count.load(Ordering::Relaxed), 32);
        let stats = soft.stats();
        assert_eq!(stats.completions as usize, p.total_instances());
        // batching really combined decrements: fewer physical RMWs than
        // logical updates
        assert!(
            stats.rc_rmws < stats.rc_updates,
            "{} !< {}",
            stats.rc_rmws,
            stats.rc_updates
        );
    }

    #[test]
    fn non_stealing_kernel_ignores_other_queues() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(
            blk,
            ThreadSpec::new("w", 3).with_affinity(Affinity::Fixed(KernelId(1))),
        );
        let p = b.build().unwrap();
        let executed_w = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |_| {
            executed_w.fetch_add(1, Ordering::Relaxed);
        });
        let soft = SoftTsu::new(
            &p,
            2,
            TsuConfig {
                capacity: 0,
                policy: SchedulingPolicy::LocalityFirst { steal: false },
                ..Default::default()
            },
        );
        let tub = Tub::new(1);
        let stats = std::thread::scope(|s| {
            let soft = &soft;
            let tub = &tub;
            let bodies = &bodies;
            let h = s.spawn(move || {
                run_kernel(
                    KernelId(0),
                    soft,
                    bodies,
                    tub,
                    &PanicSink::default(),
                    &NoFaults,
                    RetryPolicy::default(),
                )
            });
            // process the inlet's TUB entry so the block loads and the
            // pinned work lands on kernel 1's (unserved) queue
            let mut batch = Vec::new();
            let mut scratch = Vec::new();
            while soft.queue(1).len() < 3 {
                batch.clear();
                tub.drain_into(&mut batch);
                for &(i, ep) in batch.iter() {
                    soft.handle_completion(i, ep, &mut scratch).unwrap();
                }
                std::thread::yield_now();
            }
            // give the non-stealing kernel a moment to (not) take it
            std::thread::sleep(Duration::from_millis(20));
            soft.shutdown();
            h.join().unwrap()
        });
        assert_eq!(stats.executed, 1, "only the inlet runs on kernel 0");
        assert_eq!(stats.steals, 0);
        assert_eq!(executed_w.load(Ordering::Relaxed), 0);
        assert_eq!(soft.queue(1).len(), 3, "victim queue untouched");
    }
}
