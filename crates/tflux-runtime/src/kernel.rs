//! The Kernel loop (Fig. 2 of the paper).
//!
//! A kernel is "a simple user-level process" — here an OS thread — that
//! alternates between the *FindReadyThread* loop and application DThread
//! code. Fetching pops the kernel's own ready queue (its Local TSU);
//! completion publishes the instance into the segmented TUB for the TSU
//! Emulator's Post-Processing Phase.
//!
//! Ready-thread selection follows the runtime's
//! [`SchedulingPolicy`](tflux_core::SchedulingPolicy): under
//! `LocalityFirst { steal: true }` an idle kernel takes the oldest entry
//! from the most loaded sibling queue before blocking — the software
//! equivalent of the TSU handing a ready DThread to whichever CPU asks,
//! locality permitting (§3.1).

use crate::body::{BodyCtx, BodyTable};
use crate::faults::{BodyFault, FaultInjector};
use crate::runtime::RetryPolicy;
use crate::sm::{Fetched, ReadyQueue};
use crate::stats::KernelStats;
use crate::tub::Tub;
use parking_lot::Mutex;
use std::time::Duration;
use tflux_core::ids::{Instance, KernelId};
use tflux_core::program::DdmProgram;

/// A panic captured from a DThread body. The kernel contains the panic,
/// retries it if the body opted in as idempotent and the
/// [`RetryPolicy`](crate::RetryPolicy) allows, records the final failure
/// here, and (unless the policy poisons exhausted instances) still
/// publishes the completion so the program drains instead of deadlocking;
/// the runtime reports the failure after the run (see
/// [`RuntimeError::BodyPanicked`](crate::RuntimeError)).
#[derive(Debug, Clone)]
pub struct BodyPanic {
    /// The instance whose body panicked.
    pub instance: Instance,
    /// The panic payload of the last attempt, stringified.
    pub message: String,
    /// How many attempts were made (1 = no retries).
    pub attempts: u32,
}

/// Shared collector for body panics across kernels.
pub type PanicSink = Mutex<Vec<BodyPanic>>;

/// How long a stealing kernel blocks on its own queue between victim
/// rescans.
const STEAL_RESCAN: Duration = Duration::from_millis(1);

/// Run one kernel to completion. Returns this kernel's counters.
///
/// `queues[own]` is this kernel's Local TSU; with `steal` set, the other
/// queues are stealing victims. The loop mirrors Fig. 2: the first instance
/// a kernel receives is (for kernel 0) the first block's Inlet; every
/// completion jumps back to the FindReadyThread point; the Exit signal
/// raised by the last block's Outlet "forces its Kernel to exit".
#[allow(clippy::too_many_arguments)] // the kernel loop IS the meeting point
                                     // of every runtime structure; a config
                                     // struct would only rename the problem
pub fn run_kernel<F: FaultInjector>(
    kernel: KernelId,
    _program: &DdmProgram,
    bodies: &BodyTable<'_>,
    queues: &[ReadyQueue],
    own: usize,
    steal: bool,
    tub: &Tub,
    panics: &PanicSink,
    injector: &F,
    retry: RetryPolicy,
) -> KernelStats {
    let mut executed = 0u64;
    let mut steals = 0u64;
    let mut retries = 0u64;
    let mut poisoned = 0u64;
    let mut iterations = 0u64;
    let queue = &queues[own];

    let run = |instance: Instance, executed: &mut u64, retries: &mut u64, poisoned: &mut u64| {
        let ctx = BodyCtx {
            instance,
            context: instance.context,
            kernel,
        };
        // Direct closure call: kernel→DThread transition without OS
        // involvement, as in §3.2. A panicking body is contained: if the
        // body is idempotent it is re-dispatched up to the retry budget;
        // otherwise the completion is still published (the alternative is a
        // deadlocked program, unless the policy poisons the instance on
        // purpose) and the failure is reported after the run.
        let mut attempt = 0u32;
        let publish = loop {
            attempt += 1;
            let fault = injector.before_body(kernel, instance, attempt);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match fault {
                    BodyFault::Pass => {}
                    BodyFault::Delay(d) => std::thread::sleep(d),
                    BodyFault::Panic => std::panic::panic_any(format!(
                        "injected fault: body panic at {instance} (attempt {attempt})"
                    )),
                }
                (bodies.get(instance.thread))(&ctx)
            }));
            match result {
                Ok(()) => break true,
                Err(payload) => {
                    if bodies.idempotent(instance.thread) && attempt < retry.max_attempts {
                        *retries += 1;
                        continue;
                    }
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    panics.lock().push(BodyPanic {
                        instance,
                        message,
                        attempts: attempt,
                    });
                    break !retry.poison_on_exhaust;
                }
            }
        };
        *executed += 1;
        if publish {
            tub.push_with(instance, injector);
        } else {
            *poisoned += 1;
        }
    };

    'outer: loop {
        iterations += 1;
        if let Some(d) = injector.kernel_stall(kernel, iterations) {
            std::thread::sleep(d);
        }
        // own queue first (spatial locality)
        match if steal {
            queue.try_pop()
        } else {
            Some(queue.pop())
        } {
            Some(Fetched::Thread(i)) => {
                run(i, &mut executed, &mut retries, &mut poisoned);
                continue;
            }
            Some(Fetched::Exit) => break,
            None => {}
        }
        // steal from the most loaded victim
        debug_assert!(steal);
        loop {
            let victim = (0..queues.len())
                .filter(|&q| q != own && !queues[q].is_empty())
                .max_by_key(|&q| queues[q].len());
            if let Some(v) = victim {
                if let Some(Fetched::Thread(i)) = queues[v].try_pop() {
                    steals += 1;
                    run(i, &mut executed, &mut retries, &mut poisoned);
                    continue 'outer;
                }
                // raced with the owner; rescan
                continue;
            }
            // nothing stealable: block briefly on the own queue
            match queue.pop_timeout(STEAL_RESCAN) {
                Some(Fetched::Thread(i)) => {
                    run(i, &mut executed, &mut retries, &mut poisoned);
                    continue 'outer;
                }
                Some(Fetched::Exit) => break 'outer,
                None => continue,
            }
        }
    }
    KernelStats {
        executed,
        wait_ns: queue.wait_nanos(),
        blocked_pops: queue.blocked_pops(),
        steals,
        retries,
        poisoned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyTable;
    use crate::faults::NoFaults;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tflux_core::ids::Instance;
    use tflux_core::prelude::*;

    fn queues(n: usize) -> Vec<ReadyQueue> {
        (0..n).map(|_| ReadyQueue::new()).collect()
    }

    static PANICS: PanicSink = PanicSink::new(Vec::new());

    #[test]
    fn panicking_body_is_contained_and_reported() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(blk, ThreadSpec::new("w", 3));
        let p = b.build().unwrap();
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |c| {
            if c.context.0 == 1 {
                panic!("boom at {:?}", c.context);
            }
        });
        let qs = queues(1);
        let tub = Tub::new(1);
        for c in 0..3 {
            qs[0].push(Instance::new(w, Context(c)));
        }
        qs[0].shutdown();
        let sink = PanicSink::default();
        let stats = run_kernel(
            KernelId(0),
            &p,
            &bodies,
            &qs,
            0,
            false,
            &tub,
            &sink,
            &NoFaults,
            RetryPolicy::default(),
        );
        // all three ran; the panic did not kill the kernel
        assert_eq!(stats.executed, 3);
        let panics = sink.into_inner();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].instance, Instance::new(w, Context(1)));
        assert!(panics[0].message.contains("boom"));
        // all three completions reached the TUB
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 3);
    }

    #[test]
    fn kernel_executes_queued_instances_then_exits() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(blk, ThreadSpec::new("w", 4));
        let p = b.build().unwrap();

        let hits = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |c| {
            hits.fetch_add(1 + c.context.0 as u64, Ordering::Relaxed);
        });

        let qs = queues(1);
        let tub = Tub::new(2);
        for c in 0..4 {
            qs[0].push(Instance::new(w, Context(c)));
        }
        qs[0].shutdown();

        let stats = run_kernel(
            KernelId(0),
            &p,
            &bodies,
            &qs,
            0,
            false,
            &tub,
            &PanicSink::default(),
            &NoFaults,
            RetryPolicy::default(),
        );
        assert_eq!(stats.executed, 4);
        assert_eq!(hits.load(Ordering::Relaxed), 4 + 1 + 2 + 3);
        // every completion went to the TUB
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 4);
    }

    #[test]
    fn kernel_with_empty_queue_exits_cleanly() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::scalar("x"));
        let p = b.build().unwrap();
        let bodies = BodyTable::new(&p);
        let qs = queues(1);
        qs[0].shutdown();
        let tub = Tub::new(1);
        let stats = run_kernel(
            KernelId(1),
            &p,
            &bodies,
            &qs,
            0,
            false,
            &tub,
            &PanicSink::default(),
            &NoFaults,
            RetryPolicy::default(),
        );
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn body_ctx_reports_kernel_and_context() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(blk, ThreadSpec::new("w", 2));
        let p = b.build().unwrap();
        let seen = parking_lot::Mutex::new(Vec::new());
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |c| {
            seen.lock().push((c.kernel, c.context));
        });
        let qs = queues(1);
        let tub = Tub::new(1);
        qs[0].push(Instance::new(w, Context(1)));
        qs[0].shutdown();
        run_kernel(
            KernelId(3),
            &p,
            &bodies,
            &qs,
            0,
            false,
            &tub,
            &PanicSink::default(),
            &NoFaults,
            RetryPolicy::default(),
        );
        assert_eq!(seen.lock().as_slice(), &[(KernelId(3), Context(1))]);
    }

    #[test]
    fn stealing_kernel_takes_work_from_the_loaded_victim() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(blk, ThreadSpec::new("w", 6));
        let p = b.build().unwrap();
        let count = AtomicU64::new(0);
        let mut bodies = BodyTable::new(&p);
        bodies.set(w, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        let qs = queues(2);
        let tub = Tub::new(1);
        // all work sits on queue 1; kernel 0 must steal it. Shut down only
        // after the work is done (an early own-queue Exit legitimately
        // beats stealing — the victim kernel would drain its own queue).
        for c in 0..6 {
            qs[1].push(Instance::new(w, Context(c)));
        }
        let stats = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                run_kernel(
                    KernelId(0),
                    &p,
                    &bodies,
                    &qs,
                    0,
                    true,
                    &tub,
                    &PANICS,
                    &NoFaults,
                    RetryPolicy::default(),
                )
            });
            while count.load(Ordering::Relaxed) < 6 {
                std::thread::yield_now();
            }
            qs[0].shutdown();
            qs[1].shutdown();
            handle.join().unwrap()
        });
        assert_eq!(stats.executed, 6);
        assert_eq!(stats.steals, 6);
        assert_eq!(count.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn non_stealing_kernel_ignores_other_queues() {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        let w = b.thread(blk, ThreadSpec::new("w", 3));
        let p = b.build().unwrap();
        let bodies = BodyTable::new(&p);
        let qs = queues(2);
        let tub = Tub::new(1);
        for c in 0..3 {
            qs[1].push(Instance::new(w, Context(c)));
        }
        qs[0].shutdown();
        let stats = run_kernel(
            KernelId(0),
            &p,
            &bodies,
            &qs,
            0,
            false,
            &tub,
            &PanicSink::default(),
            &NoFaults,
            RetryPolicy::default(),
        );
        assert_eq!(stats.executed, 0);
        assert_eq!(qs[1].len(), 3, "victim queue untouched");
    }
}
