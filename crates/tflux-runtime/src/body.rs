//! DThread bodies: the application code the kernels jump into.

use tflux_core::ids::{Context, Instance, KernelId, ThreadId};
use tflux_core::program::DdmProgram;
use tflux_core::thread::ThreadKind;

/// Execution context handed to a DThread body.
#[derive(Clone, Copy, Debug)]
pub struct BodyCtx {
    /// The instance being executed.
    pub instance: Instance,
    /// The instance's context (loop index), for convenience.
    pub context: Context,
    /// The kernel executing the body.
    pub kernel: KernelId,
}

/// A DThread body. Bodies run concurrently on kernel threads, so they must
/// be `Send + Sync`; share data through [`crate::SharedVar`], atomics, or
/// other synchronized structures.
pub type ThreadBody<'a> = Box<dyn Fn(&BodyCtx) + Send + Sync + 'a>;

/// Bodies for every thread of a program, indexed by [`ThreadId`].
///
/// Inlet and Outlet threads get no-op bodies automatically (their real work
/// — block loading/unloading — happens inside the TSU). Application threads
/// default to a no-op as well, which is occasionally useful for pure
/// synchronization threads; set real bodies with [`set`](Self::set).
pub struct BodyTable<'a> {
    bodies: Vec<ThreadBody<'a>>,
    idempotent: Vec<bool>,
}

impl<'a> BodyTable<'a> {
    /// A table of no-op bodies shaped for `program`.
    pub fn new(program: &DdmProgram) -> Self {
        let bodies: Vec<_> = (0..program.threads().len())
            .map(|_| Box::new(|_: &BodyCtx| {}) as ThreadBody<'a>)
            .collect();
        let idempotent = vec![false; bodies.len()];
        BodyTable { bodies, idempotent }
    }

    /// Install the body of one application thread.
    ///
    /// # Panics
    /// If `thread` is out of range for the program this table was built for.
    pub fn set(&mut self, thread: ThreadId, body: impl Fn(&BodyCtx) + Send + Sync + 'a) {
        self.bodies[thread.idx()] = Box::new(body);
    }

    /// Fetch the body of a thread.
    #[inline]
    pub fn get(&self, thread: ThreadId) -> &ThreadBody<'a> {
        &self.bodies[thread.idx()]
    }

    /// Number of thread slots.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the table is empty (never true for a valid program).
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    /// Declare a thread's body idempotent: re-running an instance after a
    /// panic observes the same state as the first attempt, so the kernel
    /// may re-dispatch it under [`crate::RetryPolicy`]. Bodies are
    /// non-idempotent by default and are never retried.
    pub fn mark_idempotent(&mut self, thread: ThreadId) {
        self.idempotent[thread.idx()] = true;
    }

    /// [`set`](Self::set) + [`mark_idempotent`](Self::mark_idempotent) in one call.
    pub fn set_idempotent(&mut self, thread: ThreadId, body: impl Fn(&BodyCtx) + Send + Sync + 'a) {
        self.set(thread, body);
        self.mark_idempotent(thread);
    }

    /// Whether `thread`'s body was declared idempotent.
    #[inline]
    pub fn idempotent(&self, thread: ThreadId) -> bool {
        self.idempotent[thread.idx()]
    }
}

/// Whether an instance's body should be invoked by a kernel.
///
/// All kinds run through the kernel loop, but inlet/outlet bodies are no-ops
/// unless the user installed something (e.g. instrumentation).
pub fn is_app(program: &DdmProgram, instance: Instance) -> bool {
    program.thread(instance.thread).kind == ThreadKind::App
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use tflux_core::prelude::*;

    fn tiny() -> DdmProgram {
        let mut b = ProgramBuilder::new();
        let blk = b.block();
        b.thread(blk, ThreadSpec::new("w", 4));
        b.build().unwrap()
    }

    #[test]
    fn default_bodies_are_noops() {
        let p = tiny();
        let t = BodyTable::new(&p);
        assert_eq!(t.len(), 3); // w + inlet + outlet
        let ctx = BodyCtx {
            instance: Instance::scalar(ThreadId(0)),
            context: Context(0),
            kernel: KernelId(0),
        };
        (t.get(ThreadId(1)))(&ctx); // inlet no-op must not panic
    }

    #[test]
    fn set_and_invoke() {
        let p = tiny();
        let hits = AtomicU32::new(0);
        let mut t = BodyTable::new(&p);
        t.set(ThreadId(0), |c| {
            hits.fetch_add(c.context.0 + 1, Ordering::Relaxed);
        });
        let ctx = BodyCtx {
            instance: Instance::new(ThreadId(0), Context(2)),
            context: Context(2),
            kernel: KernelId(1),
        };
        (t.get(ThreadId(0)))(&ctx);
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn idempotence_defaults_off_and_sticks_when_set() {
        let p = tiny();
        let mut t = BodyTable::new(&p);
        assert!(!t.idempotent(ThreadId(0)));
        t.set_idempotent(ThreadId(0), |_| {});
        assert!(t.idempotent(ThreadId(0)));
        // re-installing the body does not clear the flag
        t.set(ThreadId(0), |_| {});
        assert!(t.idempotent(ThreadId(0)));
    }

    #[test]
    fn app_detection() {
        let p = tiny();
        assert!(is_app(&p, Instance::scalar(ThreadId(0))));
        assert!(!is_app(&p, Instance::scalar(p.blocks()[0].inlet)));
    }
}
