//! The Thread-to-Update Buffer (TUB).
//!
//! §4.2 of the paper: when a DThread completes, its kernel publishes the
//! update into a shared buffer the TSU Emulator drains. Because every kernel
//! writes into the TUB, naive locking would serialize completions; TFlux
//! *partitions the TUB into segments* and kernels acquire "the first
//! available segment using try/lock, a non-blocking technique which locks an
//! entity only if it is available" — so a kernel stalls only when *every*
//! segment is busy.

use crate::faults::{FaultInjector, NoFaults};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;
use tflux_core::ids::{Epoch, Instance};

/// Contention counters for the TUB.
#[derive(Debug, Default)]
pub struct TubStats {
    /// Completions published.
    pub pushes: AtomicU64,
    /// Segment `try_lock` attempts that found the segment busy.
    pub busy_hits: AtomicU64,
    /// Full passes over all segments that found every segment busy
    /// (the genuine stall case the segmentation is designed to avoid).
    pub full_spins: AtomicU64,
    /// Times a pushing kernel gave up spinning and parked (see
    /// [`TubBackoff`]).
    pub parks: AtomicU64,
    /// Emulator wakeup signals suppressed by a fault injector.
    pub dropped_bells: AtomicU64,
}

impl TubStats {
    /// Snapshot the counters into plain integers.
    pub fn snapshot(&self) -> TubSnapshot {
        TubSnapshot {
            pushes: self.pushes.load(Ordering::Relaxed),
            busy_hits: self.busy_hits.load(Ordering::Relaxed),
            full_spins: self.full_spins.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            dropped_bells: self.dropped_bells.load(Ordering::Relaxed),
        }
    }
}

/// Plain-integer view of [`TubStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TubSnapshot {
    /// Completions published.
    pub pushes: u64,
    /// `try_lock` attempts that found a segment busy.
    pub busy_hits: u64,
    /// Passes that found all segments busy.
    pub full_spins: u64,
    /// Pushes that fell back from spinning to parking.
    #[serde(default)]
    pub parks: u64,
    /// Emulator wakeup signals suppressed by a fault injector.
    #[serde(default)]
    pub dropped_bells: u64,
}

/// How a pushing kernel degrades when *every* TUB segment stays busy.
///
/// The paper's `try_lock` scheme assumes some segment frees up quickly; an
/// all-segments-busy livelock would otherwise burn a core on `yield_now`.
/// After `full_spin_limit` full passes over the segments, the kernel parks
/// instead of bare-yielding, with **bounded exponential backoff**: the
/// park starts at `park`, doubles per further all-busy pass, and caps at
/// `max_park`. Each park is shortened by a *deterministic* jitter — a pure
/// function of `(jitter_seed, pass)` — so colliding kernels with different
/// seeds desynchronize instead of re-colliding in lockstep, and a given
/// schedule replays identically. The `full_spins` counter keeps counting
/// passes either way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TubBackoff {
    /// Full all-busy passes to spin (with `yield_now`) before parking.
    /// `0` parks from the first all-busy pass.
    pub full_spin_limit: u32,
    /// Park duration of the first parked pass; doubles per further pass.
    /// `Duration::ZERO` disables parking entirely (pure spinning).
    pub park: Duration,
    /// Upper bound the exponential growth saturates at.
    pub max_park: Duration,
    /// Seed of the deterministic per-pass jitter. Kernels sharing one
    /// `TubBackoff` share the seed; per-pass mixing still staggers them
    /// because passes rarely align exactly.
    pub jitter_seed: u64,
}

impl Default for TubBackoff {
    fn default() -> Self {
        TubBackoff {
            full_spin_limit: 16,
            park: Duration::from_micros(50),
            max_park: Duration::from_millis(2),
            jitter_seed: 0x7546__FB1C_55AB_10E5,
        }
    }
}

impl TubBackoff {
    /// The park duration of the `parked_pass`-th all-busy pass past the
    /// spin limit (0-based): `park << parked_pass`, saturating at
    /// `max_park`, minus a deterministic jitter of up to half the grown
    /// value. Pure — same `(seed, pass)` always yields the same duration.
    pub fn park_duration(&self, parked_pass: u32) -> Duration {
        let base = self.park.as_nanos().min(u64::MAX as u128) as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let cap = (self.max_park.as_nanos().min(u64::MAX as u128) as u64).max(base);
        // clamp the shift to keep `1 << shift` legal; saturating_mul
        // absorbs any multiplication overflow before the cap applies
        let shift = parked_pass.min(63);
        let grown = base.saturating_mul(1u64 << shift).min(cap);
        let jitter = crate::faults::mix(self.jitter_seed ^ parked_pass as u64) % (grown / 2 + 1);
        Duration::from_nanos(grown - jitter)
    }
}

/// The segmented Thread-to-Update Buffer.
pub struct Tub {
    segments: Vec<Mutex<Vec<(Instance, Epoch)>>>,
    /// Round-robin hint so kernels spread over segments.
    next: AtomicUsize,
    /// Wakes the emulator when entries arrive.
    signal: Mutex<bool>,
    bell: Condvar,
    backoff: TubBackoff,
    stats: TubStats,
}

impl Tub {
    /// A TUB with `segments` independently lockable segments (min 1) and
    /// the default all-busy [`TubBackoff`].
    pub fn new(segments: usize) -> Self {
        Tub::with_backoff(segments, TubBackoff::default())
    }

    /// A TUB with an explicit all-busy backoff configuration.
    pub fn with_backoff(segments: usize, backoff: TubBackoff) -> Self {
        let n = segments.max(1);
        Tub {
            segments: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            next: AtomicUsize::new(0),
            signal: Mutex::new(false),
            bell: Condvar::new(),
            backoff,
            stats: TubStats::default(),
        }
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Contention counters.
    pub fn stats(&self) -> &TubStats {
        &self.stats
    }

    /// Publish a completed instance with the epoch token it was fetched
    /// under: lock the first available segment via `try_lock`, spinning
    /// over segments until one is free, then ring the emulator's bell.
    pub fn push(&self, inst: Instance, epoch: Epoch) {
        self.push_with(inst, epoch, &NoFaults);
    }

    /// [`push`](Self::push) with a fault injector consulted at the *TUB
    /// publish delay* and *dropped bell* sites. The runtime's kernels route
    /// every completion through here; with [`NoFaults`] it is exactly
    /// `push`.
    pub fn push_with<F: FaultInjector>(&self, inst: Instance, epoch: Epoch, injector: &F) {
        if let Some(d) = injector.tub_publish_delay(inst) {
            std::thread::sleep(d);
        }
        self.stats.pushes.fetch_add(1, Ordering::Relaxed);
        let n = self.segments.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let mut offset = 0usize;
        let mut all_busy_passes = 0u32;
        loop {
            let idx = (start + offset) % n;
            if let Some(mut seg) = self.segments[idx].try_lock() {
                seg.push((inst, epoch));
                break;
            }
            self.stats.busy_hits.fetch_add(1, Ordering::Relaxed);
            offset += 1;
            if offset.is_multiple_of(n) {
                // every segment busy: yield while under the spin limit,
                // then degrade to exponentially growing, jittered parks
                // (bounded livelock, desynchronized retries)
                self.stats.full_spins.fetch_add(1, Ordering::Relaxed);
                all_busy_passes += 1;
                if all_busy_passes > self.backoff.full_spin_limit {
                    self.stats.parks.fetch_add(1, Ordering::Relaxed);
                    let parked_pass = all_busy_passes - self.backoff.full_spin_limit - 1;
                    let park = self.backoff.park_duration(parked_pass);
                    if park > Duration::ZERO {
                        std::thread::park_timeout(park);
                    } else {
                        std::thread::yield_now();
                    }
                } else {
                    std::thread::yield_now();
                }
            }
        }
        // ring the emulator's bell — unless the plan drops it (lost wakeup)
        if injector.drop_bell(inst) {
            self.stats.dropped_bells.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut s = self.signal.lock();
        *s = true;
        self.bell.notify_one();
    }

    /// Drain every segment into `out`; returns the number of entries taken.
    ///
    /// Called by the TSU Emulator only.
    pub fn drain_into(&self, out: &mut Vec<(Instance, Epoch)>) -> usize {
        let before = out.len();
        for seg in &self.segments {
            let mut seg = seg.lock();
            out.append(&mut seg);
        }
        out.len() - before
    }

    /// Block until entries may be available or `timeout` elapses.
    ///
    /// Spurious wakeups are fine — the emulator re-drains in a loop.
    pub fn wait(&self, timeout: std::time::Duration) {
        let mut s = self.signal.lock();
        if !*s {
            self.bell.wait_for(&mut s, timeout);
        }
        *s = false;
    }

    /// Wake the emulator regardless of content (used at shutdown).
    pub fn kick(&self) {
        let mut s = self.signal.lock();
        *s = true;
        self.bell.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tflux_core::ids::{Context, Instance, ThreadId};

    const E0: Epoch = Epoch(0);

    fn inst(t: u32, c: u32) -> Instance {
        Instance::new(ThreadId(t), Context(c))
    }

    #[test]
    fn push_then_drain_roundtrips() {
        let tub = Tub::new(4);
        for i in 0..10 {
            tub.push(inst(i, 0), E0);
        }
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 10);
        out.sort();
        assert_eq!(out, (0..10).map(|i| (inst(i, 0), E0)).collect::<Vec<_>>());
        // second drain finds nothing
        assert_eq!(tub.drain_into(&mut out), 0);
    }

    #[test]
    fn zero_segments_clamped() {
        let tub = Tub::new(0);
        assert_eq!(tub.segments(), 1);
        tub.push(inst(0, 0), E0);
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 1);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let tub = Arc::new(Tub::new(4));
        let threads = 8;
        let per = 500;
        std::thread::scope(|s| {
            for t in 0..threads {
                let tub = Arc::clone(&tub);
                s.spawn(move || {
                    for c in 0..per {
                        tub.push(inst(t, c), E0);
                    }
                });
            }
        });
        let mut out = Vec::new();
        tub.drain_into(&mut out);
        assert_eq!(out.len(), (threads * per) as usize);
        out.sort();
        out.dedup();
        assert_eq!(out.len(), (threads * per) as usize, "duplicate entries");
        assert_eq!(tub.stats().snapshot().pushes, (threads * per) as u64);
    }

    #[test]
    fn drain_interleaved_with_pushes_sees_every_entry() {
        let tub = Arc::new(Tub::new(2));
        let total = 2000u32;
        let collected = std::thread::scope(|s| {
            let pusher = {
                let tub = Arc::clone(&tub);
                s.spawn(move || {
                    for c in 0..total {
                        tub.push(inst(1, c), E0);
                    }
                })
            };
            let mut got = Vec::new();
            while got.len() < total as usize {
                tub.wait(std::time::Duration::from_millis(1));
                tub.drain_into(&mut got);
            }
            pusher.join().unwrap();
            got
        });
        assert_eq!(collected.len(), total as usize);
    }

    #[test]
    fn wait_returns_after_kick() {
        let tub = Arc::new(Tub::new(1));
        let t = {
            let tub = Arc::clone(&tub);
            std::thread::spawn(move || {
                tub.wait(std::time::Duration::from_secs(10));
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        tub.kick();
        t.join().unwrap(); // must not take 10s; join succeeding is the test
    }

    #[test]
    fn park_backoff_loses_nothing_under_contention() {
        // a 1-segment TUB with an immediate-park backoff: pushes from 4
        // threads must all land even though every all-busy pass parks
        let tub = Arc::new(Tub::with_backoff(
            1,
            TubBackoff {
                full_spin_limit: 0,
                park: std::time::Duration::from_micros(20),
                ..TubBackoff::default()
            },
        ));
        std::thread::scope(|s| {
            for t in 0..4 {
                let tub = Arc::clone(&tub);
                s.spawn(move || {
                    for c in 0..200 {
                        tub.push(inst(t, c), E0);
                    }
                });
            }
        });
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 800);
        let snap = tub.stats().snapshot();
        assert_eq!(snap.pushes, 800);
        // parking only ever follows a counted all-busy pass
        assert!(snap.parks <= snap.full_spins);
    }

    #[test]
    fn dropped_bell_suppresses_wakeup_but_not_data() {
        use crate::faults::FaultPlan;
        let tub = Tub::new(2);
        let plan = FaultPlan::new(5).dropped_bell(1000);
        let t0 = std::time::Instant::now();
        tub.push_with(inst(1, 0), E0, &plan);
        // the bell was dropped: wait() must time out rather than return
        // instantly on the signal flag
        tub.wait(std::time::Duration::from_millis(5));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(4));
        // the entry itself is safe in its segment
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 1);
        assert_eq!(tub.stats().snapshot().dropped_bells, 1);
    }

    #[test]
    fn backoff_schedule_grows_doubles_and_caps() {
        let b = TubBackoff {
            full_spin_limit: 4,
            park: Duration::from_micros(10),
            max_park: Duration::from_micros(640),
            jitter_seed: 42,
        };
        // deterministic: the same pass always parks the same duration
        for pass in 0..32 {
            assert_eq!(b.park_duration(pass), b.park_duration(pass));
        }
        for pass in 0..32u32 {
            let d = b.park_duration(pass);
            // the un-jittered envelope is park << pass, capped at max_park;
            // jitter removes at most half, so d is in (envelope/2, envelope]
            let envelope = Duration::from_micros(10)
                .saturating_mul(1 << pass.min(6))
                .min(Duration::from_micros(640));
            assert!(d <= envelope, "pass {pass}: {d:?} > {envelope:?}");
            assert!(
                d >= envelope / 2,
                "pass {pass}: {d:?} < half of {envelope:?}"
            );
            assert!(d <= b.max_park);
        }
        // the envelope really grows before the cap: pass 3's floor exceeds
        // pass 0's ceiling
        assert!(b.park_duration(3) > b.park_duration(0));
        // different seeds jitter differently somewhere in the schedule
        let other = TubBackoff {
            jitter_seed: 43,
            ..b
        };
        assert!(
            (0..32).any(|p| b.park_duration(p) != other.park_duration(p)),
            "seeds 42 and 43 produced identical schedules"
        );
    }

    #[test]
    fn zero_park_disables_parking() {
        let b = TubBackoff {
            park: Duration::ZERO,
            ..TubBackoff::default()
        };
        for pass in 0..8 {
            assert_eq!(b.park_duration(pass), Duration::ZERO);
        }
    }

    #[test]
    fn single_segment_tub_still_works_under_contention() {
        let tub = Arc::new(Tub::new(1));
        std::thread::scope(|s| {
            for t in 0..4 {
                let tub = Arc::clone(&tub);
                s.spawn(move || {
                    for c in 0..200 {
                        tub.push(inst(t, c), E0);
                    }
                });
            }
        });
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 800);
    }
}
