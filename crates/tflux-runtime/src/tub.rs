//! The Thread-to-Update Buffer (TUB).
//!
//! §4.2 of the paper: when a DThread completes, its kernel publishes the
//! update into a shared buffer the TSU Emulator drains. Because every kernel
//! writes into the TUB, naive locking would serialize completions; TFlux
//! *partitions the TUB into segments* and kernels acquire "the first
//! available segment using try/lock, a non-blocking technique which locks an
//! entity only if it is available" — so a kernel stalls only when *every*
//! segment is busy.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use tflux_core::ids::Instance;

/// Contention counters for the TUB.
#[derive(Debug, Default)]
pub struct TubStats {
    /// Completions published.
    pub pushes: AtomicU64,
    /// Segment `try_lock` attempts that found the segment busy.
    pub busy_hits: AtomicU64,
    /// Full passes over all segments that found every segment busy
    /// (the genuine stall case the segmentation is designed to avoid).
    pub full_spins: AtomicU64,
}

impl TubStats {
    /// Snapshot the counters into plain integers.
    pub fn snapshot(&self) -> TubSnapshot {
        TubSnapshot {
            pushes: self.pushes.load(Ordering::Relaxed),
            busy_hits: self.busy_hits.load(Ordering::Relaxed),
            full_spins: self.full_spins.load(Ordering::Relaxed),
        }
    }
}

/// Plain-integer view of [`TubStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TubSnapshot {
    /// Completions published.
    pub pushes: u64,
    /// `try_lock` attempts that found a segment busy.
    pub busy_hits: u64,
    /// Passes that found all segments busy.
    pub full_spins: u64,
}

/// The segmented Thread-to-Update Buffer.
pub struct Tub {
    segments: Vec<Mutex<Vec<Instance>>>,
    /// Round-robin hint so kernels spread over segments.
    next: AtomicUsize,
    /// Wakes the emulator when entries arrive.
    signal: Mutex<bool>,
    bell: Condvar,
    stats: TubStats,
}

impl Tub {
    /// A TUB with `segments` independently lockable segments (min 1).
    pub fn new(segments: usize) -> Self {
        let n = segments.max(1);
        Tub {
            segments: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            next: AtomicUsize::new(0),
            signal: Mutex::new(false),
            bell: Condvar::new(),
            stats: TubStats::default(),
        }
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Contention counters.
    pub fn stats(&self) -> &TubStats {
        &self.stats
    }

    /// Publish a completed instance: lock the first available segment via
    /// `try_lock`, spinning over segments until one is free.
    pub fn push(&self, inst: Instance) {
        self.stats.pushes.fetch_add(1, Ordering::Relaxed);
        let n = self.segments.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed) % n;
        let mut offset = 0usize;
        loop {
            let idx = (start + offset) % n;
            if let Some(mut seg) = self.segments[idx].try_lock() {
                seg.push(inst);
                break;
            }
            self.stats.busy_hits.fetch_add(1, Ordering::Relaxed);
            offset += 1;
            if offset.is_multiple_of(n) {
                // every segment busy: yield before spinning again
                self.stats.full_spins.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        }
        // ring the emulator's bell
        let mut s = self.signal.lock();
        *s = true;
        self.bell.notify_one();
    }

    /// Drain every segment into `out`; returns the number of entries taken.
    ///
    /// Called by the TSU Emulator only.
    pub fn drain_into(&self, out: &mut Vec<Instance>) -> usize {
        let before = out.len();
        for seg in &self.segments {
            let mut seg = seg.lock();
            out.append(&mut seg);
        }
        out.len() - before
    }

    /// Block until entries may be available or `timeout` elapses.
    ///
    /// Spurious wakeups are fine — the emulator re-drains in a loop.
    pub fn wait(&self, timeout: std::time::Duration) {
        let mut s = self.signal.lock();
        if !*s {
            self.bell.wait_for(&mut s, timeout);
        }
        *s = false;
    }

    /// Wake the emulator regardless of content (used at shutdown).
    pub fn kick(&self) {
        let mut s = self.signal.lock();
        *s = true;
        self.bell.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tflux_core::ids::{Context, Instance, ThreadId};

    fn inst(t: u32, c: u32) -> Instance {
        Instance::new(ThreadId(t), Context(c))
    }

    #[test]
    fn push_then_drain_roundtrips() {
        let tub = Tub::new(4);
        for i in 0..10 {
            tub.push(inst(i, 0));
        }
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 10);
        out.sort();
        assert_eq!(out, (0..10).map(|i| inst(i, 0)).collect::<Vec<_>>());
        // second drain finds nothing
        assert_eq!(tub.drain_into(&mut out), 0);
    }

    #[test]
    fn zero_segments_clamped() {
        let tub = Tub::new(0);
        assert_eq!(tub.segments(), 1);
        tub.push(inst(0, 0));
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 1);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let tub = Arc::new(Tub::new(4));
        let threads = 8;
        let per = 500;
        std::thread::scope(|s| {
            for t in 0..threads {
                let tub = Arc::clone(&tub);
                s.spawn(move || {
                    for c in 0..per {
                        tub.push(inst(t, c));
                    }
                });
            }
        });
        let mut out = Vec::new();
        tub.drain_into(&mut out);
        assert_eq!(out.len(), (threads * per) as usize);
        out.sort();
        out.dedup();
        assert_eq!(out.len(), (threads * per) as usize, "duplicate entries");
        assert_eq!(tub.stats().snapshot().pushes, (threads * per) as u64);
    }

    #[test]
    fn drain_interleaved_with_pushes_sees_every_entry() {
        let tub = Arc::new(Tub::new(2));
        let total = 2000u32;
        let collected = std::thread::scope(|s| {
            let pusher = {
                let tub = Arc::clone(&tub);
                s.spawn(move || {
                    for c in 0..total {
                        tub.push(inst(1, c));
                    }
                })
            };
            let mut got = Vec::new();
            while got.len() < total as usize {
                tub.wait(std::time::Duration::from_millis(1));
                tub.drain_into(&mut got);
            }
            pusher.join().unwrap();
            got
        });
        assert_eq!(collected.len(), total as usize);
    }

    #[test]
    fn wait_returns_after_kick() {
        let tub = Arc::new(Tub::new(1));
        let t = {
            let tub = Arc::clone(&tub);
            std::thread::spawn(move || {
                tub.wait(std::time::Duration::from_secs(10));
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        tub.kick();
        t.join().unwrap(); // must not take 10s; join succeeding is the test
    }

    #[test]
    fn single_segment_tub_still_works_under_contention() {
        let tub = Arc::new(Tub::new(1));
        std::thread::scope(|s| {
            for t in 0..4 {
                let tub = Arc::clone(&tub);
                s.spawn(move || {
                    for c in 0..200 {
                        tub.push(inst(t, c));
                    }
                });
            }
        });
        let mut out = Vec::new();
        assert_eq!(tub.drain_into(&mut out), 800);
    }
}
